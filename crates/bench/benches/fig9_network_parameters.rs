//! Fig. 9 runtime bench: routing cost scaling with the network parameters
//! (switch count, qubits per switch, demanded states, average degree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::workloads::{Algorithm, ExperimentConfig};
use std::hint::black_box;

fn quick_with(f: impl FnOnce(&mut ExperimentConfig)) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    f(&mut c);
    c
}

fn bench_switch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_switches");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let config = quick_with(|c| c.topology.num_switches = n);
        let (net, demands) = config.instance(0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Algorithm::AlgNFusion.route(&net, &demands, config.h)));
        });
    }
    group.finish();
}

fn bench_capacity_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_qubits");
    group.sample_size(10);
    for cap in [6u32, 12] {
        let config = quick_with(|c| c.network.switch_capacity = cap);
        let (net, demands) = config.instance(0);
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| black_box(Algorithm::AlgNFusion.route(&net, &demands, config.h)));
        });
    }
    group.finish();
}

fn bench_demand_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9c_states");
    group.sample_size(10);
    for states in [10usize, 40] {
        let config = quick_with(|c| c.topology.num_user_pairs = states);
        let (net, demands) = config.instance(0);
        group.bench_with_input(BenchmarkId::from_parameter(states), &states, |b, _| {
            b.iter(|| black_box(Algorithm::AlgNFusion.route(&net, &demands, config.h)));
        });
    }
    group.finish();
}

fn bench_degree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9d_degree");
    group.sample_size(10);
    for degree in [5.0f64, 20.0] {
        let config = quick_with(|c| c.topology.avg_degree = degree);
        let (net, demands) = config.instance(0);
        group.bench_with_input(
            BenchmarkId::from_parameter(degree as u32),
            &degree,
            |b, _| {
                b.iter(|| black_box(Algorithm::AlgNFusion.route(&net, &demands, config.h)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_switch_scaling,
    bench_capacity_scaling,
    bench_demand_scaling,
    bench_degree_scaling
);
criterion_main!(benches);
