use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A totally ordered, finite `f64` used as a routing metric.
///
/// Entanglement-rate metrics are probabilities and products of
/// probabilities, so they are always finite and never NaN. `Metric` encodes
/// that invariant once so that search frontiers can live in a
/// [`std::collections::BinaryHeap`] without ad-hoc `partial_cmp` unwraps.
///
/// # Examples
///
/// ```
/// use fusion_graph::Metric;
///
/// let a = Metric::new(0.25);
/// let b = Metric::new(0.75);
/// assert!(a < b);
/// assert_eq!((a * b).value(), 0.1875);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric(f64);

impl Metric {
    /// The zero metric (certain failure).
    pub const ZERO: Metric = Metric(0.0);
    /// The unit metric (certain success; multiplicative identity).
    pub const ONE: Metric = Metric(1.0);

    /// Creates a metric from a finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "metric must be finite, got {value}");
        Metric(value)
    }

    /// Creates a metric, returning `None` for NaN or infinite input.
    #[must_use]
    pub fn try_new(value: f64) -> Option<Self> {
        value.is_finite().then_some(Metric(value))
    }

    /// Returns the underlying `f64`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the larger of two metrics.
    #[must_use]
    pub fn max(self, other: Metric) -> Metric {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two metrics.
    #[must_use]
    pub fn min(self, other: Metric) -> Metric {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Default for Metric {
    fn default() -> Self {
        Metric::ZERO
    }
}

impl Eq for Metric {}

impl PartialOrd for Metric {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Metric {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("metric is never NaN")
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<Metric> for f64 {
    fn from(m: Metric) -> f64 {
        m.0
    }
}

impl Add for Metric {
    type Output = Metric;
    fn add(self, rhs: Metric) -> Metric {
        Metric::new(self.0 + rhs.0)
    }
}

impl Sub for Metric {
    type Output = Metric;
    fn sub(self, rhs: Metric) -> Metric {
        Metric::new(self.0 - rhs.0)
    }
}

impl Mul for Metric {
    type Output = Metric;
    fn mul(self, rhs: Metric) -> Metric {
        Metric::new(self.0 * rhs.0)
    }
}

impl Div for Metric {
    type Output = Metric;
    fn div(self, rhs: Metric) -> Metric {
        Metric::new(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Metric::new(0.5), Metric::new(0.1), Metric::new(0.9)];
        v.sort();
        assert_eq!(
            v,
            vec![Metric::new(0.1), Metric::new(0.5), Metric::new(0.9)]
        );
    }

    #[test]
    fn arithmetic_matches_f64() {
        let a = Metric::new(0.5);
        let b = Metric::new(0.25);
        assert_eq!((a + b).value(), 0.75);
        assert_eq!((a - b).value(), 0.25);
        assert_eq!((a * b).value(), 0.125);
        assert_eq!((a / b).value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "metric must be finite")]
    fn nan_rejected() {
        let _ = Metric::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "metric must be finite")]
    fn infinity_rejected() {
        let _ = Metric::new(f64::INFINITY);
    }

    #[test]
    fn try_new_filters_non_finite() {
        assert!(Metric::try_new(f64::NAN).is_none());
        assert!(Metric::try_new(f64::NEG_INFINITY).is_none());
        assert_eq!(Metric::try_new(0.25), Some(Metric::new(0.25)));
    }

    #[test]
    fn min_max() {
        let a = Metric::new(0.2);
        let b = Metric::new(0.8);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn constants() {
        assert_eq!(Metric::ZERO.value(), 0.0);
        assert_eq!(Metric::ONE.value(), 1.0);
        assert_eq!(Metric::default(), Metric::ZERO);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Metric::new(0.25).to_string(), "0.25");
    }
}
