//! The paper's comparative claims (§V-C), checked across seeds in the
//! realistic small-p regime: ALG-N-FUSION dominates Q-CAST, Q-CAST-N, and
//! B1; all n-fusion algorithms beat classic swapping; the gaps widen as p
//! and q shrink.

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::baselines::{
    route_b1, route_qcast, route_qcast_n, DEFAULT_REGION_PATHS,
};
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::topology::TopologyConfig;

fn world(seed: u64, p: Option<f64>) -> (QuantumNetwork, Vec<Demand>) {
    let topo = TopologyConfig {
        num_switches: 40,
        num_user_pairs: 8,
        avg_degree: 8.0,
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    if let Some(p) = p {
        net.set_uniform_link_success(Some(p));
    }
    let demands = Demand::from_topology(&topo);
    (net, demands)
}

#[test]
fn alg_n_fusion_dominates_all_baselines_at_small_p() {
    // Q-CAST and B1 are dominated on every instance; Q-CAST-N (the
    // n-fusion-upgraded baseline) is a different heuristic that can edge
    // out ALG-N-FUSION on individual topologies, so — like the paper's
    // Fig. 7, which averages over instances — its dominance is asserted
    // in aggregate across the seed set. (A per-seed form held for seeds
    // hand-picked against real rand 0.8's ChaCha streams; the vendored
    // xoshiro StdRng generates different topologies, where a seed scan
    // showed ~1 in 5 instances narrowly favoring Q-CAST-N. The aggregate
    // form is stream-independent — keep it even if real rand returns.)
    let mut ours_sum = 0.0;
    let mut qcast_n_sum = 0.0;
    for seed in [1, 2, 3, 4] {
        let (net, demands) = world(seed, Some(0.25));
        let ours = alg_n_fusion(&net, &demands).total_rate(&net);
        let qcast = route_qcast(&net, &demands, 5).total_rate(&net);
        let qcast_n = route_qcast_n(&net, &demands, 5).total_rate(&net);
        let b1 = route_b1(&net, &demands, DEFAULT_REGION_PATHS).total_rate(&net);
        assert!(
            ours >= qcast - 1e-9,
            "seed {seed}: ALG-N {ours} < Q-CAST {qcast}"
        );
        assert!(ours >= b1 - 1e-9, "seed {seed}: ALG-N {ours} < B1 {b1}");
        ours_sum += ours;
        qcast_n_sum += qcast_n;
    }
    assert!(
        ours_sum >= qcast_n_sum - 1e-9,
        "ALG-N must dominate Q-CAST-N in aggregate: {ours_sum} < {qcast_n_sum}"
    );
}

#[test]
fn every_n_fusion_algorithm_beats_classic_at_small_p() {
    // §V-C1: "the performance under n-fusion significantly outperforms the
    // classic swapping method".
    for seed in [5, 6] {
        let (net, demands) = world(seed, Some(0.2));
        let qcast = route_qcast(&net, &demands, 5).total_rate(&net);
        for (name, rate) in [
            (
                "ALG-N-FUSION",
                alg_n_fusion(&net, &demands).total_rate(&net),
            ),
            (
                "Q-CAST-N",
                route_qcast_n(&net, &demands, 5).total_rate(&net),
            ),
        ] {
            assert!(
                rate >= qcast - 1e-9,
                "seed {seed}: {name} {rate} below Q-CAST {qcast}"
            );
        }
    }
}

#[test]
fn fusion_advantage_grows_as_p_shrinks() {
    // Fig. 8a: the ALG-N-FUSION / Q-CAST ratio increases as links get
    // lossier.
    let (net_hi, demands) = world(9, Some(0.4));
    let (net_lo, _) = world(9, Some(0.15));
    let ratio = |net: &QuantumNetwork| {
        let ours = alg_n_fusion(net, &demands).total_rate(net);
        let qcast = route_qcast(net, &demands, 5).total_rate(net).max(1e-6);
        ours / qcast
    };
    let hi = ratio(&net_hi);
    let lo = ratio(&net_lo);
    assert!(
        lo > hi,
        "advantage must grow as p shrinks: ratio(p=0.15) = {lo} vs ratio(p=0.4) = {hi}"
    );
}

#[test]
fn rates_rise_with_q() {
    // Fig. 8b trend for every algorithm.
    let (mut net, demands) = world(10, Some(0.3));
    let mut last = [0.0f64; 3];
    for q in [0.3, 0.6, 0.9] {
        net.set_swap_success(q);
        let now = [
            alg_n_fusion(&net, &demands).total_rate(&net),
            route_qcast(&net, &demands, 5).total_rate(&net),
            route_b1(&net, &demands, DEFAULT_REGION_PATHS).total_rate(&net),
        ];
        for (i, (prev, cur)) in last.iter().zip(&now).enumerate() {
            assert!(
                *cur >= *prev - 1e-9,
                "algorithm {i} regressed as q rose: {prev} -> {cur}"
            );
        }
        last = now;
    }
}

#[test]
fn rates_rise_with_demand_count() {
    // Fig. 9c trend: more demanded states, more expected states served.
    let mut last = 0.0;
    for pairs in [4usize, 8, 12] {
        let topo = TopologyConfig {
            num_switches: 40,
            num_user_pairs: pairs,
            avg_degree: 8.0,
            ..TopologyConfig::default()
        }
        .generate(77);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let rate = alg_n_fusion(&net, &demands).total_rate(&net);
        assert!(
            rate >= last - 0.3,
            "rate fell with more demands: {last} -> {rate}"
        );
        last = rate;
    }
}

#[test]
fn b1_is_distance_insensitive_inside_its_region() {
    // The Patil et al. heritage: once a region is allocated, B1's success
    // degrades slowly with distance compared to a single classic lane.
    let (net, demands) = world(21, Some(0.6));
    let b1 = route_b1(&net, &demands, DEFAULT_REGION_PATHS);
    let qcast = route_qcast(&net, &demands, 5);
    let mut b1_better = 0;
    let mut compared = 0;
    for i in 0..demands.len() {
        let (rb, rq) = (b1.demand_rate(&net, i), qcast.demand_rate(&net, i));
        if rq > 0.0 {
            compared += 1;
            if rb >= rq - 1e-9 {
                b1_better += 1;
            }
        }
    }
    assert!(compared > 0);
    assert!(
        b1_better * 2 >= compared,
        "B1 should match or beat a single classic lane on most demands \
         ({b1_better}/{compared})"
    );
}
