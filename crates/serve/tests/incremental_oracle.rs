//! The incremental-admission differential oracle.
//!
//! [`AdmitStrategy::Incremental`] must be **byte-identical** to
//! [`AdmitStrategy::FromScratch`] — not statistically close, not
//! rate-equal: the same `RouteTrace` (Algorithm 2 candidates, Algorithm 3
//! `MergeOutcome`, finished plan) at every admission, the same
//! `StateDigest` after every event, and the same `ReplayReport`
//! (byte-stable log + stats) over whole traces. Two states driven in
//! lockstep through random admit/depart/link-down traces check exactly
//! that, which makes the candidate cache's invalidation rule (footprint ×
//! flip-band, see `src/cache.rs`) falsifiable: one missed invalidation
//! anywhere and a later admission reuses stale candidates and diverges.
//!
//! The reduced grid runs in tier-1 CI on every push; the wide grid
//! (`--ignored`) covers larger networks and harsher p/q corners in the
//! scheduled `wide-differential` workflow:
//!
//! ```text
//! cargo test --release -p fusion-serve --test incremental_oracle -- --ignored
//! ```

use std::collections::BTreeMap;

use fusion_core::algorithms::{AdmitStrategy, RoutingConfig};
use fusion_core::{NetworkParams, QuantumNetwork};
use fusion_serve::{
    replay, AdmitOutcome, ReplayOptions, ServiceState, TraceConfig, TraceEventKind,
};
use fusion_telemetry::Registry;
use fusion_topology::{GeneratorKind, TopologyConfig};

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

#[allow(clippy::too_many_arguments)]
fn build_state(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    classic: bool,
    strategy: AdmitStrategy,
) -> ServiceState {
    let topo = TopologyConfig {
        num_switches: switches,
        num_user_pairs: pairs,
        avg_degree: 6.0,
        kind: if grid {
            GeneratorKind::Grid
        } else {
            GeneratorKind::default() // Waxman, the paper's family
        },
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);
    let base = if classic {
        RoutingConfig::classic()
    } else {
        RoutingConfig::n_fusion()
    };
    // Enabled telemetry throughout: the oracle's byte-identity assertions
    // double as proof that counters never affect behavior.
    ServiceState::with_telemetry(
        net,
        RoutingConfig {
            h,
            admit_strategy: strategy,
            ..base
        },
        Registry::enabled(),
    )
}

/// Drives an incremental and a from-scratch state through the same trace
/// in lockstep, asserting byte-identity of every admission trace and
/// every post-event digest, then replays the whole trace through the
/// replay harness on fresh states and compares the reports.
#[allow(clippy::too_many_arguments)]
fn check_incremental_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    classic: bool,
    events: usize,
    trace_seed: u64,
    link_down_rate: f64,
    mean_holding: f64,
    user_pool: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut inc = build_state(
        switches,
        pairs,
        grid,
        seed,
        p,
        q,
        h,
        classic,
        AdmitStrategy::Incremental,
    );
    let mut scratch = build_state(
        switches,
        pairs,
        grid,
        seed,
        p,
        q,
        h,
        classic,
        AdmitStrategy::FromScratch,
    );
    let trace = fusion_serve::generate(
        inc.network(),
        &TraceConfig {
            events,
            arrival_rate: 1.0,
            mean_holding,
            link_down_rate,
            user_pool,
            seed: trace_seed,
        },
    );

    // Outcomes are asserted identical at every step, so one id map
    // serves both states.
    let mut by_arrival = BTreeMap::new();
    for (i, event) in trace.events.iter().enumerate() {
        match event.kind {
            TraceEventKind::Arrival {
                arrival,
                source,
                dest,
            } => {
                let (outcome_inc, trace_inc) = inc.admit_traced(source, dest);
                let (outcome_scr, trace_scr) = scratch.admit_traced(source, dest);
                prop_assert_eq!(
                    &outcome_inc,
                    &outcome_scr,
                    "outcome diverged at arrival {} (event {})",
                    arrival,
                    i
                );
                prop_assert_eq!(
                    trace_inc == trace_scr,
                    true,
                    "RouteTrace diverged at arrival {} (event {})",
                    arrival,
                    i
                );
                if let AdmitOutcome::Accepted { id, .. } = outcome_inc {
                    by_arrival.insert(arrival, id);
                }
            }
            TraceEventKind::Departure { arrival } => {
                if let Some(id) = by_arrival.remove(&arrival) {
                    let a = inc.depart(id);
                    let b = scratch.depart(id);
                    prop_assert_eq!(a.is_some(), b.is_some(), "departure {} diverged", arrival);
                }
            }
            TraceEventKind::LinkDown { edge } => {
                let va = inc.fail_link(edge);
                let vb = scratch.fail_link(edge);
                prop_assert_eq!(&va, &vb, "eviction set diverged at event {}", i);
                for id in va {
                    by_arrival.retain(|_, v| *v != id);
                }
            }
        }
        prop_assert_eq!(
            inc.digest() == scratch.digest(),
            true,
            "digest diverged after event {}",
            i
        );
    }
    inc.audit().map_err(TestCaseError::fail)?;

    // Whole-trace replay through the harness: reports and final digests
    // byte-identical on fresh states.
    let mut fresh_inc = build_state(
        switches,
        pairs,
        grid,
        seed,
        p,
        q,
        h,
        classic,
        AdmitStrategy::Incremental,
    );
    let mut fresh_scr = build_state(
        switches,
        pairs,
        grid,
        seed,
        p,
        q,
        h,
        classic,
        AdmitStrategy::FromScratch,
    );
    let options = ReplayOptions::default();
    let report_inc = replay(&mut fresh_inc, &trace, &options);
    let report_scr = replay(&mut fresh_scr, &trace, &options);
    prop_assert_eq!(
        report_inc.fingerprint(),
        report_scr.fingerprint(),
        "replay logs diverged"
    );
    prop_assert_eq!(report_inc == report_scr, true, "replay reports diverged");
    prop_assert_eq!(
        fresh_inc.digest() == fresh_scr.digest(),
        true,
        "replay digests diverged"
    );
    // The incremental run must actually have exercised the cache, and
    // only the incremental strategy may register cache counters.
    let snap_inc = fresh_inc.registry().snapshot();
    prop_assert_eq!(snap_inc.value("serve.cache.admissions") > 0, events > 0);
    let snap_scr = fresh_scr.registry().snapshot();
    prop_assert!(snap_scr.get("serve.cache.admissions").is_none());
    Ok(())
}

/// Churn variant: churn-bound traces (short holds, link-downs, optionally
/// a small recurring user pool) drive the cache through its damage →
/// repair path rather than kill → miss. On top of the lockstep
/// byte-identity of [`check_incremental_case`], asserts that two
/// same-seed incremental runs produce byte-identical
/// [`fusion_telemetry::MetricsSnapshot`]s (counters are a pure function
/// of the counted work), and returns a snapshot so pinned callers can
/// assert the path they target (`serve.cache.repairs`,
/// `serve.cache.cert_saves`, ...) was actually exercised.
#[allow(clippy::too_many_arguments)]
fn check_churn_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    classic: bool,
    events: usize,
    trace_seed: u64,
    link_down_rate: f64,
    mean_holding: f64,
    user_pool: usize,
) -> Result<fusion_telemetry::MetricsSnapshot, proptest::test_runner::TestCaseError> {
    check_incremental_case(
        switches,
        pairs,
        grid,
        seed,
        p,
        q,
        h,
        classic,
        events,
        trace_seed,
        link_down_rate,
        mean_holding,
        user_pool,
    )?;

    let mut snaps = Vec::new();
    for _ in 0..2 {
        let mut st = build_state(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            classic,
            AdmitStrategy::Incremental,
        );
        let trace = fusion_serve::generate(
            st.network(),
            &TraceConfig {
                events,
                arrival_rate: 1.0,
                mean_holding,
                link_down_rate,
                user_pool,
                seed: trace_seed,
            },
        );
        let _ = replay(&mut st, &trace, &ReplayOptions::default());
        snaps.push(st.registry().snapshot());
    }
    prop_assert_eq!(
        snaps[0].digest(),
        snaps[1].digest(),
        "metrics digests diverged across same-seed runs"
    );
    prop_assert_eq!(
        snaps[0] == snaps[1],
        true,
        "metrics snapshots diverged across same-seed runs"
    );
    Ok(snaps.swap_remove(0))
}

/// The hardest invalidation case, pinned deterministically for tier-1:
/// `fail_link` returns capacity (residuals *increase*, so stale cached
/// candidates would under-route), after which re-admitting the evicted
/// pair must be byte-identical between strategies.
#[test]
fn fail_link_then_readmission_is_byte_identical() {
    let mut inc = build_state(
        22,
        3,
        false,
        9,
        0.9,
        0.9,
        3,
        false,
        AdmitStrategy::Incremental,
    );
    let mut scratch = build_state(
        22,
        3,
        false,
        9,
        0.9,
        0.9,
        3,
        false,
        AdmitStrategy::FromScratch,
    );
    let users: Vec<_> = {
        let net = inc.network();
        net.graph()
            .node_ids()
            .filter(|&v| !net.is_switch(v))
            .collect()
    };
    let (s, d) = (users[0], users[1]);

    // Warm the cache: admit the pair repeatedly until saturation.
    let mut live = Vec::new();
    loop {
        let (a, ta) = inc.admit_traced(s, d);
        let (b, tb) = scratch.admit_traced(s, d);
        assert_eq!(a, b);
        assert!(ta == tb, "warmup traces diverged");
        match a {
            AdmitOutcome::Accepted { id, .. } => live.push(id),
            AdmitOutcome::Rejected(_) => break,
        }
    }
    assert!(!live.is_empty(), "small world must admit at least one plan");

    // Cut a fiber one live plan crosses: its capacity comes back.
    let lp = inc.get(live[0]).expect("plan is live").clone();
    let &((u, v), _) = lp.usage.edge_channels.first().expect("plan uses edges");
    let edge = inc.network().graph().find_edge(u, v).expect("edge exists");
    let evicted_inc = inc.fail_link(edge);
    let evicted_scr = scratch.fail_link(edge);
    assert_eq!(evicted_inc, evicted_scr);
    assert!(!evicted_inc.is_empty());
    assert!(
        inc.digest() == scratch.digest(),
        "digest diverged after cut"
    );

    // Re-admission of the same pair against the *restored* capacity: any
    // cached width slice that missed its invalidation would reuse
    // candidates computed for the saturated network and diverge here.
    let (a, ta) = inc.admit_traced(s, d);
    let (b, tb) = scratch.admit_traced(s, d);
    assert_eq!(a, b, "re-admission outcome diverged");
    assert!(ta == tb, "re-admission trace diverged");
    assert!(
        matches!(a, AdmitOutcome::Accepted { .. }),
        "restored capacity must readmit the evicted pair"
    );
    assert!(inc.digest() == scratch.digest());
    inc.audit().unwrap();
    scratch.audit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reduced tier-1 grid: small worlds, short traces, every event
    /// byte-compared between strategies.
    #[test]
    fn incremental_matches_from_scratch_reduced(
        switches in 10usize..28,
        pairs in 2usize..6,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000,
        p in 0.55f64..0.95,
        q in 0.7f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        events in 30usize..80,
        trace_seed in 0u64..1_000,
        link_down_rate in 0.0f64..0.15,
        mean_holding in 4.0f64..40.0,
    ) {
        check_incremental_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, 0,
        )?;
    }
}

/// Pinned churn-bound cases for tier-1: high-churn traces (user-pool 0,
/// short holds, link-downs) must stay byte-identical to from-scratch at
/// every event and produce the same `MetricsSnapshot` twice from the
/// same seed. Damage is inflicted organically here; whether a damaged
/// slot survives to be repair-served is a deep tail of the trace
/// distribution (the flipping batch must avoid every ordinal-0 read),
/// so the repairs-fire guarantee is pinned separately, at the state
/// level, in `state::tests::repair_fires_through_the_full_admission_path`.
#[test]
fn repair_heavy_churn_pinned_cases() {
    for trace_seed in [11u64, 12, 13, 14] {
        check_churn_case(
            24, 4, false, 17, 0.9, 0.9, 3, false, 90, trace_seed, 0.1, 3.0, 0,
        )
        .expect("repair-heavy oracle case failed");
    }
}

/// Certificate-heavy pinned cases for tier-1: a small recurring user
/// pool over a churning network is exactly the regime the certificate
/// footprints are built for — the same pairs re-admit while charges and
/// returns flip thresholds all over the probed region. Byte-identity to
/// from-scratch is asserted at every event by the harness; on top, the
/// certificates must *do their job*: at least one flip must land on a
/// raw-footprint read the certificate proves irrelevant
/// (`serve.cache.cert_saves`), and flips that do land must be classified
/// past ordinal 0 at least once (`serve.cache.flip_ordinal` — the "churn
/// wall" this PR breaks was every flip killing at ordinal 0).
#[test]
fn certificate_churn_pinned_cases() {
    let mut total_saves = 0;
    let mut past_zero = 0;
    for trace_seed in [21u64, 22, 23, 24] {
        let snap = check_churn_case(
            24, 4, false, 17, 0.9, 0.9, 3, false, 90, trace_seed, 0.1, 3.0, 4,
        )
        .expect("certificate-churn oracle case failed");
        total_saves += snap.value("serve.cache.cert_saves");
        let flips_total = snap.value("serve.cache.flip_ordinal/count");
        let flips_at_zero = snap.value("serve.cache.flip_ordinal/p2_00");
        past_zero += flips_total - flips_at_zero;
    }
    assert!(
        total_saves > 0,
        "certificate footprints never saved a slot a raw footprint would have killed"
    );
    assert!(
        past_zero > 0,
        "every tracked flip classified at ordinal 0: repair lattice never engaged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reduced repair-heavy grid for tier-1: churn-bound traces (short
    /// holds, link-downs) where invalidations land mid-slot and slots are
    /// repaired, not killed. Every event byte-compared between
    /// strategies; counters deterministic across same-seed runs.
    #[test]
    fn repair_heavy_matches_from_scratch_reduced(
        switches in 12usize..28,
        pairs in 2usize..6,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000,
        p in 0.55f64..0.95,
        q in 0.7f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        events in 40usize..90,
        trace_seed in 0u64..1_000,
        link_down_rate in 0.05f64..0.3,
        mean_holding in 1.0f64..6.0,
    ) {
        check_churn_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, 0,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reduced certificate-churn grid for tier-1: small recurring user
    /// pools over churning worlds, so the same pairs re-admit while
    /// thresholds flip — the regime where certificate footprints decide
    /// between reuse, repair, and kill on nearly every event. Every event
    /// byte-compared between strategies.
    #[test]
    fn certificate_churn_matches_from_scratch_reduced(
        switches in 12usize..28,
        pairs in 2usize..6,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000,
        p in 0.55f64..0.95,
        q in 0.7f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        events in 40usize..90,
        trace_seed in 0u64..1_000,
        link_down_rate in 0.0f64..0.2,
        mean_holding in 1.0f64..8.0,
        user_pool in 2usize..6,
    ) {
        check_churn_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, user_pool,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide repair-heavy grid for the scheduled `wide-differential`
    /// workflow: larger churn-bound worlds, longer traces, harsher
    /// failure rates — the regime where partial repair and the shared
    /// SPT cache carry the load.
    #[test]
    #[ignore = "wide repair-heavy oracle grid; minutes of runtime, run with -- --ignored"]
    fn repair_heavy_matches_from_scratch_wide(
        switches in 12usize..80,
        pairs in 2usize..8,
        grid in proptest::bool::ANY,
        seed in 0u64..10_000,
        p in 0.4f64..1.0,
        q in 0.5f64..1.0,
        h in 1usize..5,
        classic in proptest::bool::ANY,
        events in 60usize..200,
        trace_seed in 0u64..10_000,
        link_down_rate in 0.05f64..0.35,
        mean_holding in 1.0f64..8.0,
    ) {
        check_churn_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, 0,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide certificate-churn grid for the scheduled `wide-differential`
    /// workflow: larger worlds, longer recurring-pool traces, harsher
    /// churn — the regime where a single unsound certificate (a tracked
    /// read missing from the footprint) would let a stale slice serve
    /// and diverge from from-scratch.
    #[test]
    #[ignore = "wide certificate-churn oracle grid; minutes of runtime, run with -- --ignored"]
    fn certificate_churn_matches_from_scratch_wide(
        switches in 12usize..80,
        pairs in 2usize..8,
        grid in proptest::bool::ANY,
        seed in 0u64..10_000,
        p in 0.4f64..1.0,
        q in 0.5f64..1.0,
        h in 1usize..5,
        classic in proptest::bool::ANY,
        events in 60usize..200,
        trace_seed in 0u64..10_000,
        link_down_rate in 0.0f64..0.35,
        mean_holding in 1.0f64..10.0,
        user_pool in 2usize..8,
    ) {
        check_churn_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, user_pool,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide grid for the scheduled `wide-differential` workflow: larger
    /// networks, longer traces, harsher failure rates.
    #[test]
    #[ignore = "wide incremental-oracle grid; minutes of runtime, run with -- --ignored"]
    fn incremental_matches_from_scratch_wide(
        switches in 10usize..80,
        pairs in 2usize..8,
        grid in proptest::bool::ANY,
        seed in 0u64..10_000,
        p in 0.4f64..1.0,
        q in 0.5f64..1.0,
        h in 1usize..5,
        classic in proptest::bool::ANY,
        events in 60usize..240,
        trace_seed in 0u64..10_000,
        link_down_rate in 0.0f64..0.25,
        mean_holding in 2.0f64..60.0,
    ) {
        check_incremental_case(
            switches, pairs, grid, seed, p, q, h, classic,
            events, trace_seed, link_down_rate, mean_holding, 0,
        )?;
    }
}
