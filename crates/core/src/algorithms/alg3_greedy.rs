//! Gain-per-qubit variant of Algorithm 3 (the pipeline default).
//!
//! The paper's pseudocode consumes candidates width-major: every width-5
//! route in the network is placed before any width-4 route. In the
//! evaluation regime its own baseline numbers imply (short routes over
//! lossy links, per-link success ≈ 0.6-0.7), maximal-width channels buy
//! almost no extra rate per qubit — a width-5 hop costs five times a
//! width-1 hop for a channel-success gain that is already saturated — so a
//! literal width-major merge strands half the network's qubits on one
//! over-wide branch per demand and loses to even the B1 baseline
//! (see EXPERIMENTS.md, "merge-order ablation").
//!
//! This variant keeps everything else from Algorithm 3 — candidate set,
//! capacity accounting, same-demand edge sharing — but accepts candidates
//! greedily by *marginal Eq.-1 gain per qubit spent*, which directly
//! implements the paper's Main Idea 2 ("a shorter path will use fewer
//! resources in the network, allowing the network to handle more
//! demands"). Width-major order remains available as
//! [`super::alg3::paths_merge`] for the ablation bench.
//!
//! # The incremental gain queue
//!
//! A naive greedy merge re-evaluates every still-viable candidate on every
//! acceptance round — O(rounds × candidates) marginal-gain evaluations,
//! each of which walks the demand's flow graph twice. That full re-scan is
//! kept as [`paths_merge_greedy_reference`] (the differential-testing
//! oracle); the production [`paths_merge_greedy`] reaches the same plan
//! through an incremental priority queue built on one observation about
//! what an acceptance can actually change:
//!
//! * a candidate's `need`/`cost` depend only on its own hops and on which
//!   of its demand's hops are already assigned — a **same-demand** event;
//! * its marginal gain depends only on its own demand's current plan —
//!   again same-demand;
//! * its feasibility additionally depends on the remaining qubits at its
//!   own nodes, which an acceptance only shrinks at the **nodes of the
//!   accepted path**.
//!
//! So accepting a candidate invalidates exactly the union of its demand's
//! candidates and the node-overlapping candidates ([`CandidateIndex`]
//! holds both inverted indexes, built once up front). The two halves are
//! treated differently:
//!
//! * **Same-demand** candidates are *eagerly rescored* and re-pushed with
//!   fresh keys. Lazy pop-time revalidation is not enough here: sharing
//!   can make a sibling candidate's unshared remainder cheaper, so its
//!   score may *rise*, and a lazily-handled riser would stay buried under
//!   entries it now beats (classic lazy deletion only tolerates scores
//!   that fall, à la lazy Dijkstra).
//! * **Node-overlapping** candidates of other demands keep their key —
//!   their score cannot have changed — and only get a capacity-stale flag.
//!   The flag is resolved on pop: recheck the cached `need` against the
//!   current `remaining`, and on failure drop the candidate (no sharing)
//!   or park it aside (sharing, where a later same-demand acceptance can
//!   shrink its `need` and revive it through the eager rescore).
//!
//! Every heap entry carries the version of the evaluation that produced
//! it; rescoring bumps the candidate's version so superseded entries are
//! skipped when popped. Both implementations rank candidates with the
//! same [`MergeKey`] — score (gain per qubit) descending, then raw gain
//! descending, then qubit cost ascending, then candidate index ascending —
//! and share the same evaluation arithmetic, so their outcomes are
//! byte-identical (property-tested in `tests/merge_differential.rs`).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

use fusion_graph::NodeId;
use fusion_telemetry::{Counter, Registry};

use crate::algorithms::alg1::PathConstraints;
use crate::algorithms::alg2::CandidatePath;
use crate::algorithms::alg3::MergeOutcome;
use crate::demand::{Demand, DemandId};
use crate::flow::WidthedPath;
use crate::metrics;
use crate::network::QuantumNetwork;
use crate::plan::{DemandPlan, SwapMode};

/// Gains below this threshold are treated as saturation and not worth
/// qubits.
const MIN_GAIN: f64 = 1e-9;

/// Counter handles for the incremental gain queue. Default handles are
/// no-ops; wire real ones with [`MergeCounters::from_registry`]. All
/// counts are deterministic functions of the merge inputs.
#[derive(Debug, Clone, Default)]
pub struct MergeCounters {
    /// Entries pushed into the gain heap (initial scores + rescores).
    pub heap_pushes: Counter,
    /// Candidates invalidated by acceptances (same-demand rescores plus
    /// capacity-stale flags on node-overlapping candidates).
    pub invalidations: Counter,
    /// Popped entries skipped as superseded, killed, or capacity-stale.
    pub stale_pops: Counter,
    /// Candidates accepted into a plan.
    pub accepts: Counter,
}

impl MergeCounters {
    /// Creates handles named `alg3.heap_pushes`, `alg3.invalidations`,
    /// `alg3.stale_pops`, and `alg3.accepts` in `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return MergeCounters::default();
        }
        MergeCounters {
            heap_pushes: registry.counter("alg3.heap_pushes"),
            invalidations: registry.counter("alg3.invalidations"),
            stale_pops: registry.counter("alg3.stale_pops"),
            accepts: registry.counter("alg3.accepts"),
        }
    }
}

/// The total acceptance order of the gain-per-qubit merge, shared by the
/// queue and the reference re-scan so equal-score ties break identically:
/// score (marginal gain per qubit) descending, then raw gain descending,
/// then qubit cost ascending, then candidate index ascending. The index
/// makes the order strict — no two candidates ever compare equal — which
/// is what pins the historically implicit "first scanned wins" tie-break.
#[derive(Debug, Clone, Copy)]
pub struct MergeKey {
    /// Marginal gain per switch qubit spent (`gain / max(cost, 1)`).
    pub score: f64,
    /// Marginal Eq.-1 (or classic success) gain of accepting now.
    pub gain: f64,
    /// Switch qubits the acceptance would consume.
    pub cost: u32,
    /// Index into the candidate slice.
    pub index: usize,
}

impl MergeKey {
    /// Builds the key for candidate `index` from its fresh evaluation.
    #[must_use]
    pub fn new(gain: f64, cost: u32, index: usize) -> Self {
        MergeKey {
            score: gain / f64::from(cost.max(1)),
            gain,
            cost,
            index,
        }
    }
}

impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater = accepted earlier. Gains are finite (flow rates are
        // clamped probabilities), so total_cmp agrees with the naive
        // partial order while keeping Ord's contract.
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.gain.total_cmp(&other.gain))
            .then_with(|| other.cost.cmp(&self.cost))
            .then_with(|| other.index.cmp(&self.index))
    }
}

impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeKey {}

/// Inverted indexes over a candidate set: which candidates visit a node,
/// and which belong to a demand. Built once per merge; used to compute the
/// exact invalidation set of an acceptance.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    by_node: HashMap<NodeId, Vec<usize>>,
    by_demand: HashMap<DemandId, Vec<usize>>,
}

impl CandidateIndex {
    /// Indexes `candidates` by visited node and by demand.
    #[must_use]
    pub fn build(candidates: &[CandidatePath]) -> Self {
        let mut by_node: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut by_demand: HashMap<DemandId, Vec<usize>> = HashMap::new();
        for (ci, cand) in candidates.iter().enumerate() {
            by_demand.entry(cand.demand).or_default().push(ci);
            for &node in cand.path.nodes() {
                let bucket = by_node.entry(node).or_default();
                // A simple path visits each node once, but synthetic
                // candidates may not be simple; keep the bucket a set.
                if bucket.last() != Some(&ci) {
                    bucket.push(ci);
                }
            }
        }
        CandidateIndex { by_node, by_demand }
    }

    /// Candidates of `demand`, in ascending index order.
    #[must_use]
    pub fn same_demand(&self, demand: DemandId) -> &[usize] {
        self.by_demand.get(&demand).map_or(&[], Vec::as_slice)
    }

    /// The exact invalidation set of accepting `accepted`: candidates
    /// sharing at least one node with its path plus all candidates of its
    /// demand (including `accepted` itself), in ascending index order.
    /// Everything outside this set keeps a provably unchanged evaluation
    /// — its need, cost, gain, and feasibility are functions of state the
    /// acceptance did not touch.
    #[must_use]
    pub fn invalidated_by(&self, accepted: &CandidatePath) -> Vec<usize> {
        let mut set: Vec<usize> = self.same_demand(accepted.demand).to_vec();
        for &node in accepted.path.nodes() {
            if let Some(bucket) = self.by_node.get(&node) {
                set.extend_from_slice(bucket);
            }
        }
        set.sort_unstable();
        set.dedup();
        set
    }
}

/// Per-node qubit totals over the candidate's unshared hops, plus the
/// switch-qubit cost of accepting it now. Shared hops (already assigned to
/// the same demand) are free under n-fusion sharing.
fn need_and_cost(
    net: &QuantumNetwork,
    cand: &CandidatePath,
    assigned: &HashSet<(DemandId, (NodeId, NodeId))>,
    share_edges: bool,
) -> (BTreeMap<NodeId, u32>, u32) {
    let mut need: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut cost: u32 = 0;
    for (u, v) in cand.path.hops_iter() {
        let key = (cand.demand, PathConstraints::hop_key(u, v));
        if share_edges && assigned.contains(&key) {
            continue;
        }
        *need.entry(u).or_insert(0) += cand.width;
        *need.entry(v).or_insert(0) += cand.width;
        // Only switch qubits are scarce.
        cost += u32::from(net.is_switch(u)) * cand.width + u32::from(net.is_switch(v)) * cand.width;
    }
    (need, cost)
}

/// Marginal rate gain of accepting `cand` on top of `plan`, whose current
/// rate is `base` (passed in so a caller rescoring a whole demand pays for
/// the base evaluation once; `base` must equal `plan.rate(net, mode)`).
fn marginal_gain(
    net: &QuantumNetwork,
    cand: &CandidatePath,
    plan: &DemandPlan,
    base: f64,
    mode: SwapMode,
    share_edges: bool,
) -> f64 {
    match mode {
        SwapMode::NFusion => {
            let mut widened = plan.flow.clone();
            crate::algorithms::alg3::record_route(
                &mut widened,
                &cand.path,
                cand.width,
                share_edges,
            );
            metrics::flow_rate(net, &widened).value() - base
        }
        SwapMode::Classic => {
            // Independent alternative paths: gain of one more.
            let wp = WidthedPath::uniform(cand.path.clone(), cand.width);
            let s = metrics::classic::success_probability(net, &wp);
            (1.0 - (1.0 - base) * (1.0 - s)) - base
        }
    }
}

/// A heap entry: the key a candidate was scored with plus the evaluation
/// version it belongs to. Entries whose version fell behind are skipped on
/// pop (lazy deletion).
struct Entry {
    key: MergeKey,
    version: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

/// The immutable knobs of one merge run, grouped so the queue internals
/// do not thread five parameters through every call.
struct MergeCtx<'a> {
    net: &'a QuantumNetwork,
    candidates: &'a [CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
}

/// Mutable per-candidate queue state (see the module docs).
struct GainQueue {
    alive: Vec<bool>,
    /// Evaluation version per candidate; a push records it, a rescore
    /// bumps it, a pop skips entries that fell behind.
    version: Vec<u32>,
    /// Set when an acceptance elsewhere shrank `remaining` at one of this
    /// candidate's nodes: the score is still exact, only feasibility
    /// needs rechecking on pop.
    capacity_stale: Vec<bool>,
    /// Cached (key, need) of the live evaluation. `None` for candidates
    /// that are dead or parked (alive but currently infeasible under
    /// sharing, awaiting a same-demand rescore).
    eval: Vec<Option<(MergeKey, BTreeMap<NodeId, u32>)>>,
    heap: BinaryHeap<Entry>,
    counters: MergeCounters,
}

impl GainQueue {
    fn new(n: usize, counters: &MergeCounters) -> Self {
        GainQueue {
            alive: vec![true; n],
            version: vec![0; n],
            capacity_stale: vec![false; n],
            eval: vec![None; n],
            heap: BinaryHeap::with_capacity(n),
            counters: counters.clone(),
        }
    }

    /// Scores candidate `ci` against the current merge state and either
    /// pushes it, parks it (sharing + infeasible), or kills it. Mirrors
    /// one reference-scan visit exactly, including the order of the kill
    /// checks. `base` must equal `plan.rate(ctx.net, ctx.mode)`.
    fn rescore(
        &mut self,
        ctx: &MergeCtx<'_>,
        ci: usize,
        plan: &DemandPlan,
        base: f64,
        assigned: &HashSet<(DemandId, (NodeId, NodeId))>,
        remaining: &[u32],
    ) {
        // Supersede any live entry for this candidate.
        self.version[ci] += 1;
        self.eval[ci] = None;
        let cand = &ctx.candidates[ci];
        if let Some(limit) = ctx.max_paths_per_demand {
            if plan.paths.len() >= limit {
                self.alive[ci] = false;
                return;
            }
        }
        let (need, cost) = need_and_cost(ctx.net, cand, assigned, ctx.share_edges);
        if need.is_empty() {
            self.alive[ci] = false; // fully shared: nothing to add
            return;
        }
        if need
            .iter()
            .any(|(&node, &amount)| remaining[node.index()] < amount)
        {
            // Capacity only shrinks within a run unless sharing opens up;
            // keep the candidate alive (parked) only in sharing mode.
            if !ctx.share_edges {
                self.alive[ci] = false;
            }
            return;
        }
        let gain = marginal_gain(ctx.net, cand, plan, base, ctx.mode, ctx.share_edges);
        if gain < MIN_GAIN {
            self.alive[ci] = false;
            return;
        }
        let key = MergeKey::new(gain, cost, ci);
        self.eval[ci] = Some((key, need));
        self.capacity_stale[ci] = false;
        self.counters.heap_pushes.inc();
        self.heap.push(Entry {
            key,
            version: self.version[ci],
        });
    }
}

/// Runs the gain-per-qubit merge over the candidate set through the
/// incremental gain queue (see the module docs for the design and the
/// equivalence argument). Parameters are as in
/// [`super::alg3::paths_merge_bounded`].
#[must_use]
pub fn paths_merge_greedy(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
) -> MergeOutcome {
    paths_merge_greedy_with_capacity(
        net,
        demands,
        candidates,
        mode,
        share_edges,
        max_paths_per_demand,
        &net.capacities(),
    )
}

/// [`paths_merge_greedy`] against an explicit starting qubit budget
/// instead of the network's built-in capacities — the service layer merges
/// new arrivals against the residual capacity left by live plans. The
/// capacity vector only seeds `remaining`; scoring arithmetic is
/// unchanged, so the outcome is byte-identical to running
/// [`paths_merge_greedy`] on a network whose capacities equal `capacity`.
///
/// # Panics
///
/// Panics if `capacity` is shorter than the node count.
#[must_use]
pub fn paths_merge_greedy_with_capacity(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
    capacity: &[u32],
) -> MergeOutcome {
    paths_merge_greedy_counted(
        net,
        demands,
        candidates,
        mode,
        share_edges,
        max_paths_per_demand,
        capacity,
        &MergeCounters::default(),
    )
}

/// [`paths_merge_greedy_with_capacity`] with queue counters recording
/// into `counters`. Counters never influence the outcome — it stays
/// byte-identical to the uncounted run.
///
/// # Panics
///
/// As [`paths_merge_greedy_with_capacity`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn paths_merge_greedy_counted(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
    capacity: &[u32],
    counters: &MergeCounters,
) -> MergeOutcome {
    assert!(
        capacity.len() >= net.node_count(),
        "capacity vector too short"
    );
    let ctx = MergeCtx {
        net,
        candidates,
        mode,
        share_edges: share_edges && mode == SwapMode::NFusion,
        max_paths_per_demand,
    };
    let mut remaining = capacity[..net.node_count()].to_vec();
    let mut plans: Vec<DemandPlan> = demands.iter().map(|&d| DemandPlan::empty(d)).collect();
    let index_of: HashMap<DemandId, usize> =
        demands.iter().enumerate().map(|(i, d)| (d.id, i)).collect();
    let mut assigned: HashSet<(DemandId, (NodeId, NodeId))> = HashSet::new();
    let index = CandidateIndex::build(candidates);
    let mut queue = GainQueue::new(candidates.len(), counters);

    // Initial build: score every candidate against the empty plans.
    for (ci, cand) in candidates.iter().enumerate() {
        let Some(&plan_idx) = index_of.get(&cand.demand) else {
            queue.alive[ci] = false;
            continue;
        };
        let plan = &plans[plan_idx];
        let base = plan.rate(net, mode);
        queue.rescore(&ctx, ci, plan, base, &assigned, &remaining);
    }

    while let Some(entry) = queue.heap.pop() {
        let ci = entry.key.index;
        if !queue.alive[ci] || entry.version != queue.version[ci] {
            queue.counters.stale_pops.inc();
            continue; // superseded by a rescore, or killed
        }
        if queue.capacity_stale[ci] {
            // The score is exact; only remaining capacity moved under it.
            let need = &queue.eval[ci]
                .as_ref()
                .expect("live entry has an evaluation")
                .1;
            if need
                .iter()
                .any(|(&node, &amount)| remaining[node.index()] < amount)
            {
                queue.counters.stale_pops.inc();
                if ctx.share_edges {
                    // Park: a same-demand acceptance may shrink its need
                    // and revive it via the eager rescore.
                    queue.eval[ci] = None;
                } else {
                    queue.alive[ci] = false;
                }
                continue;
            }
            queue.capacity_stale[ci] = false;
        }

        // Accept: highest current MergeKey among all feasible candidates.
        queue.counters.accepts.inc();
        let (_, need) = queue.eval[ci].take().expect("live entry has an evaluation");
        let cand = &candidates[ci];
        let plan_idx = index_of[&cand.demand];
        for (&node, &amount) in &need {
            remaining[node.index()] -= amount;
        }
        for (u, v) in cand.path.hops_iter() {
            assigned.insert((cand.demand, PathConstraints::hop_key(u, v)));
        }
        let plan = &mut plans[plan_idx];
        crate::algorithms::alg3::record_route(
            &mut plan.flow,
            &cand.path,
            cand.width,
            ctx.share_edges,
        );
        plan.paths
            .push(WidthedPath::uniform(cand.path.clone(), cand.width));
        queue.alive[ci] = false;

        // Invalidate exactly what the acceptance can have changed:
        // same-demand candidates are rescored eagerly (their score may
        // rise), node-overlapping candidates of other demands only get
        // the capacity-stale flag (their score is provably unchanged).
        let plan = &plans[plan_idx];
        let base = plan.rate(net, mode);
        for cj in index.invalidated_by(cand) {
            if !queue.alive[cj] {
                continue;
            }
            queue.counters.invalidations.inc();
            if candidates[cj].demand == cand.demand {
                queue.rescore(&ctx, cj, plan, base, &assigned, &remaining);
            } else {
                queue.capacity_stale[cj] = true;
            }
        }
    }
    MergeOutcome { plans, remaining }
}

/// The original full re-scan merge: re-ranks every still-viable candidate
/// on every acceptance round. O(rounds × candidates) marginal-gain
/// evaluations — kept verbatim (modulo the shared [`MergeKey`] tie-break)
/// as the differential-testing oracle for [`paths_merge_greedy`] and as
/// the baseline of the `alg3_merge` perfbench workload.
#[must_use]
pub fn paths_merge_greedy_reference(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
) -> MergeOutcome {
    let share_edges = share_edges && mode == SwapMode::NFusion;
    let mut remaining = net.capacities();
    let mut plans: Vec<DemandPlan> = demands.iter().map(|&d| DemandPlan::empty(d)).collect();
    let index_of: HashMap<DemandId, usize> =
        demands.iter().enumerate().map(|(i, d)| (d.id, i)).collect();
    let mut assigned: HashSet<(DemandId, (NodeId, NodeId))> = HashSet::new();
    let mut alive: Vec<bool> = vec![true; candidates.len()];

    loop {
        // Rank every still-viable candidate by marginal gain per qubit.
        let mut best: Option<(MergeKey, BTreeMap<NodeId, u32>)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let Some(&plan_idx) = index_of.get(&cand.demand) else {
                alive[ci] = false;
                continue;
            };
            let plan = &plans[plan_idx];
            if let Some(limit) = max_paths_per_demand {
                if plan.paths.len() >= limit {
                    alive[ci] = false;
                    continue;
                }
            }
            let (need, cost) = need_and_cost(net, cand, &assigned, share_edges);
            if need.is_empty() {
                alive[ci] = false; // fully shared: nothing to add
                continue;
            }
            if need
                .iter()
                .any(|(&node, &amount)| remaining[node.index()] < amount)
            {
                // Capacity only shrinks within a run unless sharing opens
                // up; keep the candidate alive only in sharing mode.
                if !share_edges {
                    alive[ci] = false;
                }
                continue;
            }
            let gain = marginal_gain(net, cand, plan, plan.rate(net, mode), mode, share_edges);
            if gain < MIN_GAIN {
                alive[ci] = false;
                continue;
            }
            let key = MergeKey::new(gain, cost, ci);
            if best.as_ref().is_none_or(|(b, _)| key > *b) {
                best = Some((key, need));
            }
        }

        let Some((key, need)) = best else { break };
        let ci = key.index;
        let cand = &candidates[ci];
        let plan_idx = index_of[&cand.demand];
        for (&node, &amount) in &need {
            remaining[node.index()] -= amount;
        }
        for (u, v) in cand.path.hops_iter() {
            assigned.insert((cand.demand, PathConstraints::hop_key(u, v)));
        }
        let plan = &mut plans[plan_idx];
        crate::algorithms::alg3::record_route(&mut plan.flow, &cand.path, cand.width, share_edges);
        plan.paths
            .push(WidthedPath::uniform(cand.path.clone(), cand.width));
        alive[ci] = false;
    }
    MergeOutcome { plans, remaining }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::alg2::paths_selection;
    use crate::demand::DemandId;
    use fusion_graph::{Metric, Path};

    fn cand(demand: usize, nodes: Vec<NodeId>, width: u32, metric: f64) -> CandidatePath {
        CandidatePath {
            demand: DemandId::new(demand),
            path: Path::new(nodes),
            width,
            metric: Metric::new(metric),
        }
    }

    /// One demand, one route, offered at widths 1, 2 and 5; p high enough
    /// that width-5 wastes qubits.
    fn high_p_net() -> (QuantumNetwork, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 10);
        let v2 = b.switch(2.0, 0.0, 10);
        let d = b.user(3.0, 0.0);
        for (u, v) in [(s, v1), (v1, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.8));
        net.set_swap_success(0.9);
        (net, vec![s, v1, v2, d])
    }

    #[test]
    fn prefers_cheap_width_when_links_are_good() {
        let (net, n) = high_p_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![
            cand(0, route.clone(), 5, 0.80),
            cand(0, route.clone(), 2, 0.78),
            cand(0, route, 1, 0.52),
        ];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        // The first accepted path must be a narrow one (gain per qubit),
        // leaving capacity for Algorithm 4 / other demands.
        let first_width = out.plans[0].paths[0].widths[0];
        assert!(first_width <= 2, "greedy picked width {first_width}");
    }

    #[test]
    fn prefers_wide_when_links_are_bad() {
        let (mut net, n) = high_p_net();
        net.set_uniform_link_success(Some(0.1));
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        // Width-1: (0.1)^3 q^2 ~ 8e-4; width-5: (0.41)^3 q^2 ~ 0.056.
        // Gain per qubit: wide wins by ~14x even at 5x the cost.
        let candidates = vec![cand(0, route.clone(), 5, 0.056), cand(0, route, 1, 8.1e-4)];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        assert_eq!(out.plans[0].paths[0].widths[0], 5);
    }

    #[test]
    fn capacity_conserved_and_no_oversubscription() {
        let (net, n) = high_p_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[3]),
            Demand::new(DemandId::new(1), n[3], n[0]),
        ];
        let caps = net.capacities();
        let candidates = paths_selection(&net, &demands, &caps, 3, 5, SwapMode::NFusion);
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        for node in [n[1], n[2]] {
            let spent: u32 = out.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert!(spent <= net.capacity(node));
            assert_eq!(spent + out.remaining[node.index()], net.capacity(node));
        }
    }

    #[test]
    fn respects_path_cap() {
        let (net, n) = high_p_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![cand(0, route.clone(), 1, 0.5), cand(0, route, 2, 0.7)];
        let out = paths_merge_greedy(
            &net,
            &demands,
            &candidates,
            SwapMode::NFusion,
            true,
            Some(1),
        );
        assert_eq!(out.plans[0].paths.len(), 1);
    }

    #[test]
    fn saturated_demands_stop_consuming() {
        let (mut net, n) = high_p_net();
        net.set_uniform_link_success(Some(1.0));
        net.set_swap_success(1.0);
        let demands = [Demand::new(DemandId::new(0), n[0], n[3])];
        let route = vec![n[0], n[1], n[2], n[3]];
        let candidates = vec![
            cand(0, route.clone(), 1, 1.0),
            cand(0, route.clone(), 2, 1.0),
            cand(0, route, 5, 1.0),
        ];
        let out = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        // Rate 1.0 after the first width-1 path; everything else is
        // saturation and must be declined.
        assert_eq!(out.plans[0].paths.len(), 1);
        assert_eq!(out.plans[0].paths[0].widths[0], 1);
    }

    #[test]
    fn merge_key_orders_by_score_gain_cost_index() {
        // Score dominates.
        assert!(MergeKey::new(0.8, 2, 5) > MergeKey::new(0.9, 4, 0));
        // Equal score: higher raw gain wins (cost 0 clamps to 1, so a
        // free-hop candidate can tie a costed one at half the gain).
        assert!(MergeKey::new(0.8, 2, 5) > MergeKey::new(0.4, 1, 0));
        // Equal score and gain: lower cost wins (cost 0 clamps to 1).
        assert!(MergeKey::new(0.4, 0, 5) > MergeKey::new(0.4, 1, 0));
        // Full tie: lower candidate index wins.
        assert!(MergeKey::new(0.4, 1, 0) > MergeKey::new(0.4, 1, 1));
        assert_eq!(MergeKey::new(0.4, 1, 3), MergeKey::new(0.4, 1, 3));
    }

    /// Two disjoint routes with manufactured *identical* gain and cost:
    /// the explicit tie-break must hand the first acceptance to the lower
    /// candidate index, in both the queue and the reference — and
    /// swapping the candidates must swap the winner.
    #[test]
    fn equal_gain_ties_break_by_candidate_index() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let va = b.switch(1.0, 1.0, 2);
        let vb = b.switch(1.0, -1.0, 2);
        let d = b.user(2.0, 0.0);
        for (u, v) in [(s, va), (va, d), (s, vb), (vb, d)] {
            b.link_with_length(u, v, 1_000.0).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.9);
        let demands = [Demand::new(DemandId::new(0), s, d)];
        // Same length, same width, same per-link success: byte-identical
        // gain and cost, distinguishable only by route.
        let via_a = cand(0, vec![s, va, d], 1, 0.5);
        let via_b = cand(0, vec![s, vb, d], 1, 0.5);

        for (cands, first_hop) in [
            (vec![via_a.clone(), via_b.clone()], va),
            (vec![via_b, via_a], vb),
        ] {
            for merge in [paths_merge_greedy, paths_merge_greedy_reference] {
                let out = merge(&net, &demands, &cands, SwapMode::NFusion, true, Some(1));
                assert_eq!(out.plans[0].paths.len(), 1);
                assert_eq!(
                    out.plans[0].paths[0].path.nodes()[1],
                    first_hop,
                    "equal-gain tie must go to the lower candidate index"
                );
            }
        }
    }

    #[test]
    fn invalidation_set_is_exactly_node_overlap_plus_same_demand() {
        // Disjoint star: candidate 0 (demand 0) on nodes {0,1,2};
        // candidate 1 shares node 1; candidate 2 is node-disjoint but same
        // demand as 0; candidate 3 is disjoint in both senses.
        let mut b = QuantumNetwork::builder();
        let mut nodes = Vec::new();
        for i in 0..10 {
            nodes.push(b.switch(f64::from(i), 0.0, 4));
        }
        let n = &nodes;
        let candidates = vec![
            cand(0, vec![n[0], n[1], n[2]], 1, 0.9),
            cand(1, vec![n[1], n[3], n[4]], 1, 0.8),
            cand(0, vec![n[5], n[6], n[7]], 1, 0.7),
            cand(2, vec![n[8], n[9]], 1, 0.6),
        ];
        let index = CandidateIndex::build(&candidates);
        assert_eq!(
            index.invalidated_by(&candidates[0]),
            vec![0, 1, 2],
            "node overlap (1) and same demand (2) and itself, nothing more"
        );
        assert_eq!(
            index.invalidated_by(&candidates[3]),
            vec![3],
            "a fully disjoint acceptance invalidates only itself"
        );
        assert_eq!(index.same_demand(DemandId::new(0)), &[0, 2]);
        assert_eq!(index.same_demand(DemandId::new(7)), &[] as &[usize]);
    }

    /// A candidate that starts infeasible must be parked, not killed, in
    /// sharing mode: once its demand's earlier acceptance shares its
    /// first hop, the cheaper remainder fits and must still be accepted.
    #[test]
    fn parked_candidate_revives_when_sharing_opens_capacity() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 5);
        let v2 = b.switch(2.0, 0.0, 6);
        let v3 = b.switch(2.0, 1.0, 10);
        let d = b.user(3.0, 0.0);
        for (u, v) in [(s, v1), (v1, v2), (v2, d), (v1, v3), (v3, d)] {
            b.link_with_length(u, v, 1_000.0).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.2));
        net.set_swap_success(0.9);
        let demands = [Demand::new(DemandId::new(0), s, d)];
        // The width-3 branch s-v1-v3-d needs 6 qubits at v1 (capacity 5):
        // infeasible against the *full* network, so it is parked at build
        // time. Accepting the width-1 stem s-v1-v2-d shares the s-v1 hop,
        // dropping the branch's need at v1 to 3 ≤ 5 - 2 remaining: the
        // parked candidate must come back and be accepted.
        let stem = cand(0, vec![s, v1, v2, d], 1, 0.5);
        let branch = cand(0, vec![s, v1, v3, d], 3, 0.4);
        let candidates = vec![stem, branch];
        let queue = paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
        let reference = paths_merge_greedy_reference(
            &net,
            &demands,
            &candidates,
            SwapMode::NFusion,
            true,
            None,
        );
        assert_eq!(queue, reference);
        assert_eq!(
            queue.plans[0].paths.len(),
            2,
            "the parked branch must be revived by the shared s-v1 hop"
        );
    }

    /// Cross-check on a real selection run: byte-identical outcomes in
    /// both modes (the reduced differential grid lives in
    /// `tests/merge_differential.rs`; this is the in-module smoke case).
    #[test]
    fn queue_matches_reference_on_selection_output() {
        let (net, n) = high_p_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[3]),
            Demand::new(DemandId::new(1), n[3], n[0]),
        ];
        let caps = net.capacities();
        let candidates = paths_selection(&net, &demands, &caps, 3, 5, SwapMode::NFusion);
        for (mode, share, limit) in [
            (SwapMode::NFusion, true, None),
            (SwapMode::NFusion, false, None),
            (SwapMode::Classic, false, Some(1)),
        ] {
            let queue = paths_merge_greedy(&net, &demands, &candidates, mode, share, limit);
            let reference =
                paths_merge_greedy_reference(&net, &demands, &candidates, mode, share, limit);
            assert_eq!(queue, reference, "mode {mode:?} share {share}");
        }
    }
}
