//! Failure injection for robustness experiments.
//!
//! The paper assumes a stable topology with time-synchronized switches
//! (§III-A). These perturbations let the test suite and the ablation
//! benches probe how routing plans degrade when that assumption slips:
//! switch outages reduce the effective fusion success, fiber aging reduces
//! link success.

use fusion_core::QuantumNetwork;
use fusion_graph::EdgeId;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A degradation applied to a network before (re-)evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Probability that a switch is unavailable in a round; folds into the
    /// effective swap success `q · (1 - switch_outage)`.
    pub switch_outage: f64,
    /// Multiplicative loss applied to every link success probability
    /// (`p · (1 - link_decay)`), modelling fiber aging or added noise.
    pub link_decay: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            switch_outage: 0.0,
            link_decay: 0.0,
        }
    }
}

impl FailureModel {
    /// A healthy network (no perturbation).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns a degraded copy of the network.
    ///
    /// # Panics
    ///
    /// Panics if either field is outside `[0, 1)`.
    #[must_use]
    pub fn degrade(&self, net: &QuantumNetwork) -> QuantumNetwork {
        assert!(
            (0.0..1.0).contains(&self.switch_outage),
            "switch outage must be in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&self.link_decay),
            "link decay must be in [0,1)"
        );
        let mut out = net.clone();
        let q = net.swap_success() * (1.0 - self.switch_outage);
        out.set_swap_success(q.max(1e-9));
        if self.link_decay > 0.0 {
            // Fold decay into a uniform override when one exists, else
            // emulate by scaling alpha-equivalent success per link via the
            // uniform override on the mean link success.
            match net.physics().uniform_link_success {
                Some(p) => {
                    out.set_uniform_link_success(Some((p * (1.0 - self.link_decay)).max(1e-9)))
                }
                None => {
                    // Without a uniform override, scale every link through
                    // the mean: sample-free, conservative approximation.
                    let mean = mean_link_success(net);
                    out.set_uniform_link_success(Some((mean * (1.0 - self.link_decay)).max(1e-9)));
                }
            }
        }
        out
    }
}

/// Draws one link to take down, uniformly over the network's edges — the
/// mid-trace `LinkDown` event source of the service layer's replay
/// harness (a transient fiber cut: plans crossing the link are evicted
/// and must be re-admitted).
///
/// Deterministic for a given RNG state; returns `None` on an edgeless
/// network.
pub fn sample_link_outage<R: RngCore>(net: &QuantumNetwork, rng: &mut R) -> Option<EdgeId> {
    let edges = net.graph().edge_count();
    if edges == 0 {
        return None;
    }
    Some(EdgeId::new(rng.gen_range(0..edges)))
}

/// Mean single-link success probability over all edges.
#[must_use]
pub fn mean_link_success(net: &QuantumNetwork) -> f64 {
    let graph = net.graph();
    if graph.edge_count() == 0 {
        return 0.0;
    }
    graph.edge_ids().map(|e| net.link_success(e)).sum::<f64>() / graph.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::algorithms::alg_n_fusion;
    use fusion_core::{Demand, NetworkParams};
    use fusion_topology::TopologyConfig;

    fn world() -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 4,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(33);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        (net, demands)
    }

    #[test]
    fn no_failure_is_identity_on_rates() {
        let (net, demands) = world();
        let plan = alg_n_fusion(&net, &demands);
        let degraded = FailureModel::none().degrade(&net);
        assert!((plan.total_rate(&net) - plan.total_rate(&degraded)).abs() < 1e-12);
    }

    #[test]
    fn switch_outage_reduces_rate() {
        let (net, demands) = world();
        let plan = alg_n_fusion(&net, &demands);
        let degraded = FailureModel {
            switch_outage: 0.3,
            link_decay: 0.0,
        }
        .degrade(&net);
        assert!(plan.total_rate(&degraded) < plan.total_rate(&net));
        assert!((degraded.swap_success() - net.swap_success() * 0.7).abs() < 1e-12);
    }

    #[test]
    fn link_decay_reduces_rate() {
        let (mut net, demands) = world();
        net.set_uniform_link_success(Some(0.5));
        let plan = alg_n_fusion(&net, &demands);
        let degraded = FailureModel {
            switch_outage: 0.0,
            link_decay: 0.4,
        }
        .degrade(&net);
        assert!((degraded.link_success(fusion_graph::EdgeId::new(0)) - 0.3).abs() < 1e-12);
        assert!(plan.total_rate(&degraded) < plan.total_rate(&net));
    }

    #[test]
    fn mean_link_success_averages() {
        let mut b = QuantumNetwork::builder();
        let a = b.switch(0.0, 0.0, 4);
        let c = b.switch(10_000.0, 0.0, 4);
        let d = b.switch(20_000.0, 0.0, 4);
        b.link(a, c).unwrap();
        b.link(c, d).unwrap();
        let net = b.build();
        let expect = (-1.0_f64).exp();
        assert!((mean_link_success(&net) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "switch outage")]
    fn invalid_outage_rejected() {
        let (net, _) = world();
        let _ = FailureModel {
            switch_outage: 1.5,
            link_decay: 0.0,
        }
        .degrade(&net);
    }
}
