use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node inside an [`UnGraph`].
///
/// Node ids are dense indices assigned in insertion order, which keeps the
/// routing algorithms deterministic for a fixed construction sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Identifier of an edge inside an [`UnGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the raw index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId(index)
    }
}

/// A borrowed view of one edge: its id, endpoints, and payload.
#[derive(Debug, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// Edge identifier.
    pub id: EdgeId,
    /// First endpoint (the `u` passed to [`UnGraph::add_edge`]).
    pub source: NodeId,
    /// Second endpoint (the `v` passed to [`UnGraph::add_edge`]).
    pub target: NodeId,
    /// Edge payload.
    pub weight: &'a E,
}

// Manual impls: `EdgeRef` borrows the payload, so it is copyable regardless
// of whether `E` itself is.
impl<'a, E> Clone for EdgeRef<'a, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, E> Copy for EdgeRef<'a, E> {}

impl<'a, E> EdgeRef<'a, E> {
    /// Returns the endpoint of this edge that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of the edge.
    #[must_use]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.source {
            self.target
        } else if node == self.target {
            self.source
        } else {
            panic!("{node} is not an endpoint of edge {}", self.id)
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeEntry<E> {
    source: NodeId,
    target: NodeId,
    weight: E,
}

/// An undirected multigraph with typed node and edge payloads.
///
/// Nodes and edges are stored in insertion order and addressed by dense
/// [`NodeId`] / [`EdgeId`] indices; neighbors are kept in per-node adjacency
/// lists. Parallel edges and self-loops are permitted at this layer (the
/// quantum-network model above rejects self-loops itself).
///
/// # Examples
///
/// ```
/// use fusion_graph::UnGraph;
///
/// let mut g: UnGraph<(), f64> = UnGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let e = g.add_edge(a, b, 2.5);
/// assert_eq!(g.edge(e).weight, &2.5);
/// assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeEntry<E>>,
    adjacency: Vec<Vec<EdgeId>>,
}

impl<N, E> UnGraph<N, E> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        UnGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    #[must_use]
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        UnGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(weight);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `u` and `v` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: E) -> EdgeId {
        assert!(u.index() < self.nodes.len(), "node {u} out of bounds");
        assert!(v.index() < self.nodes.len(), "node {v} out of bounds");
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeEntry {
            source: u,
            target: v,
            weight,
        });
        self.adjacency[u.index()].push(id);
        if u != v {
            self.adjacency[v.index()].push(id);
        }
        id
    }

    /// Returns the payload of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()]
    }

    /// Returns a mutable reference to the payload of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()]
    }

    /// Returns a borrowed view of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    #[must_use]
    pub fn edge(&self, edge: EdgeId) -> EdgeRef<'_, E> {
        let entry = &self.edges[edge.index()];
        EdgeRef {
            id: edge,
            source: entry.source,
            target: entry.target,
            weight: &entry.weight,
        }
    }

    /// Returns a mutable reference to the payload of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    #[must_use]
    pub fn edge_weight_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.index()].weight
    }

    /// Returns the endpoints of `edge` as `(source, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    #[must_use]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let entry = &self.edges[edge.index()];
        (entry.source, entry.target)
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all edge ids in index order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterates over all edges in index order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().map(|(i, entry)| EdgeRef {
            id: EdgeId(i),
            source: entry.source,
            target: entry.target,
            weight: &entry.weight,
        })
    }

    /// Iterates over the edges incident to `node` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn incident_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.adjacency[node.index()]
            .iter()
            .map(move |&id| self.edge(id))
    }

    /// Iterates over the neighbors of `node` in insertion order.
    ///
    /// A self-loop yields `node` itself once; parallel edges yield the same
    /// neighbor multiple times.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incident_edges(node).map(move |e| e.other(node))
    }

    /// Number of edges incident to `node` (self-loops count once).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Returns the first edge connecting `u` and `v`, if any.
    #[must_use]
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency.get(u.index())?.iter().copied().find(|&id| {
            let (a, b) = self.endpoints(id);
            (a == u && b == v) || (a == v && b == u)
        })
    }

    /// Returns `true` if there is at least one edge between `u` and `v`.
    #[must_use]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Iterates over node payloads in index order.
    pub fn node_weights(&self) -> impl ExactSizeIterator<Item = &N> + '_ {
        self.nodes.iter()
    }

    /// Total degree divided by node count; 0 for an empty graph.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.nodes.len() as f64
    }
}

impl<N, E> Default for UnGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (UnGraph<char, u32>, [NodeId; 3], [EdgeId; 3]) {
        let mut g = UnGraph::new();
        let a = g.add_node('a');
        let b = g.add_node('b');
        let c = g.add_node('c');
        let ab = g.add_edge(a, b, 1);
        let bc = g.add_edge(b, c, 2);
        let ca = g.add_edge(c, a, 3);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn counts_and_payloads() {
        let (g, [a, b, c], [ab, ..]) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(*g.node(a), 'a');
        assert_eq!(*g.node(b), 'b');
        assert_eq!(*g.node(c), 'c');
        assert_eq!(g.edge(ab).weight, &1);
    }

    #[test]
    fn node_mut_updates_payload() {
        let (mut g, [a, ..], _) = triangle();
        *g.node_mut(a) = 'z';
        assert_eq!(*g.node(a), 'z');
    }

    #[test]
    fn edge_weight_mut_updates_payload() {
        let (mut g, _, [ab, ..]) = triangle();
        *g.edge_weight_mut(ab) = 42;
        assert_eq!(g.edge(ab).weight, &42);
    }

    #[test]
    fn neighbors_in_insertion_order() {
        let (g, [a, b, c], _) = triangle();
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.neighbors(b).collect::<Vec<_>>(), vec![a, c]);
        assert_eq!(g.degree(c), 2);
    }

    #[test]
    fn endpoints_and_other() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.endpoints(ab), (a, b));
        assert_eq!(g.edge(ab).other(a), b);
        assert_eq!(g.edge(ab).other(b), a);
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let (g, [_, _, c], [ab, ..]) = triangle();
        let _ = g.edge(ab).other(c);
    }

    #[test]
    fn find_edge_both_directions() {
        let (g, [a, b, c], [ab, bc, _]) = triangle();
        assert_eq!(g.find_edge(a, b), Some(ab));
        assert_eq!(g.find_edge(b, a), Some(ab));
        assert_eq!(g.find_edge(c, b), Some(bc));
        assert!(g.contains_edge(a, c));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g: UnGraph<(), u32> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        assert_ne!(e1, e2);
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b, b]);
        assert_eq!(g.find_edge(a, b), Some(e1));
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut g: UnGraph<(), u32> = UnGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, 7);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_rejects_unknown_node() {
        let mut g: UnGraph<(), u32> = UnGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::new(5), 1);
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, nodes, edges) = triangle();
        assert_eq!(g.node_ids().collect::<Vec<_>>(), nodes.to_vec());
        assert_eq!(g.edge_ids().collect::<Vec<_>>(), edges.to_vec());
        assert_eq!(g.edges().count(), 3);
        assert_eq!(g.node_weights().copied().collect::<String>(), "abc");
    }

    #[test]
    fn average_degree() {
        let (g, ..) = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        let empty: UnGraph<(), ()> = UnGraph::new();
        assert_eq!(empty.average_degree(), 0.0);
    }

    #[test]
    fn ids_display_and_convert() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(4).to_string(), "e4");
        assert_eq!(NodeId::from(2).index(), 2);
        assert_eq!(EdgeId::from(9).index(), 9);
    }
}
