//! Workspace smoke test: the five-crate stack wired end-to-end.
//!
//! Generates a small Waxman topology, builds the quantum network, routes
//! every demand with the paper's composed ALG-N-FUSION pipeline, and
//! checks the analytic and simulated entanglement rates agree that the
//! network serves a nonzero expected number of states — all from a fixed
//! RNG seed, so any regression in any layer shows up as a deterministic
//! failure here.

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::sim::estimate_plan;
use ghz_entanglement_routing::topology::TopologyConfig;

#[test]
fn waxman_alg_n_fusion_end_to_end() {
    let topo = TopologyConfig {
        num_switches: 30,
        num_user_pairs: 4,
        ..TopologyConfig::default()
    }
    .generate(7);
    assert_eq!(topo.demands.len(), 4);
    assert_eq!(topo.user_ids().count(), 8);

    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    let plan = alg_n_fusion(&net, &demands);

    // The paper's pipeline must serve at least one of the four demands on
    // this instance, giving a strictly positive expected rate.
    let analytic = plan.total_rate(&net);
    assert!(
        analytic > 0.0,
        "expected a nonzero entanglement rate, got {analytic}"
    );
    assert!(
        analytic <= demands.len() as f64,
        "rate cannot exceed the number of demanded states: {analytic}"
    );

    // Monte Carlo agreement: fixed seed, so this is deterministic.
    let est = estimate_plan(&net, &plan, 4_000, 11);
    assert!(est.total_rate() > 0.0, "simulation saw no successes");
    assert!(
        est.total_rate() <= analytic + 4.0 * est.total_stderr(),
        "simulated {} exceeds the analytic bound {analytic}",
        est.total_rate()
    );
}

#[test]
fn smoke_is_deterministic_per_seed() {
    let rate = |seed| {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 4,
            ..TopologyConfig::default()
        }
        .generate(seed);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        alg_n_fusion(&net, &demands).total_rate(&net)
    };
    assert_eq!(rate(7), rate(7), "same seed must reproduce the same plan");
}
