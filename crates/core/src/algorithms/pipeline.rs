//! The composed entanglement-routing pipeline (§IV-C): Algorithm 2 builds
//! the candidate set, Algorithm 3 merges it into resourced routes,
//! Algorithm 4 spends the leftover qubits. `ALG-N-FUSION` is this pipeline
//! under [`SwapMode::NFusion`]; the paper's Q-CAST baseline is the same
//! pipeline under [`SwapMode::Classic`].

use fusion_telemetry::Registry;
use serde::{Deserialize, Serialize};

use crate::algorithms::{alg2, alg3, alg3_greedy, alg4};
use crate::demand::Demand;
use crate::network::QuantumNetwork;
use crate::plan::{NetworkPlan, SwapMode};

/// Order in which Algorithm 3 consumes the candidate set — the
/// merge-order ablation knob (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeOrder {
    /// Greedy by marginal entanglement-rate gain per qubit spent (default;
    /// implements Main Idea 2's resource-efficiency principle). Runs on
    /// the incremental gain queue of [`alg3_greedy::paths_merge_greedy`],
    /// differentially tested byte-identical to the full re-scan
    /// ([`alg3_greedy::paths_merge_greedy_reference`]).
    GainPerQubit,
    /// The paper's literal order: widest first, metric-sorted within a
    /// width. Kept for the merge-order ablation.
    WidthMajor,
}

/// Algorithm 2 candidate-construction engine — the selection ablation
/// knob (the Algorithm 2 counterpart of [`MergeOrder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathSelection {
    /// One per-demand width descent reusing search state across widths
    /// (default; [`alg2::paths_selection`]). Differentially tested
    /// byte-identical to the per-width sweep
    /// (`crates/core/tests/alg2_differential.rs`).
    WidthDescent,
    /// The original independent Yen/Dijkstra sweep per width, retained as
    /// the differential oracle ([`alg2::paths_selection_reference`]).
    /// Always serial.
    PerWidthSweep,
}

/// How the service layer (`fusion-serve`) routes each admission — the
/// incremental-admission ablation knob (the service-layer counterpart of
/// [`PathSelection`]). The batch entry points ignore it: they already
/// amortize candidate construction across the whole demand set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmitStrategy {
    /// Per-demand candidate caching with footprint-delta invalidation
    /// (default): each admission reuses every cached width slice whose
    /// recorded dependency set no intervening capacity delta touched, via
    /// [`alg2::SelectionEngine`] and `fusion-serve`'s candidate cache.
    /// Differentially tested byte-identical to from-scratch admission
    /// (`crates/serve/tests/incremental_oracle.rs`).
    Incremental,
    /// Run the full width-descent pipeline from scratch per admission —
    /// the retained reference engine.
    FromScratch,
}

/// Tuning knobs of the routing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Candidate paths per (demand, width) in Algorithm 2 (paper's `h`).
    pub h: usize,
    /// Upper bound on channel width; `None` uses the largest switch
    /// capacity (the paper's `MAX_WIDTH`).
    pub max_width: Option<u32>,
    /// Whether to run Algorithm 4 (disable for the `Alg-3` ablation of
    /// Fig. 7).
    pub use_alg4: bool,
    /// Whether Algorithm 3 may merge same-demand paths into flow-like
    /// graphs (n-fusion only; disable for the merge ablation).
    pub merge_paths: bool,
    /// Maximum accepted routes per demand; `None` is unlimited. Classic
    /// swapping uses `Some(1)`: Q-CAST routes one major path per request,
    /// and per-state multi-path redundancy is exactly the flexibility the
    /// paper attributes to n-fusion.
    pub max_paths_per_demand: Option<usize>,
    /// Candidate consumption order for Algorithm 3.
    pub merge_order: MergeOrder,
    /// Candidate-construction engine for Algorithm 2.
    pub path_selection: PathSelection,
    /// Admission engine for the service layer (ignored by batch routing).
    pub admit_strategy: AdmitStrategy,
    /// Swapping technology.
    pub mode: SwapMode,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            h: 5,
            max_width: None,
            use_alg4: true,
            merge_paths: true,
            max_paths_per_demand: None,
            merge_order: MergeOrder::GainPerQubit,
            path_selection: PathSelection::WidthDescent,
            admit_strategy: AdmitStrategy::Incremental,
            mode: SwapMode::NFusion,
        }
    }
}

impl RoutingConfig {
    /// The paper's headline configuration: n-fusion with Algorithm 4.
    #[must_use]
    pub fn n_fusion() -> Self {
        Self::default()
    }

    /// n-fusion without Algorithm 4 (the `Alg-3` series in Fig. 7).
    #[must_use]
    pub fn n_fusion_without_alg4() -> Self {
        RoutingConfig {
            use_alg4: false,
            ..Self::default()
        }
    }

    /// Classic-swapping restriction of the pipeline (the Q-CAST baseline):
    /// one major path per request, as in Q-CAST \[17\].
    #[must_use]
    pub fn classic() -> Self {
        RoutingConfig {
            mode: SwapMode::Classic,
            max_paths_per_demand: Some(1),
            ..Self::default()
        }
    }
}

/// Runs the full routing pipeline and returns the network plan.
///
/// # Panics
///
/// Panics if `config.h == 0` or the resolved width bound is zero (a network
/// whose switches have no qubits cannot route anything).
#[must_use]
pub fn route(net: &QuantumNetwork, demands: &[Demand], config: &RoutingConfig) -> NetworkPlan {
    route_parallel(net, demands, config, 1)
}

/// [`route`] with per-demand candidate construction sharded over
/// `threads` workers (the dominant cost at 1k+ switches). The merge and
/// leftover-assignment steps stay serial — they resolve cross-demand
/// contention — so the resulting plan is bit-identical to the serial
/// pipeline for any thread count.
///
/// # Panics
///
/// Panics if `config.h == 0`, `threads == 0`, or the resolved width bound
/// is zero (a network whose switches have no qubits cannot route
/// anything).
#[must_use]
pub fn route_parallel(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    threads: usize,
) -> NetworkPlan {
    route_with_capacity(net, demands, config, &net.capacities(), threads)
}

/// [`route_parallel`] against an explicit per-node qubit budget instead of
/// the network's built-in capacities — the service layer's admission path:
/// a new demand is routed with the same pipeline, restricted to the
/// residual capacity left by live plans.
///
/// The width bound resolves against `capacity` (the largest *residual*
/// switch budget), and every stage threads `capacity` through, so the
/// outcome — candidates, merge, leftover — is byte-identical to running
/// [`route_parallel`] on [`QuantumNetwork::with_capacities`]`(capacity)`.
/// That equivalence is the service-oracle contract locked down by
/// `crates/serve/tests/service_oracle.rs`.
///
/// # Examples
///
/// Routing one demand against a *reduced* budget — every switch down to
/// half its qubits, as if live sessions held the rest:
///
/// ```
/// use fusion_core::algorithms::{route_with_capacity, RoutingConfig};
/// use fusion_core::{Demand, NetworkParams, QuantumNetwork};
/// use fusion_topology::TopologyConfig;
///
/// let topo = TopologyConfig {
///     num_switches: 30,
///     num_user_pairs: 2,
///     ..TopologyConfig::default()
/// }
/// .generate(7);
/// let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
/// let demands = Demand::from_topology(&topo);
///
/// let residual: Vec<u32> = net
///     .graph()
///     .node_ids()
///     .map(|v| {
///         let c = net.capacity(v);
///         if net.is_switch(v) { c / 2 } else { c }
///     })
///     .collect();
/// let plan = route_with_capacity(
///     &net,
///     &demands,
///     &RoutingConfig::n_fusion(),
///     &residual,
///     1,
/// );
/// assert!(plan.total_rate(&net) >= 0.0);
/// ```
///
/// # Panics
///
/// Panics if `config.h == 0`, `threads == 0`, `capacity` is shorter than
/// the node count, or the resolved width bound is zero (no switch has a
/// free qubit — callers admitting against a saturated network must check
/// first).
#[must_use]
pub fn route_with_capacity(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    capacity: &[u32],
    threads: usize,
) -> NetworkPlan {
    route_with_capacity_traced(net, demands, config, capacity, threads).plan
}

/// The intermediate artifacts of one [`route_with_capacity`] run, kept for
/// the service-layer equivalence oracles: byte-comparing `candidates` and
/// `merge` (both `PartialEq`) against a batch run on a capacity-reduced
/// network is how `crates/serve` proves residual-ledger admission exact.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTrace {
    /// Algorithm 2's candidate set against the given capacity.
    pub candidates: Vec<alg2::CandidatePath>,
    /// Algorithm 3's outcome, snapshotted before Algorithm 4 widens it.
    pub merge: alg3::MergeOutcome,
    /// The finished plan (after Algorithm 4, when enabled).
    pub plan: NetworkPlan,
}

/// [`route_with_capacity`], also returning the per-stage intermediates.
///
/// # Panics
///
/// As [`route_with_capacity`].
#[must_use]
pub fn route_with_capacity_traced(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    capacity: &[u32],
    threads: usize,
) -> RouteTrace {
    route_with_capacity_counted(
        net,
        demands,
        config,
        capacity,
        threads,
        &Registry::disabled(),
    )
}

/// [`route_with_capacity_traced`] with telemetry counters recording into
/// `registry` (the `alg2.*`/`alg3.*` names). Counters never influence
/// routing: the trace is byte-identical to the uncounted run, for any
/// thread count.
///
/// # Panics
///
/// As [`route_with_capacity`].
#[must_use]
pub fn route_with_capacity_counted(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    capacity: &[u32],
    threads: usize,
    registry: &Registry,
) -> RouteTrace {
    let max_width = config
        .max_width
        .unwrap_or_else(|| net.max_switch_capacity_in(capacity));
    assert!(max_width > 0, "network has no switch qubits to route with");

    // Step I: candidate construction against the given capacity.
    let candidates = match config.path_selection {
        PathSelection::WidthDescent => alg2::paths_selection_parallel_counted(
            net,
            demands,
            capacity,
            config.h,
            max_width,
            config.mode,
            threads,
            registry,
        ),
        PathSelection::PerWidthSweep => alg2::paths_selection_reference(
            net,
            demands,
            capacity,
            config.h,
            max_width,
            config.mode,
        ),
    };

    route_from_candidates_counted(net, demands, config, capacity, candidates, registry)
}

/// Steps II and III of the pipeline on an externally-built candidate set:
/// the capacity-aware merge, then leftover assignment.
///
/// This is the re-entry point for incremental admission: a caller that
/// can prove its candidates equal what Step I would produce against
/// `capacity` — the serve layer's footprint-invalidated candidate cache —
/// skips Step I and still gets a [`RouteTrace`] byte-identical to
/// [`route_with_capacity_traced`], because the merge and Algorithm 4 are
/// deterministic functions of (network, demands, candidates, config,
/// capacity) and run fresh here either way.
///
/// # Panics
///
/// Panics if `capacity` is shorter than the node count.
#[must_use]
pub fn route_from_candidates_traced(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    capacity: &[u32],
    candidates: Vec<alg2::CandidatePath>,
) -> RouteTrace {
    route_from_candidates_counted(
        net,
        demands,
        config,
        capacity,
        candidates,
        &Registry::disabled(),
    )
}

/// [`route_from_candidates_traced`] with merge counters recording into
/// `registry`. Counters never influence the outcome.
///
/// # Panics
///
/// As [`route_from_candidates_traced`].
#[must_use]
pub fn route_from_candidates_counted(
    net: &QuantumNetwork,
    demands: &[Demand],
    config: &RoutingConfig,
    capacity: &[u32],
    candidates: Vec<alg2::CandidatePath>,
    registry: &Registry,
) -> RouteTrace {
    // Step II: capacity-aware merge.
    let merge = match config.merge_order {
        MergeOrder::GainPerQubit => alg3_greedy::paths_merge_greedy_counted(
            net,
            demands,
            &candidates,
            config.mode,
            config.merge_paths,
            config.max_paths_per_demand,
            capacity,
            &alg3_greedy::MergeCounters::from_registry(registry),
        ),
        MergeOrder::WidthMajor => alg3::paths_merge_bounded_with_capacity(
            net,
            demands,
            &candidates,
            config.mode,
            config.merge_paths,
            config.max_paths_per_demand,
            capacity,
        ),
    };

    // Step III: leftover qubits widen existing channels.
    let alg3::MergeOutcome {
        mut plans,
        mut remaining,
    } = merge.clone();
    let alg4_links = if config.use_alg4 {
        alg4::assign_remaining(net, &mut plans, &mut remaining, config.mode)
    } else {
        0
    };

    RouteTrace {
        candidates,
        merge,
        plan: NetworkPlan {
            mode: config.mode,
            plans,
            leftover: remaining,
            alg4_links,
        },
    }
}

/// Convenience wrapper: the paper's `ALG-N-FUSION` with default knobs.
#[must_use]
pub fn alg_n_fusion(net: &QuantumNetwork, demands: &[Demand]) -> NetworkPlan {
    route(net, demands, &RoutingConfig::n_fusion())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;
    use crate::network::{NetworkParams, QuantumNetwork};
    use fusion_topology::TopologyConfig;

    fn small_world() -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 5,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(42);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        (net, demands)
    }

    #[test]
    fn pipeline_produces_positive_rate() {
        let (net, demands) = small_world();
        let plan = alg_n_fusion(&net, &demands);
        assert_eq!(plan.plans.len(), demands.len());
        assert!(
            plan.total_rate(&net) > 0.0,
            "default network must route something"
        );
        assert!(plan.served_demands() > 0);
    }

    #[test]
    fn rates_are_probabilities() {
        let (net, demands) = small_world();
        let plan = alg_n_fusion(&net, &demands);
        for i in 0..demands.len() {
            let r = plan.demand_rate(&net, i);
            assert!((0.0..=1.0 + 1e-9).contains(&r), "demand {i} rate {r}");
        }
        assert!(plan.total_rate(&net) <= demands.len() as f64 + 1e-9);
    }

    #[test]
    fn alg4_never_hurts() {
        let (net, demands) = small_world();
        let with = route(&net, &demands, &RoutingConfig::n_fusion());
        let without = route(&net, &demands, &RoutingConfig::n_fusion_without_alg4());
        assert!(
            with.total_rate(&net) >= without.total_rate(&net) - 1e-9,
            "Algorithm 4 must be monotone: {} vs {}",
            with.total_rate(&net),
            without.total_rate(&net)
        );
        assert_eq!(without.alg4_links, 0);
    }

    #[test]
    fn n_fusion_beats_classic_on_same_network() {
        // Headline claim (§V-C1) on a small instance, in the paper's
        // realistic small-p regime.
        let (mut net, demands) = small_world();
        net.set_uniform_link_success(Some(0.25));
        let nf = route(&net, &demands, &RoutingConfig::n_fusion());
        let classic = route(&net, &demands, &RoutingConfig::classic());
        assert!(
            nf.total_rate(&net) >= classic.total_rate(&net) - 1e-9,
            "n-fusion {} must dominate classic {}",
            nf.total_rate(&net),
            classic.total_rate(&net)
        );
    }

    #[test]
    fn capacity_never_oversubscribed() {
        let (net, demands) = small_world();
        let plan = alg_n_fusion(&net, &demands);
        for node in net.graph().node_ids().filter(|&v| net.is_switch(v)) {
            let spent: u32 = plan.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert!(
                spent <= net.capacity(node),
                "switch {node} uses {spent} of {} qubits",
                net.capacity(node)
            );
            assert_eq!(
                spent + plan.leftover[node.index()],
                net.capacity(node),
                "leftover bookkeeping broken at {node}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_input() {
        let (net, demands) = small_world();
        let a = alg_n_fusion(&net, &demands);
        let b = alg_n_fusion(&net, &demands);
        assert_eq!(a.total_rate(&net), b.total_rate(&net));
        assert_eq!(a.alg4_links, b.alg4_links);
        for (pa, pb) in a.plans.iter().zip(&b.plans) {
            assert_eq!(pa.flow, pb.flow);
        }
    }

    #[test]
    fn parallel_route_is_bit_identical_to_serial() {
        let (net, demands) = small_world();
        for config in [RoutingConfig::n_fusion(), RoutingConfig::classic()] {
            let serial = route(&net, &demands, &config);
            for threads in [2, 4, 16] {
                let parallel = route_parallel(&net, &demands, &config, threads);
                assert_eq!(serial.alg4_links, parallel.alg4_links);
                assert_eq!(serial.leftover, parallel.leftover);
                for (s, p) in serial.plans.iter().zip(&parallel.plans) {
                    assert_eq!(s.flow, p.flow, "threads={threads}");
                    assert_eq!(s.paths, p.paths, "threads={threads}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no switch qubits")]
    fn zero_capacity_network_rejected() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v = b.switch(1.0, 0.0, 0);
        let d = b.user(2.0, 0.0);
        b.link(s, v).unwrap();
        b.link(v, d).unwrap();
        let net = b.build();
        let demands = [Demand::new(crate::demand::DemandId::new(0), s, d)];
        let _ = alg_n_fusion(&net, &demands);
    }
}
