//! A scaled-down Fig. 7: all four algorithms (plus the Alg-3 ablation)
//! compared across the three network-generation methods.
//!
//! ```text
//! cargo run --release --example topology_comparison
//! ```

use ghz_entanglement_routing::core::algorithms::{route, RoutingConfig};
use ghz_entanglement_routing::core::baselines::{
    route_b1, route_qcast, route_qcast_n, DEFAULT_REGION_PATHS,
};
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::topology::{GeneratorKind, TopologyConfig};

fn main() {
    let kinds = [
        ("Waxman", GeneratorKind::Waxman { alpha: 1.0 }),
        (
            "Watts-Strogatz",
            GeneratorKind::WattsStrogatz { rewire: 0.1 },
        ),
        ("Aiello", GeneratorKind::Aiello { gamma: 2.5 }),
    ];

    println!(
        "{:<16}{:>14}{:>10}{:>10}{:>8}{:>8}",
        "method", "ALG-N-FUSION", "Q-CAST", "Q-CAST-N", "B1", "Alg-3"
    );
    for (name, kind) in kinds {
        let config = TopologyConfig {
            num_switches: 60,
            num_user_pairs: 10,
            kind,
            ..TopologyConfig::default()
        };
        // Average over three random networks, as the paper averages five.
        let mut sums = [0.0f64; 5];
        let networks = 3;
        for seed in 0..networks {
            let topo = config.generate(seed);
            let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
            let demands = Demand::from_topology(&topo);
            let rates = [
                route(&net, &demands, &RoutingConfig::n_fusion()).total_rate(&net),
                route_qcast(&net, &demands, 5).total_rate(&net),
                route_qcast_n(&net, &demands, 5).total_rate(&net),
                route_b1(&net, &demands, DEFAULT_REGION_PATHS).total_rate(&net),
                route(&net, &demands, &RoutingConfig::n_fusion_without_alg4()).total_rate(&net),
            ];
            for (s, r) in sums.iter_mut().zip(rates) {
                *s += r;
            }
        }
        let n = networks as f64;
        println!(
            "{:<16}{:>14.2}{:>10.2}{:>10.2}{:>8.2}{:>8.2}",
            name,
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n,
            sums[4] / n
        );
    }
    println!("\n(10 demanded states; higher is better; see `figures fig7` for the full run)");
}
