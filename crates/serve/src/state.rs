//! The epoch-versioned service state: network, live plans, residual
//! ledger.
//!
//! [`ServiceState`] is the long-lived object the online engine mutates:
//! [`admit`](ServiceState::admit) routes a new demand with the batch
//! pipeline's width-descent engine restricted to the ledger's residual
//! capacity, [`depart`](ServiceState::depart) tears a plan down and
//! returns its capacity exactly, and [`fail_link`](ServiceState::fail_link)
//! evicts every plan crossing a failed fiber. Every successful mutation
//! bumps the epoch; rejected admissions are strict no-ops.
//!
//! The admission contract (locked down by `tests/service_oracle.rs`): the
//! candidates, merge outcome, and finished plan of an admission against
//! the residual ledger are byte-identical to running the batch pipeline
//! on a network whose capacities are pre-reduced by the live plans
//! ([`QuantumNetwork::with_capacities`]).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use fusion_core::algorithms::{
    route_from_candidates_counted, route_with_capacity_counted, AdmitStrategy, CandidatePath,
    RouteTrace, RoutingConfig, SelectionEngine, SelectionQuery,
};
use fusion_core::{Demand, DemandId, DemandPlan, QuantumNetwork, ResourceUsage};
use fusion_graph::{EdgeId, NodeId};
use fusion_telemetry::{Counter, Registry};

use crate::cache::CandidateCache;
use crate::ledger::ResidualLedger;

/// Upper bound on cached `(source, dest)` pair entries. Far above any
/// realistic recurring-demand population, far below what an adversarial
/// all-pairs trace could otherwise pin in memory.
const MAX_CACHED_PAIRS: usize = 1024;

/// The incremental admission machinery: the persistent width-descent
/// engine and the footprint-invalidated candidate cache it feeds.
#[derive(Debug, Clone)]
struct IncrementalAdmission {
    engine: SelectionEngine,
    cache: CandidateCache,
}

/// Stable identifier of one live (or departed) plan. Ids are assigned in
/// admission order and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanId(u64);

impl PlanId {
    /// Raw index of this plan id.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One admitted demand: its plan, its exact resource footprint, and its
/// admission metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct LivePlan {
    /// The plan's stable id.
    pub id: PlanId,
    /// The routed structure serving the demand.
    pub plan: DemandPlan,
    /// Exact resources charged on the ledger at admission; released
    /// verbatim at departure.
    pub usage: ResourceUsage,
    /// Analytic success probability at admission time.
    pub rate: f64,
    /// Epoch at which the plan was admitted.
    pub admitted_epoch: u64,
}

/// Why an admission was refused. Refusals leave the state untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No switch has a free qubit left — routing was not even attempted.
    Saturated,
    /// The pipeline ran but found no feasible route under the residual
    /// capacity.
    NoRoute,
}

/// Outcome of one [`ServiceState::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitOutcome {
    /// The demand was routed; its plan is now live.
    Accepted {
        /// Id of the new live plan.
        id: PlanId,
        /// Analytic success probability of the admitted plan.
        rate: f64,
    },
    /// The demand could not be served; nothing changed.
    Rejected(RejectReason),
}

impl AdmitOutcome {
    /// The new plan's id, if admitted.
    #[must_use]
    pub fn id(&self) -> Option<PlanId> {
        match self {
            AdmitOutcome::Accepted { id, .. } => Some(*id),
            AdmitOutcome::Rejected(_) => None,
        }
    }
}

/// A comparable snapshot of the full service state — what the no-op and
/// determinism oracles assert equality over.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDigest {
    /// Mutation counter.
    pub epoch: u64,
    /// Next plan id to be assigned.
    pub next_plan: u64,
    /// The complete residual ledger.
    pub ledger: ResidualLedger,
    /// Every live plan's id and exact footprint, in id order.
    pub live: Vec<(PlanId, ResourceUsage)>,
}

/// The online demand engine's state: the network, the live plan set, and
/// the residual-capacity ledger, all versioned by a mutation epoch.
#[derive(Debug, Clone)]
pub struct ServiceState {
    net: QuantumNetwork,
    config: RoutingConfig,
    epoch: u64,
    next_plan: u64,
    live: BTreeMap<PlanId, LivePlan>,
    ledger: ResidualLedger,
    /// Present iff `config.admit_strategy` is
    /// [`AdmitStrategy::Incremental`]. Not part of the digest: the cache
    /// only ever changes *when* work happens, never *what* is computed.
    incremental: Option<Box<IncrementalAdmission>>,
    /// The telemetry registry every layer under this state records into
    /// (`serve.cache.*`, `alg2.*`, `alg3.*`, `mc.*`, `serve.replay.*`).
    /// Disabled by default; never part of the digest.
    registry: Registry,
    /// Canonical edge → epoch of its most recent `fail_link`: a repeat
    /// cut with no interleaving mutation is a counted no-op.
    failed_at: HashMap<EdgeId, u64>,
    /// `fail_link` calls short-circuited as double cuts
    /// (`serve.fail_link_noops`).
    fail_link_noops: Counter,
}

impl ServiceState {
    /// A fresh service over `net`: no live plans, everything free, no
    /// telemetry recorded.
    #[must_use]
    pub fn new(net: QuantumNetwork, config: RoutingConfig) -> Self {
        Self::with_telemetry(net, config, Registry::disabled())
    }

    /// [`new`](ServiceState::new), recording telemetry into `registry`.
    /// Counters are observational only: enabled and disabled registries
    /// produce byte-identical plans, logs, and digests.
    #[must_use]
    pub fn with_telemetry(net: QuantumNetwork, config: RoutingConfig, registry: Registry) -> Self {
        let ledger = ResidualLedger::new(&net);
        let incremental = match config.admit_strategy {
            AdmitStrategy::Incremental => {
                let mut engine = SelectionEngine::new();
                engine.set_registry(&registry);
                engine.enable_spt(&registry);
                Some(Box::new(IncrementalAdmission {
                    engine,
                    cache: CandidateCache::new(&net, MAX_CACHED_PAIRS, &registry),
                }))
            }
            AdmitStrategy::FromScratch => None,
        };
        let fail_link_noops = registry.counter("serve.fail_link_noops");
        ServiceState {
            net,
            config,
            epoch: 0,
            next_plan: 0,
            live: BTreeMap::new(),
            ledger,
            incremental,
            registry,
            failed_at: HashMap::new(),
            fail_link_noops,
        }
    }

    /// The telemetry registry this state records into. Snapshot it for
    /// `serve.cache.*` / `alg2.*` counters, or hand it to co-operating
    /// layers (the replay loop records `serve.replay.*` through it).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The network being served.
    #[must_use]
    pub fn network(&self) -> &QuantumNetwork {
        &self.net
    }

    /// The routing configuration admissions run under.
    #[must_use]
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The mutation epoch: bumped by every accepted admission, departure,
    /// and eviction — never by rejections.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live plans.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates the live plans in id order.
    pub fn live_plans(&self) -> impl Iterator<Item = &LivePlan> + '_ {
        self.live.values()
    }

    /// Looks up one live plan.
    #[must_use]
    pub fn get(&self, id: PlanId) -> Option<&LivePlan> {
        self.live.get(&id)
    }

    /// The residual-capacity ledger.
    #[must_use]
    pub fn ledger(&self) -> &ResidualLedger {
        &self.ledger
    }

    /// Residual qubits per node — what the next admission routes against.
    #[must_use]
    pub fn residual(&self) -> &[u32] {
        self.ledger.residual()
    }

    /// A copy of the network whose capacities equal the current residual —
    /// the batch side of the equivalence oracle: the batch pipeline on
    /// this network must produce byte-identical output to
    /// [`admission_trace`](ServiceState::admission_trace).
    #[must_use]
    pub fn reduced_network(&self) -> QuantumNetwork {
        self.net.with_capacities(self.ledger.residual())
    }

    /// The demand the next admission of `source -> dest` would route.
    /// Demand ids are assigned from the plan-id counter, so the id (and
    /// with it the whole routed plan) is reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    #[must_use]
    pub fn next_demand(&self, source: NodeId, dest: NodeId) -> Demand {
        Demand::new(
            DemandId::new(usize::try_from(self.next_plan).expect("plan counter fits usize")),
            source,
            dest,
        )
    }

    /// Runs the *from-scratch* admission pipeline for `source -> dest`
    /// against the residual ledger — always
    /// [`route_with_capacity_counted`] end to end, regardless of
    /// `config.admit_strategy` — *without mutating anything*, returning
    /// the full per-stage trace. `None` when no switch has a free qubit
    /// (the pipeline cannot run on a width bound of zero).
    ///
    /// This is the reference side of both equivalence oracles: the
    /// residual-capacity oracle compares it against the batch pipeline on
    /// [`reduced_network`](ServiceState::reduced_network), and the
    /// incremental oracle compares cached admissions against it.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    #[must_use]
    pub fn admission_trace(&self, source: NodeId, dest: NodeId) -> Option<RouteTrace> {
        let residual = self.ledger.residual();
        if self.net.max_switch_capacity_in(residual) == 0 {
            return None;
        }
        let demand = self.next_demand(source, dest);
        Some(route_with_capacity_counted(
            &self.net,
            &[demand],
            &self.config,
            residual,
            1,
            &self.registry,
        ))
    }

    /// The incremental admission path: candidate construction through the
    /// persistent [`SelectionEngine`], reusing every cached width slice
    /// the cache still vouches for, then the ordinary merge + Algorithm 4
    /// on the assembled candidates. Byte-identical to
    /// [`admission_trace`](ServiceState::admission_trace) by the
    /// footprint-invalidation contract (see `cache.rs`), which
    /// `tests/incremental_oracle.rs` enforces.
    fn incremental_trace(&mut self, source: NodeId, dest: NodeId) -> Option<RouteTrace> {
        let ServiceState {
            net,
            config,
            next_plan,
            ledger,
            incremental,
            registry,
            ..
        } = self;
        let residual = ledger.residual();
        if net.max_switch_capacity_in(residual) == 0 {
            return None;
        }
        let max_width = config
            .max_width
            .unwrap_or_else(|| net.max_switch_capacity_in(residual));
        let demand = Demand::new(
            DemandId::new(usize::try_from(*next_plan).expect("plan counter fits usize")),
            source,
            dest,
        );
        let key = (source, dest);
        let IncrementalAdmission { engine, cache } = incremental
            .as_mut()
            .expect("incremental_trace requires the incremental strategy")
            .as_mut();
        let selected = engine.select_demand(
            net,
            &demand,
            residual,
            SelectionQuery {
                h: config.h,
                max_width,
                mode: config.mode,
            },
            |w| cache.reuse(key, w, demand.id),
        );
        cache.store(net, key, &selected);
        let candidates: Vec<CandidatePath> =
            selected.into_iter().flat_map(|s| s.candidates).collect();
        Some(route_from_candidates_counted(
            net,
            &[demand],
            config,
            residual,
            candidates,
            registry,
        ))
    }

    /// Routes a new demand against the residual capacity and, if a route
    /// exists, charges it on the ledger and adds it to the live set.
    /// Rejected admissions leave the state (and its digest) bit-for-bit
    /// unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use fusion_core::algorithms::RoutingConfig;
    /// use fusion_core::{NetworkParams, QuantumNetwork};
    /// use fusion_serve::{AdmitOutcome, ServiceState};
    /// use fusion_topology::TopologyConfig;
    ///
    /// let topo = TopologyConfig::default().generate(7);
    /// let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    /// let users: Vec<_> = net
    ///     .graph()
    ///     .node_ids()
    ///     .filter(|&v| !net.is_switch(v))
    ///     .collect();
    /// let mut state = ServiceState::new(net, RoutingConfig::n_fusion());
    ///
    /// match state.admit(users[0], users[1]) {
    ///     AdmitOutcome::Accepted { id, rate } => {
    ///         assert!(rate > 0.0);
    ///         state.depart(id); // capacity returns exactly
    ///     }
    ///     AdmitOutcome::Rejected(reason) => println!("rejected: {reason:?}"),
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    pub fn admit(&mut self, source: NodeId, dest: NodeId) -> AdmitOutcome {
        self.admit_traced(source, dest).0
    }

    /// [`admit`](ServiceState::admit), also returning the admission's
    /// full pipeline trace (`None` when the network was saturated and the
    /// pipeline never ran) — the hook the incremental-vs-from-scratch
    /// differential oracle compares per event.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    pub fn admit_traced(
        &mut self,
        source: NodeId,
        dest: NodeId,
    ) -> (AdmitOutcome, Option<RouteTrace>) {
        let trace = if self.incremental.is_some() {
            self.incremental_trace(source, dest)
        } else {
            self.admission_trace(source, dest)
        };
        let Some(trace) = trace else {
            return (AdmitOutcome::Rejected(RejectReason::Saturated), None);
        };
        let plan = trace
            .plan
            .plans
            .last()
            .expect("one demand in, one plan out")
            .clone();
        if plan.is_unserved() {
            return (AdmitOutcome::Rejected(RejectReason::NoRoute), Some(trace));
        }
        let usage = plan.resource_usage();
        let rate = plan.rate(&self.net, self.config.mode);
        // The charge below changes residuals at every node the plan
        // touches; tell the cache before the ledger moves so the deltas
        // see the pre-charge values.
        self.note_usage_delta(&usage, true);
        self.ledger
            .charge(&self.net, &usage)
            .expect("pipeline respects residual capacity");
        let id = PlanId(self.next_plan);
        self.next_plan += 1;
        self.epoch += 1;
        self.live.insert(
            id,
            LivePlan {
                id,
                plan,
                usage,
                rate,
                admitted_epoch: self.epoch,
            },
        );
        (AdmitOutcome::Accepted { id, rate }, Some(trace))
    }

    /// Feeds one about-to-be-applied residual change into the candidate
    /// cache: `charge` true when `usage` is being charged (residual
    /// drops), false when released. Must run *before* the ledger mutates
    /// so `old` reads the pre-change residuals. No-op under the
    /// from-scratch strategy.
    fn note_usage_delta(&mut self, usage: &ResourceUsage, charge: bool) {
        let ServiceState {
            net,
            ledger,
            incremental,
            ..
        } = self;
        let Some(inc) = incremental.as_mut() else {
            return;
        };
        let residual = ledger.residual();
        for &(node, qubits) in &usage.node_qubits {
            let old = residual[node.index()];
            let new = if charge { old - qubits } else { old + qubits };
            inc.cache.apply_node_delta(net, node, old, new);
            inc.engine.note_node_delta(net, node, old, new);
        }
    }

    /// Tears a live plan down, returning its capacity to the ledger
    /// exactly. `None` (and no state change) if `id` is not live.
    pub fn depart(&mut self, id: PlanId) -> Option<LivePlan> {
        let lp = self.live.remove(&id)?;
        self.note_usage_delta(&lp.usage, false);
        self.ledger
            .release(&self.net, &lp.usage)
            .expect("live usage was charged at admission");
        self.epoch += 1;
        Some(lp)
    }

    /// A transient fiber cut: every live plan whose flow crosses `edge` is
    /// evicted and its capacity returned. Returns the evicted ids in id
    /// order. The link itself recovers immediately — affected demands must
    /// be re-admitted by the caller (the replay harness does not, matching
    /// the "cut costs you your sessions" model).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn fail_link(&mut self, edge: EdgeId) -> Vec<PlanId> {
        let (u, v) = self.net.graph().endpoints(edge);
        let canon = self.net.graph().find_edge(u, v).unwrap_or(edge);
        // Double cut: if this fiber already failed and nothing mutated
        // the state since (same epoch), the first cut already evicted
        // every crossing plan and cached route — re-scanning the live set
        // and posting lists would find nothing. Counted, not silent.
        // (Cache slots stored by *rejected* admissions in between are not
        // re-dropped; that is a freshness nuance, never a soundness one —
        // the network model does not mutate on a cut.)
        if self.failed_at.get(&canon) == Some(&self.epoch) {
            self.fail_link_noops.inc();
            return Vec::new();
        }
        // Freshness policy: cached candidates that cross the cut fiber
        // are dropped even though the network model never mutates —
        // routing bytes are unaffected (the ledger deltas below handle
        // that), but routes planned over a fiber that just failed should
        // not be replayed from cache indefinitely.
        if let Some(inc) = self.incremental.as_mut() {
            inc.cache.fail_edge(&self.net, edge);
        }
        let key = if u <= v { (u, v) } else { (v, u) };
        let victims: Vec<PlanId> = self
            .live
            .values()
            .filter(|lp| lp.usage.edge_channels.iter().any(|&(pair, _)| pair == key))
            .map(|lp| lp.id)
            .collect();
        for &id in &victims {
            self.depart(id).expect("victim was live");
        }
        self.failed_at.insert(canon, self.epoch);
        victims
    }

    /// Audits the ledger against the live plan set: every charged qubit
    /// and channel must be pinned by exactly one live plan.
    ///
    /// # Errors
    ///
    /// A description of the first imbalance.
    pub fn audit(&self) -> Result<(), String> {
        self.ledger
            .audit(&self.net, self.live.values().map(|lp| &lp.usage))
    }

    /// A comparable snapshot of the full state.
    #[must_use]
    pub fn digest(&self) -> StateDigest {
        StateDigest {
            epoch: self.epoch,
            next_plan: self.next_plan,
            ledger: self.ledger.clone(),
            live: self
                .live
                .values()
                .map(|lp| (lp.id, lp.usage.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::NetworkParams;
    use fusion_topology::TopologyConfig;

    fn world() -> (ServiceState, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 4,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(7);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        (ServiceState::new(net, RoutingConfig::n_fusion()), demands)
    }

    #[test]
    fn admit_then_depart_restores_everything() {
        let (mut state, demands) = world();
        let pristine = state.digest();
        assert!(state.ledger().is_pristine());
        let d = demands[0];
        let AdmitOutcome::Accepted { id, rate } = state.admit(d.source, d.dest) else {
            panic!("default small world must route its first demand");
        };
        assert!(rate > 0.0);
        assert_eq!(state.live_count(), 1);
        assert_eq!(state.epoch(), 1);
        state.audit().unwrap();
        let lp = state.depart(id).unwrap();
        assert_eq!(lp.id, id);
        assert!(state.ledger().is_pristine());
        assert_eq!(state.epoch(), 2);
        // Everything except the consumed id and epochs is restored.
        let after = state.digest();
        assert_eq!(after.ledger, pristine.ledger);
        assert!(after.live.is_empty());
    }

    #[test]
    fn depart_unknown_is_a_no_op() {
        let (mut state, _) = world();
        let before = state.digest();
        assert!(state.depart(PlanId(42)).is_none());
        assert_eq!(state.digest(), before);
    }

    #[test]
    fn admissions_contend_for_capacity() {
        let (mut state, demands) = world();
        // Admitting the same user pair repeatedly must eventually exhaust
        // the residual capacity around the pair and get rejected, without
        // ever panicking or overdrawing.
        let d = demands[0];
        let mut accepted = 0;
        for _ in 0..200 {
            match state.admit(d.source, d.dest) {
                AdmitOutcome::Accepted { .. } => accepted += 1,
                AdmitOutcome::Rejected(_) => break,
            }
            state.audit().unwrap();
        }
        assert!(accepted > 0, "first admission must succeed");
        assert!(
            accepted < 200,
            "finite switch capacity cannot serve 200 copies"
        );
    }

    #[test]
    fn rejection_is_bit_exact_no_op() {
        let (mut state, demands) = world();
        let d = demands[0];
        // Saturate the pair.
        while let AdmitOutcome::Accepted { .. } = state.admit(d.source, d.dest) {}
        let before = state.digest();
        assert_eq!(
            state.admit(d.source, d.dest),
            AdmitOutcome::Rejected(RejectReason::NoRoute)
        );
        assert_eq!(state.digest(), before);
    }

    #[test]
    fn fail_link_evicts_crossing_plans_and_returns_capacity() {
        let (mut state, demands) = world();
        let d = demands[0];
        let AdmitOutcome::Accepted { id, .. } = state.admit(d.source, d.dest) else {
            panic!("first admission must succeed");
        };
        let lp = state.get(id).unwrap().clone();
        let &((u, v), _) = lp.usage.edge_channels.first().expect("plan uses edges");
        let edge = state.network().graph().find_edge(u, v).unwrap();
        let evicted = state.fail_link(edge);
        assert_eq!(evicted, vec![id]);
        assert!(state.ledger().is_pristine(), "capacity fully returned");
        state.audit().unwrap();
        // A second cut on the same link evicts nothing.
        assert!(state.fail_link(edge).is_empty());
    }

    #[test]
    fn double_cut_is_a_counted_noop_until_state_mutates() {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 4,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(7);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let registry = Registry::enabled();
        let noops = registry.counter("serve.fail_link_noops");
        let mut state = ServiceState::with_telemetry(net, RoutingConfig::n_fusion(), registry);

        let d = demands[0];
        let AdmitOutcome::Accepted { id, .. } = state.admit(d.source, d.dest) else {
            panic!("first admission must succeed");
        };
        let lp = state.get(id).unwrap().clone();
        let &((u, v), _) = lp.usage.edge_channels.first().expect("plan uses edges");
        let edge = state.network().graph().find_edge(u, v).unwrap();

        assert_eq!(state.fail_link(edge), vec![id]);
        assert_eq!(noops.value(), 0, "first cut takes the full path");
        // Same epoch, same fiber: counted no-op, no rescanning.
        assert!(state.fail_link(edge).is_empty());
        assert_eq!(noops.value(), 1);
        assert!(state.fail_link(edge).is_empty());
        assert_eq!(noops.value(), 2);

        // Any state mutation bumps the epoch and re-enables the full
        // path (an admission may have routed over the cut fiber again).
        let AdmitOutcome::Accepted { id: id2, .. } = state.admit(d.source, d.dest) else {
            panic!("re-admission must succeed (capacity was returned)");
        };
        let victims = state.fail_link(edge);
        assert_eq!(noops.value(), 2, "post-mutation cut is not a no-op");
        // The re-admitted plan is only a victim if it crossed the fiber.
        let crossed = state.get(id2).is_none();
        assert_eq!(victims.contains(&id2), crossed);
        state.audit().unwrap();
    }

    /// The repair path through the *full* admission stack: a damaged
    /// slot must be replayed up to its intact prefix, recomputed past
    /// it, counted (`serve.cache.repairs`, `serve.cache.repair_depth`),
    /// and stay byte-identical to a from-scratch twin. Organic churn
    /// traces reach damage-then-reuse only in a deep tail (the flipping
    /// batch must avoid every ordinal-0 read of the slot), so the
    /// minimal damage is inflicted directly — which is conservative:
    /// repaired widths recompute against live residuals either way.
    #[test]
    fn repair_fires_through_the_full_admission_path() {
        let topo = TopologyConfig {
            num_switches: 20,
            num_user_pairs: 3,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(13);
        let build = |strategy| {
            let net = QuantumNetwork::from_topology(
                &topo,
                &NetworkParams {
                    switch_capacity: 48,
                    ..NetworkParams::default()
                },
            );
            ServiceState::with_telemetry(
                net,
                RoutingConfig {
                    admit_strategy: strategy,
                    max_width: Some(4),
                    ..RoutingConfig::n_fusion()
                },
                Registry::enabled(),
            )
        };
        let mut inc = build(AdmitStrategy::Incremental);
        let mut scr = build(AdmitStrategy::FromScratch);
        let demands = Demand::from_topology(&topo);

        // Two admissions: the first charges the network, both pairs'
        // slots survive the charges (capacity 48 keeps the flip bands
        // away from widths <= 4) with multi-search logs and late-ordinal
        // certificate reads — exactly the shape organic damage needs.
        // Damage the lowest such slot, then re-admit its own pair.
        for dm in &demands[..2] {
            let (a, ta) = inc.admit_traced(dm.source, dm.dest);
            let (b, tb) = scr.admit_traced(dm.source, dm.dest);
            assert_eq!(a, b);
            assert!(ta == tb, "warmup trace diverged");
            assert!(matches!(a, AdmitOutcome::Accepted { .. }));
        }

        let cache = &mut inc.incremental.as_mut().expect("incremental state").cache;
        let (key, w, k) = cache
            .first_repairable()
            .expect("fixture must store a repairable slot (seed 13 does)");
        assert!(k > 0);
        cache.damage_for_test(key, w, k);
        let (s, d) = key;

        let (a, ta) = inc.admit_traced(s, d);
        let (b, tb) = scr.admit_traced(s, d);
        assert_eq!(a, b, "repaired admission outcome diverged");
        assert!(ta == tb, "repaired admission trace diverged");
        assert!(inc.digest() == scr.digest());
        let snap = inc.registry().snapshot();
        assert!(
            snap.value("serve.cache.repairs") >= 1,
            "damaged slot was never repair-served"
        );
        assert_eq!(
            snap.value("serve.cache.repair_depth/count"),
            snap.value("serve.cache.repairs"),
            "every repair records its depth"
        );
        inc.audit().unwrap();
        scr.audit().unwrap();
    }
}

