//! Allocation-count regression guard for Algorithm 2's hot path.
//!
//! The width-descent engine builds each `WidthedPath` by move (no
//! per-candidate `path.clone()`) and reuses its scratch arenas, so one
//! `paths_selection` call must allocate strictly less than the retained
//! per-width sweep on the same input. A counting global allocator pins
//! that: reintroducing the per-candidate clone (or losing arena reuse)
//! pushes the descent's count back toward the reference's and fails the
//! margin below.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use fusion_core::algorithms::alg2::{paths_selection, paths_selection_reference};
use fusion_core::{Demand, NetworkParams, QuantumNetwork, SwapMode};
use fusion_topology::TopologyConfig;

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation calls made while running `work`.
fn allocations_during<T>(work: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = work();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

#[test]
fn descent_allocates_less_than_reference_sweep() {
    let topo = TopologyConfig {
        num_switches: 30,
        num_user_pairs: 6,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(7);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    let caps = net.capacities();

    let (reference, ref_allocs) = allocations_during(|| {
        paths_selection_reference(&net, &demands, &caps, 3, 5, SwapMode::NFusion)
    });
    let (descent, descent_allocs) =
        allocations_during(|| paths_selection(&net, &demands, &caps, 3, 5, SwapMode::NFusion));

    assert_eq!(
        descent, reference,
        "engines must agree before comparing cost"
    );
    assert!(
        !reference.is_empty(),
        "instance must produce candidates for the comparison to mean anything"
    );
    // The descent drops one allocation per candidate by moving the path
    // into its WidthedPath; its own overhead (feasibility view, channel
    // tables, reach buckets) is O(max_width + demands), far below the
    // candidate count here. Reintroducing the per-candidate clone adds
    // `reference.len()` allocations back and flips this inequality.
    assert!(
        descent_allocs < ref_allocs,
        "width-descent allocations regressed: descent {descent_allocs}, \
         reference {ref_allocs}, candidates {}",
        reference.len()
    );
}
