use fusion_graph::{NodeId, UnGraph};
use rand::Rng;

use crate::config::TopologyConfig;
use crate::geometry::Position;
use crate::model::{Link, Role, Site};

/// Places `2 · num_user_pairs` quantum-users uniformly in the area, connects
/// each to its `user_attach` nearest switches, and returns the demand list
/// (consecutive users form a pair; one demanded quantum state per pair).
///
/// Users never connect to other users (§V-A), and user-switch links get
/// their Euclidean length so they participate in the `exp(-α·L)` success
/// model like any other fiber.
pub(crate) fn attach_users(
    graph: &mut UnGraph<Site, Link>,
    cfg: &TopologyConfig,
    rng: &mut impl Rng,
) -> Vec<(NodeId, NodeId)> {
    let switches: Vec<NodeId> = graph
        .node_ids()
        .filter(|&n| graph.node(n).role == Role::Switch)
        .collect();
    assert!(
        cfg.num_user_pairs == 0 || !switches.is_empty(),
        "cannot attach users without switches"
    );

    let mut demands = Vec::with_capacity(cfg.num_user_pairs);
    for _ in 0..cfg.num_user_pairs {
        let a = add_user(graph, &switches, cfg, rng);
        let b = add_user(graph, &switches, cfg, rng);
        demands.push((a, b));
    }
    demands
}

fn add_user(
    graph: &mut UnGraph<Site, Link>,
    switches: &[NodeId],
    cfg: &TopologyConfig,
    rng: &mut impl Rng,
) -> NodeId {
    let pos = Position::sample(rng, cfg.side);
    let user = graph.add_node(Site::user(pos));
    let mut by_distance: Vec<(f64, NodeId)> = switches
        .iter()
        .map(|&s| (pos.distance(graph.node(s).position), s))
        .collect();
    by_distance.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite distances")
            .then(a.1.cmp(&b.1))
    });
    for &(d, s) in by_distance.iter().take(cfg.user_attach) {
        graph.add_edge(user, s, Link::new(d));
    }
    user
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::deterministic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_cfg(pairs: usize, attach: usize) -> TopologyConfig {
        TopologyConfig {
            num_user_pairs: pairs,
            user_attach: attach,
            side: 100.0,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn attaches_expected_counts() {
        let mut g = deterministic::grid(3, 3, 10.0);
        let cfg = base_cfg(3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let demands = attach_users(&mut g, &cfg, &mut rng);
        assert_eq!(demands.len(), 3);
        let users: Vec<_> = g.node_ids().filter(|&n| g.node(n).is_user()).collect();
        assert_eq!(users.len(), 6);
        for u in users {
            assert_eq!(
                g.degree(u),
                2,
                "user must attach to exactly user_attach switches"
            );
            for v in g.neighbors(u) {
                assert_eq!(
                    g.node(v).role,
                    Role::Switch,
                    "users only connect to switches"
                );
            }
        }
    }

    #[test]
    fn links_carry_true_distance() {
        let mut g = deterministic::grid(2, 2, 10.0);
        let cfg = base_cfg(1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        attach_users(&mut g, &cfg, &mut rng);
        for e in g.edges() {
            let d = g
                .node(e.source)
                .position
                .distance(g.node(e.target).position);
            assert!((d - e.weight.length).abs() < 1e-9);
        }
    }

    #[test]
    fn nearest_switch_is_chosen() {
        let mut g = deterministic::line(5, 10.0); // switches at x = 0,10,20,30,40
        let cfg = base_cfg(1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let demands = attach_users(&mut g, &cfg, &mut rng);
        let (a, _) = demands[0];
        let a_pos = g.node(a).position;
        let attached = g.neighbors(a).next().unwrap();
        let d_attached = a_pos.distance(g.node(attached).position);
        for s in g.node_ids().filter(|&n| !g.node(n).is_user()) {
            assert!(d_attached <= a_pos.distance(g.node(s).position) + 1e-9);
        }
    }

    #[test]
    fn zero_pairs_is_noop() {
        let mut g = deterministic::grid(2, 2, 1.0);
        let cfg = base_cfg(0, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let demands = attach_users(&mut g, &cfg, &mut rng);
        assert!(demands.is_empty());
        assert_eq!(g.node_count(), 4);
    }
}
