//! The paper's motivating comparison (Figs. 4 and 6): one routed path,
//! evaluated under n-fusion GHZ measurements versus classic BSM swapping.
//!
//! Reproduces the closed forms:
//! * Fig. 4 — a width-(2,1) path rates `(1-(1-p)²)·p·q` under fusion;
//! * Fig. 6a — a width-2 2-hop path rates `q·(1-(1-p)²)²` under 4-fusion;
//! * idea 4 — classic swapping earns only `p^z·q^(z-1)` per state, so the
//!   fusion advantage grows as `w^(z-1)` for small p.
//!
//! ```text
//! cargo run --release --example fusion_vs_swapping
//! ```

use ghz_entanglement_routing::core::{metrics, QuantumNetwork, WidthedPath};
use ghz_entanglement_routing::graph::Path;

fn main() {
    let (p, q) = (0.2, 0.9);

    // Alice = Carol = Bob, the Fig. 4 layout.
    let mut b = QuantumNetwork::builder();
    let alice = b.user(0.0, 0.0);
    let carol = b.switch(1.0, 0.0, 10);
    let bob = b.user(2.0, 0.0);
    b.link(alice, carol).expect("valid link");
    b.link(carol, bob).expect("valid link");
    let mut net = b.build();
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);

    println!("single-link success p = {p}, swap success q = {q}\n");

    // Fig. 4: width 2 toward Carol, width 1 toward Bob.
    let mut fig4 = WidthedPath::uniform(Path::new(vec![alice, carol, bob]), 1);
    fig4.widths[0] = 2;
    let rate4 = metrics::widthed_path_rate(&net, &fig4).value();
    let closed4 = (1.0 - (1.0 - p) * (1.0 - p)) * p * q;
    println!("Fig. 4  (widths 2,1) fusion rate: {rate4:.4}  [closed form {closed4:.4}]");

    // Fig. 6a: width 2 on both hops, one 4-fusion at Carol.
    let fig6 = WidthedPath::uniform(Path::new(vec![alice, carol, bob]), 2);
    let rate6 = metrics::widthed_path_rate(&net, &fig6).value();
    let c = 1.0 - (1.0 - p) * (1.0 - p);
    println!(
        "Fig. 6a (width 2)    fusion rate: {rate6:.4}  [closed form {:.4}]",
        q * c * c
    );

    // The same width-2 path under classic swapping: one pre-committed lane.
    let classic = metrics::classic::success_probability(&net, &fig6);
    println!(
        "Fig. 6b (width 2)   classic rate: {classic:.4}  [closed form {:.4}]",
        p * p * q
    );

    println!(
        "\nn-fusion advantage on this path: {:.1}x (idea 4 predicts ~w^(z-1) = {}x for small p)",
        rate6 / classic,
        2
    );

    // Sweep p to show where the advantage is largest (paper §V-C1).
    println!("\n   p     fusion   classic   ratio");
    for p in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
        net.set_uniform_link_success(Some(p));
        let f = metrics::widthed_path_rate(&net, &fig6).value();
        let cl = metrics::classic::success_probability(&net, &fig6);
        println!("  {p:>4.2}   {f:>6.4}   {cl:>7.4}   {:>5.2}x", f / cl);
    }
}
