//! Named world presets for the serve binary and its tests.
//!
//! These mirror the *instance-shaping* fields (topology, network
//! parameters, `h`, seed) of `fusion-bench`'s `ExperimentConfig` presets
//! of the same names. `fusion-serve` cannot depend on `fusion-bench`
//! (bench's perfbench depends on serve for the `serve_replay` workload),
//! so the table is duplicated here and kept honest by the
//! `serve_presets_mirror_bench` test in `fusion-bench`, which links both
//! crates.
//!
//! Presets fix the *world*, not the admission strategy: the routing
//! config they produce uses the default `AdmitStrategy::Incremental`,
//! and `serve replay --strategy from-scratch` overrides it per run (the
//! replay log is identical either way; see `mod@crate::replay`).

use fusion_core::algorithms::RoutingConfig;
use fusion_core::{NetworkParams, QuantumNetwork};
use fusion_topology::{GeneratorKind, TopologyConfig};

/// A named world: enough to regenerate the exact network instances the
/// batch experiments of the same preset name run on.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePreset {
    /// Canonical preset name (`serve replay --preset NAME`).
    pub name: &'static str,
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// Switch capacity and physics.
    pub network: NetworkParams,
    /// Candidate paths per (demand, width) for admissions.
    pub h: usize,
    /// Base RNG seed for network generation.
    pub seed: u64,
}

impl ServePreset {
    /// Generates the `i`-th network instance — the same
    /// `seed.wrapping_add(i)` convention as the batch experiments.
    #[must_use]
    pub fn network_instance(&self, i: usize) -> QuantumNetwork {
        let topo = self.topology.generate(self.seed.wrapping_add(i as u64));
        QuantumNetwork::from_topology(&topo, &self.network)
    }

    /// The routing configuration admissions run under: the paper's
    /// `ALG-N-FUSION` with this preset's `h`.
    #[must_use]
    pub fn routing_config(&self) -> RoutingConfig {
        RoutingConfig {
            h: self.h,
            ..RoutingConfig::n_fusion()
        }
    }
}

const BASE_SEED: u64 = 0x5eed;

fn preset(name: &'static str, topology: TopologyConfig, h: usize) -> ServePreset {
    ServePreset {
        name,
        topology,
        network: NetworkParams::default(),
        h,
        seed: BASE_SEED,
    }
}

fn large_topology(num_switches: usize, kind: GeneratorKind) -> TopologyConfig {
    TopologyConfig {
        num_switches,
        num_user_pairs: 50,
        kind,
        ..TopologyConfig::default()
    }
}

/// Every named preset, base shapes first then the large-scale ones —
/// same names and instance shapes as the batch presets in `fusion-bench`.
#[must_use]
pub fn presets() -> Vec<ServePreset> {
    let default_kind = TopologyConfig::default().kind;
    vec![
        preset("default", TopologyConfig::default(), 5),
        preset(
            "quick",
            TopologyConfig {
                num_switches: 30,
                num_user_pairs: 6,
                avg_degree: 6.0,
                ..TopologyConfig::default()
            },
            5,
        ),
        preset("large-1k", large_topology(1_000, default_kind), 3),
        preset(
            "large-1k-grid",
            large_topology(1_000, GeneratorKind::Grid),
            3,
        ),
        preset("large-5k", large_topology(5_000, default_kind), 3),
        preset(
            "large-5k-grid",
            large_topology(5_000, GeneratorKind::Grid),
            3,
        ),
        preset("large-10k", large_topology(10_000, default_kind), 3),
        preset(
            "large-10k-grid",
            large_topology(10_000, GeneratorKind::Grid),
            3,
        ),
    ]
}

/// Resolves a preset name to its configuration.
#[must_use]
pub fn resolve_preset(name: &str) -> Option<ServePreset> {
    presets().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_and_are_unique() {
        let all = presets();
        for p in &all {
            assert_eq!(resolve_preset(p.name).as_ref(), Some(p));
        }
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate preset name");
        assert!(resolve_preset("nope").is_none());
    }

    #[test]
    fn quick_preset_builds_a_world() {
        let p = resolve_preset("quick").unwrap();
        let net = p.network_instance(0);
        assert!(net.node_count() > 30, "switches plus users");
        assert_eq!(p.routing_config().h, 5);
    }
}
