//! Offline stub of `criterion`.
//!
//! A tiny wall-clock micro-harness with criterion's API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark runs a short warmup followed by a fixed sample budget and
//! prints mean and minimum iteration time as plain text. There is no
//! statistical analysis, HTML report, or baseline comparison. See
//! `vendor/README.md` for how to swap the real crate in.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which most benches here use).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &id.into(), self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into(), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.into(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here; criterion finalizes reports).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` once per sample over the configured budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: one untimed call (also forces lazy init in the routine).
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        budget: sample_size,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if bencher.samples.is_empty() {
        println!("{full:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{full:<60} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a function running a sequence of benchmark targets, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` / `cargo bench` pass harness flags
            // (`--test`, `--bench`, filters); this stub runs everything
            // and only honors `--test`'s run-quickly intent implicitly,
            // since sample budgets are already tiny.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        // one warmup + sample_size timed iterations
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x)
            });
        });
        group.finish();
        assert_eq!(runs, 6);
    }
}
