//! End-to-end pipeline tests: topology generation → network model →
//! ALG-N-FUSION routing, checked for determinism, feasibility, and rate
//! sanity across seeds and generator families.

use ghz_entanglement_routing::core::algorithms::{alg_n_fusion, route, RoutingConfig};
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::topology::{GeneratorKind, TopologyConfig};

fn world(kind: GeneratorKind, seed: u64) -> (QuantumNetwork, Vec<Demand>) {
    let topo = TopologyConfig {
        num_switches: 40,
        num_user_pairs: 8,
        avg_degree: 8.0,
        kind,
        ..TopologyConfig::default()
    }
    .generate(seed);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    (net, demands)
}

const KINDS: [GeneratorKind; 3] = [
    GeneratorKind::Waxman { alpha: 1.0 },
    GeneratorKind::WattsStrogatz { rewire: 0.1 },
    GeneratorKind::Aiello { gamma: 2.5 },
];

#[test]
fn routes_on_every_generator_family() {
    for kind in KINDS {
        for seed in 0..3 {
            let (net, demands) = world(kind, seed);
            let plan = alg_n_fusion(&net, &demands);
            assert_eq!(plan.plans.len(), demands.len());
            let rate = plan.total_rate(&net);
            assert!(
                rate > 0.0 && rate <= demands.len() as f64 + 1e-9,
                "{kind:?} seed {seed}: rate {rate} out of range"
            );
        }
    }
}

#[test]
fn switch_capacity_is_never_violated() {
    for kind in KINDS {
        let (net, demands) = world(kind, 7);
        let plan = alg_n_fusion(&net, &demands);
        for node in net.graph().node_ids().filter(|&n| net.is_switch(n)) {
            let spent: u32 = plan.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert!(
                spent <= net.capacity(node),
                "{kind:?}: switch {node} spends {spent} of {}",
                net.capacity(node)
            );
            assert_eq!(
                spent + plan.leftover[node.index()],
                net.capacity(node),
                "{kind:?}: leftover bookkeeping broken at {node}"
            );
        }
    }
}

#[test]
fn routing_is_reproducible() {
    let (net, demands) = world(KINDS[0], 3);
    let a = alg_n_fusion(&net, &demands);
    let b = alg_n_fusion(&net, &demands);
    assert_eq!(a.alg4_links, b.alg4_links);
    assert_eq!(a.leftover, b.leftover);
    for (pa, pb) in a.plans.iter().zip(&b.plans) {
        assert_eq!(pa.flow, pb.flow);
        assert_eq!(pa.paths, pb.paths);
    }
}

#[test]
fn flows_connect_their_own_users() {
    let (net, demands) = world(KINDS[0], 5);
    let plan = alg_n_fusion(&net, &demands);
    for dp in plan.plans.iter().filter(|p| !p.is_unserved()) {
        assert_eq!(dp.flow.source(), dp.demand.source);
        assert_eq!(dp.flow.sink(), dp.demand.dest);
        // Every flow edge must be a real network fiber.
        for (u, v, w) in dp.flow.edges() {
            assert!(w >= 1);
            assert!(
                net.hop(u, v).is_some(),
                "flow edge {u}-{v} missing from the network"
            );
        }
        // Every recorded path must run source -> dest over real fibers.
        for wp in &dp.paths {
            assert_eq!(wp.path.source(), dp.demand.source);
            assert_eq!(wp.path.destination(), dp.demand.dest);
        }
    }
}

#[test]
fn alg4_and_merging_are_monotone_improvements() {
    for seed in [1, 2, 3] {
        let (mut net, demands) = world(KINDS[0], seed);
        net.set_uniform_link_success(Some(0.3));
        let full = route(&net, &demands, &RoutingConfig::n_fusion()).total_rate(&net);
        let no_alg4 =
            route(&net, &demands, &RoutingConfig::n_fusion_without_alg4()).total_rate(&net);
        let no_merge = route(
            &net,
            &demands,
            &RoutingConfig {
                merge_paths: false,
                ..RoutingConfig::n_fusion()
            },
        )
        .total_rate(&net);
        assert!(
            full >= no_alg4 - 1e-9,
            "seed {seed}: alg4 hurt ({full} < {no_alg4})"
        );
        assert!(
            full >= no_merge - 0.35,
            "seed {seed}: merging regressed sharply ({full} vs {no_merge})"
        );
    }
}

#[test]
fn more_resources_never_hurt_much() {
    // Rates should broadly increase with switch capacity (Fig. 9a trend).
    let topo = TopologyConfig {
        num_switches: 40,
        num_user_pairs: 8,
        avg_degree: 8.0,
        ..TopologyConfig::default()
    }
    .generate(11);
    let demands_topo = Demand::from_topology(&topo);
    let rate_at = |cap: u32| {
        let params = NetworkParams {
            switch_capacity: cap,
            ..NetworkParams::default()
        };
        let net = QuantumNetwork::from_topology(&topo, &params);
        alg_n_fusion(&net, &demands_topo).total_rate(&net)
    };
    let small = rate_at(6);
    let large = rate_at(12);
    assert!(
        large >= small - 0.2,
        "doubling qubits must not reduce the rate: {small} -> {large}"
    );
}

#[test]
fn empty_demand_list_is_fine() {
    let (net, _) = world(KINDS[0], 1);
    let plan = alg_n_fusion(&net, &[]);
    assert_eq!(plan.plans.len(), 0);
    assert_eq!(plan.total_rate(&net), 0.0);
}
