//! The epoch-versioned service state: network, live plans, residual
//! ledger.
//!
//! [`ServiceState`] is the long-lived object the online engine mutates:
//! [`admit`](ServiceState::admit) routes a new demand with the batch
//! pipeline's width-descent engine restricted to the ledger's residual
//! capacity, [`depart`](ServiceState::depart) tears a plan down and
//! returns its capacity exactly, and [`fail_link`](ServiceState::fail_link)
//! evicts every plan crossing a failed fiber. Every successful mutation
//! bumps the epoch; rejected admissions are strict no-ops.
//!
//! The admission contract (locked down by `tests/service_oracle.rs`): the
//! candidates, merge outcome, and finished plan of an admission against
//! the residual ledger are byte-identical to running the batch pipeline
//! on a network whose capacities are pre-reduced by the live plans
//! ([`QuantumNetwork::with_capacities`]).

use std::collections::BTreeMap;
use std::fmt;

use fusion_core::algorithms::{route_with_capacity_traced, RouteTrace, RoutingConfig};
use fusion_core::{Demand, DemandId, DemandPlan, QuantumNetwork, ResourceUsage};
use fusion_graph::{EdgeId, NodeId};

use crate::ledger::ResidualLedger;

/// Stable identifier of one live (or departed) plan. Ids are assigned in
/// admission order and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanId(u64);

impl PlanId {
    /// Raw index of this plan id.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One admitted demand: its plan, its exact resource footprint, and its
/// admission metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct LivePlan {
    /// The plan's stable id.
    pub id: PlanId,
    /// The routed structure serving the demand.
    pub plan: DemandPlan,
    /// Exact resources charged on the ledger at admission; released
    /// verbatim at departure.
    pub usage: ResourceUsage,
    /// Analytic success probability at admission time.
    pub rate: f64,
    /// Epoch at which the plan was admitted.
    pub admitted_epoch: u64,
}

/// Why an admission was refused. Refusals leave the state untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No switch has a free qubit left — routing was not even attempted.
    Saturated,
    /// The pipeline ran but found no feasible route under the residual
    /// capacity.
    NoRoute,
}

/// Outcome of one [`ServiceState::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitOutcome {
    /// The demand was routed; its plan is now live.
    Accepted {
        /// Id of the new live plan.
        id: PlanId,
        /// Analytic success probability of the admitted plan.
        rate: f64,
    },
    /// The demand could not be served; nothing changed.
    Rejected(RejectReason),
}

impl AdmitOutcome {
    /// The new plan's id, if admitted.
    #[must_use]
    pub fn id(&self) -> Option<PlanId> {
        match self {
            AdmitOutcome::Accepted { id, .. } => Some(*id),
            AdmitOutcome::Rejected(_) => None,
        }
    }
}

/// A comparable snapshot of the full service state — what the no-op and
/// determinism oracles assert equality over.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDigest {
    /// Mutation counter.
    pub epoch: u64,
    /// Next plan id to be assigned.
    pub next_plan: u64,
    /// The complete residual ledger.
    pub ledger: ResidualLedger,
    /// Every live plan's id and exact footprint, in id order.
    pub live: Vec<(PlanId, ResourceUsage)>,
}

/// The online demand engine's state: the network, the live plan set, and
/// the residual-capacity ledger, all versioned by a mutation epoch.
#[derive(Debug, Clone)]
pub struct ServiceState {
    net: QuantumNetwork,
    config: RoutingConfig,
    epoch: u64,
    next_plan: u64,
    live: BTreeMap<PlanId, LivePlan>,
    ledger: ResidualLedger,
}

impl ServiceState {
    /// A fresh service over `net`: no live plans, everything free.
    #[must_use]
    pub fn new(net: QuantumNetwork, config: RoutingConfig) -> Self {
        let ledger = ResidualLedger::new(&net);
        ServiceState {
            net,
            config,
            epoch: 0,
            next_plan: 0,
            live: BTreeMap::new(),
            ledger,
        }
    }

    /// The network being served.
    #[must_use]
    pub fn network(&self) -> &QuantumNetwork {
        &self.net
    }

    /// The routing configuration admissions run under.
    #[must_use]
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The mutation epoch: bumped by every accepted admission, departure,
    /// and eviction — never by rejections.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live plans.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterates the live plans in id order.
    pub fn live_plans(&self) -> impl Iterator<Item = &LivePlan> + '_ {
        self.live.values()
    }

    /// Looks up one live plan.
    #[must_use]
    pub fn get(&self, id: PlanId) -> Option<&LivePlan> {
        self.live.get(&id)
    }

    /// The residual-capacity ledger.
    #[must_use]
    pub fn ledger(&self) -> &ResidualLedger {
        &self.ledger
    }

    /// Residual qubits per node — what the next admission routes against.
    #[must_use]
    pub fn residual(&self) -> &[u32] {
        self.ledger.residual()
    }

    /// A copy of the network whose capacities equal the current residual —
    /// the batch side of the equivalence oracle: the batch pipeline on
    /// this network must produce byte-identical output to
    /// [`admission_trace`](ServiceState::admission_trace).
    #[must_use]
    pub fn reduced_network(&self) -> QuantumNetwork {
        self.net.with_capacities(self.ledger.residual())
    }

    /// The demand the next admission of `source -> dest` would route.
    /// Demand ids are assigned from the plan-id counter, so the id (and
    /// with it the whole routed plan) is reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    #[must_use]
    pub fn next_demand(&self, source: NodeId, dest: NodeId) -> Demand {
        Demand::new(
            DemandId::new(usize::try_from(self.next_plan).expect("plan counter fits usize")),
            source,
            dest,
        )
    }

    /// Runs the admission pipeline for `source -> dest` against the
    /// residual ledger *without mutating anything*, returning the full
    /// per-stage trace. `None` when no switch has a free qubit (the
    /// pipeline cannot run on a width bound of zero).
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    #[must_use]
    pub fn admission_trace(&self, source: NodeId, dest: NodeId) -> Option<RouteTrace> {
        let residual = self.ledger.residual();
        if self.net.max_switch_capacity_in(residual) == 0 {
            return None;
        }
        let demand = self.next_demand(source, dest);
        Some(route_with_capacity_traced(
            &self.net,
            &[demand],
            &self.config,
            residual,
            1,
        ))
    }

    /// Routes a new demand against the residual capacity and, if a route
    /// exists, charges it on the ledger and adds it to the live set.
    /// Rejected admissions leave the state bit-for-bit unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    pub fn admit(&mut self, source: NodeId, dest: NodeId) -> AdmitOutcome {
        let Some(trace) = self.admission_trace(source, dest) else {
            return AdmitOutcome::Rejected(RejectReason::Saturated);
        };
        let mut plans = trace.plan.plans;
        let plan = plans.pop().expect("one demand in, one plan out");
        if plan.is_unserved() {
            return AdmitOutcome::Rejected(RejectReason::NoRoute);
        }
        let usage = plan.resource_usage();
        let rate = plan.rate(&self.net, self.config.mode);
        self.ledger
            .charge(&self.net, &usage)
            .expect("pipeline respects residual capacity");
        let id = PlanId(self.next_plan);
        self.next_plan += 1;
        self.epoch += 1;
        self.live.insert(
            id,
            LivePlan {
                id,
                plan,
                usage,
                rate,
                admitted_epoch: self.epoch,
            },
        );
        AdmitOutcome::Accepted { id, rate }
    }

    /// Tears a live plan down, returning its capacity to the ledger
    /// exactly. `None` (and no state change) if `id` is not live.
    pub fn depart(&mut self, id: PlanId) -> Option<LivePlan> {
        let lp = self.live.remove(&id)?;
        self.ledger
            .release(&self.net, &lp.usage)
            .expect("live usage was charged at admission");
        self.epoch += 1;
        Some(lp)
    }

    /// A transient fiber cut: every live plan whose flow crosses `edge` is
    /// evicted and its capacity returned. Returns the evicted ids in id
    /// order. The link itself recovers immediately — affected demands must
    /// be re-admitted by the caller (the replay harness does not, matching
    /// the "cut costs you your sessions" model).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    pub fn fail_link(&mut self, edge: EdgeId) -> Vec<PlanId> {
        let (u, v) = self.net.graph().endpoints(edge);
        let key = if u <= v { (u, v) } else { (v, u) };
        let victims: Vec<PlanId> = self
            .live
            .values()
            .filter(|lp| lp.usage.edge_channels.iter().any(|&(pair, _)| pair == key))
            .map(|lp| lp.id)
            .collect();
        for &id in &victims {
            self.depart(id).expect("victim was live");
        }
        victims
    }

    /// Audits the ledger against the live plan set: every charged qubit
    /// and channel must be pinned by exactly one live plan.
    ///
    /// # Errors
    ///
    /// A description of the first imbalance.
    pub fn audit(&self) -> Result<(), String> {
        self.ledger
            .audit(&self.net, self.live.values().map(|lp| &lp.usage))
    }

    /// A comparable snapshot of the full state.
    #[must_use]
    pub fn digest(&self) -> StateDigest {
        StateDigest {
            epoch: self.epoch,
            next_plan: self.next_plan,
            ledger: self.ledger.clone(),
            live: self
                .live
                .values()
                .map(|lp| (lp.id, lp.usage.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::NetworkParams;
    use fusion_topology::TopologyConfig;

    fn world() -> (ServiceState, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 4,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(7);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        (ServiceState::new(net, RoutingConfig::n_fusion()), demands)
    }

    #[test]
    fn admit_then_depart_restores_everything() {
        let (mut state, demands) = world();
        let pristine = state.digest();
        assert!(state.ledger().is_pristine());
        let d = demands[0];
        let AdmitOutcome::Accepted { id, rate } = state.admit(d.source, d.dest) else {
            panic!("default small world must route its first demand");
        };
        assert!(rate > 0.0);
        assert_eq!(state.live_count(), 1);
        assert_eq!(state.epoch(), 1);
        state.audit().unwrap();
        let lp = state.depart(id).unwrap();
        assert_eq!(lp.id, id);
        assert!(state.ledger().is_pristine());
        assert_eq!(state.epoch(), 2);
        // Everything except the consumed id and epochs is restored.
        let after = state.digest();
        assert_eq!(after.ledger, pristine.ledger);
        assert!(after.live.is_empty());
    }

    #[test]
    fn depart_unknown_is_a_no_op() {
        let (mut state, _) = world();
        let before = state.digest();
        assert!(state.depart(PlanId(42)).is_none());
        assert_eq!(state.digest(), before);
    }

    #[test]
    fn admissions_contend_for_capacity() {
        let (mut state, demands) = world();
        // Admitting the same user pair repeatedly must eventually exhaust
        // the residual capacity around the pair and get rejected, without
        // ever panicking or overdrawing.
        let d = demands[0];
        let mut accepted = 0;
        for _ in 0..200 {
            match state.admit(d.source, d.dest) {
                AdmitOutcome::Accepted { .. } => accepted += 1,
                AdmitOutcome::Rejected(_) => break,
            }
            state.audit().unwrap();
        }
        assert!(accepted > 0, "first admission must succeed");
        assert!(
            accepted < 200,
            "finite switch capacity cannot serve 200 copies"
        );
    }

    #[test]
    fn rejection_is_bit_exact_no_op() {
        let (mut state, demands) = world();
        let d = demands[0];
        // Saturate the pair.
        while let AdmitOutcome::Accepted { .. } = state.admit(d.source, d.dest) {}
        let before = state.digest();
        assert_eq!(
            state.admit(d.source, d.dest),
            AdmitOutcome::Rejected(RejectReason::NoRoute)
        );
        assert_eq!(state.digest(), before);
    }

    #[test]
    fn fail_link_evicts_crossing_plans_and_returns_capacity() {
        let (mut state, demands) = world();
        let d = demands[0];
        let AdmitOutcome::Accepted { id, .. } = state.admit(d.source, d.dest) else {
            panic!("first admission must succeed");
        };
        let lp = state.get(id).unwrap().clone();
        let &((u, v), _) = lp.usage.edge_channels.first().expect("plan uses edges");
        let edge = state.network().graph().find_edge(u, v).unwrap();
        let evicted = state.fail_link(edge);
        assert_eq!(evicted, vec![id]);
        assert!(state.ledger().is_pristine(), "capacity fully returned");
        state.audit().unwrap();
        // A second cut on the same link evicts nothing.
        assert!(state.fail_link(edge).is_empty());
    }
}
