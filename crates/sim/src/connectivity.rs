//! Fast per-round outcome sampling for routed demands.
//!
//! Under n-fusion a demanded state is established exactly when its source
//! and destination users are connected in the random subgraph where each
//! routed channel is up (`1-(1-p)^w`) and each participating switch's GHZ
//! fusion succeeded (`q`) — a failed fusion loses every link the switch
//! held for the state (§III-C). Under classic swapping each accepted path
//! is a bundle of pre-committed lanes; the state is established when some
//! lane survives every hop and every intermediate BSM.

use std::collections::HashMap;

use fusion_core::{DemandPlan, QuantumNetwork, SwapMode};
use fusion_graph::{DisjointSets, NodeId};
use rand::Rng;

/// Samples one protocol round for a demand routed under `mode`.
/// Returns `true` when the demanded state is established.
pub fn sample_round(
    net: &QuantumNetwork,
    plan: &DemandPlan,
    mode: SwapMode,
    rng: &mut impl Rng,
) -> bool {
    match mode {
        SwapMode::NFusion => sample_flow_round(net, plan, rng),
        SwapMode::Classic => sample_classic_round(net, plan, rng),
    }
}

/// One n-fusion round: percolation over the flow-like graph.
pub fn sample_flow_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> bool {
    let flow = &plan.flow;
    if flow.is_empty() {
        return false;
    }
    let nodes = flow.nodes();
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Sample switch fusions once per state per switch.
    let q = net.swap_success();
    let switch_up: Vec<bool> = nodes
        .iter()
        .map(|&n| !net.is_switch(n) || rng.gen_bool(q))
        .collect();

    let mut sets = DisjointSets::new(nodes.len());
    for (u, v, w) in flow.edges() {
        let Some((edge, _)) = net.hop(u, v) else {
            continue;
        };
        let (ui, vi) = (index[&u], index[&v]);
        if !switch_up[ui] || !switch_up[vi] {
            continue;
        }
        if rng.gen_bool(net.channel_success(edge, w)) {
            sets.union(ui, vi);
        }
    }
    let (Some(&s), Some(&d)) = (index.get(&flow.source()), index.get(&flow.sink())) else {
        return false;
    };
    sets.same_set(s, d)
}

/// One classic-swapping round: each accepted path carries the state on a
/// single pre-committed lane — one link per hop, one BSM per intermediate
/// switch (the paper's classic model, see
/// `fusion_core::metrics::classic`).
pub fn sample_classic_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> bool {
    let q = net.swap_success();
    'path: for wp in &plan.paths {
        let hops: Option<Vec<f64>> = wp
            .hops()
            .map(|(u, v, _)| net.hop(u, v).map(|(_, p)| p))
            .collect();
        let Some(hops) = hops else { continue };
        // The lane's link on every hop must herald successfully.
        for &p in &hops {
            if !rng.gen_bool(p) {
                continue 'path;
            }
        }
        // Every intermediate BSM must succeed.
        for _ in 0..hops.len().saturating_sub(1) {
            if !rng.gen_bool(q) {
                continue 'path;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::{metrics, Demand, DemandId, WidthedPath};
    use fusion_graph::Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_plan(p: f64, q: f64, width: u32) -> (QuantumNetwork, DemandPlan) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 100);
        let v2 = b.switch(2.0, 0.0, 100);
        let d = b.user(3.0, 0.0);
        b.link(s, v1).unwrap();
        b.link(v1, v2).unwrap();
        b.link(v2, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v1, v2, d]);
        plan.flow.add_path(&path, width);
        plan.paths.push(WidthedPath::uniform(path, width));
        (net, plan)
    }

    fn estimate(
        net: &QuantumNetwork,
        plan: &DemandPlan,
        mode: SwapMode,
        rounds: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        for _ in 0..rounds {
            if sample_round(net, plan, mode, &mut rng) {
                hits += 1;
            }
        }
        hits as f64 / rounds as f64
    }

    #[test]
    fn nfusion_sampling_matches_eq1_on_paths() {
        let (net, plan) = chain_plan(0.5, 0.8, 2);
        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        let measured = estimate(&net, &plan, SwapMode::NFusion, 40_000, 7);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn nfusion_sampling_matches_eq1_on_branching_flow() {
        // Two disjoint branches: series-parallel, Eq. 1 is exact.
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 1.0, 100);
        let v2 = b.switch(1.0, -1.0, 100);
        let d = b.user(2.0, 0.0);
        for (u, v) in [(s, v1), (v1, d), (s, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.4));
        net.set_swap_success(0.7);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        plan.flow.add_path(&Path::new(vec![s, v1, d]), 1);
        plan.flow.add_path(&Path::new(vec![s, v2, d]), 2);
        plan.paths
            .push(WidthedPath::uniform(Path::new(vec![s, v1, d]), 1));

        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        let measured = estimate(&net, &plan, SwapMode::NFusion, 40_000, 11);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn classic_sampling_matches_single_lane_formula() {
        let (net, plan) = chain_plan(0.5, 0.8, 2);
        let analytic = plan.rate(&net, SwapMode::Classic);
        let measured = estimate(&net, &plan, SwapMode::Classic, 40_000, 13);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn empty_plans_never_succeed() {
        let (net, mut plan) = chain_plan(0.9, 0.9, 1);
        plan.paths.clear();
        plan.flow = fusion_core::FlowGraph::new(plan.demand.source, plan.demand.dest);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!sample_round(&net, &plan, SwapMode::NFusion, &mut rng));
        assert!(!sample_round(&net, &plan, SwapMode::Classic, &mut rng));
    }

    #[test]
    fn perfect_network_always_succeeds() {
        let (net, plan) = {
            let (mut net, plan) = chain_plan(1.0, 1.0, 1);
            net.set_uniform_link_success(Some(1.0));
            (net, plan)
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(sample_round(&net, &plan, SwapMode::NFusion, &mut rng));
            assert!(sample_round(&net, &plan, SwapMode::Classic, &mut rng));
        }
    }
}
