//! The online-service CLI: generate a trace and replay it against a
//! preset world.
//!
//! ```text
//! serve replay --preset NAME [--instance I] [--events N] [--seed S]
//!              [--arrival-rate F] [--mean-holding F] [--link-down-rate F]
//!              [--user-pool N] [--strategy incremental|from-scratch]
//!              [--stats] [--mc-rounds N] [--audit-every N] [--log FILE]
//!     Builds the preset's network, generates a seeded trace, replays it,
//!     and prints throughput (events/sec), admission statistics, and the
//!     log fingerprint. Same preset + flags => byte-identical log, and
//!     the log is strategy-independent: --strategy only changes speed.
//!     --user-pool restricts demands to the first N users (recurring
//!     demands, the cache's regime); --stats prints the candidate-cache
//!     hit/invalidation counters after an incremental replay.
//!
//! serve presets
//!     Lists the preset names.
//! ```
//!
//! The EXPERIMENTS.md replay-throughput entries are produced with:
//! `cargo run --release -p fusion-serve --bin serve -- replay --preset large-1k --events 100000 --user-pool 8 --stats --strategy incremental`
//! (and `--strategy from-scratch` for the baseline).

use std::path::PathBuf;
use std::time::Instant;

use fusion_core::algorithms::AdmitStrategy;
use fusion_serve::{
    generate, presets, replay, resolve_preset, ReplayOptions, ServiceState, TraceConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") => run_replay(&args[1..]),
        Some("presets") => {
            for p in presets() {
                println!(
                    "{}  ({} switches, {} user pairs, h={})",
                    p.name, p.topology.num_switches, p.topology.num_user_pairs, p.h
                );
            }
        }
        Some("--help" | "-h") | None => {
            println!("usage: serve replay --preset NAME [--instance I] [--events N] [--seed S]");
            println!(
                "                    [--arrival-rate F] [--mean-holding F] [--link-down-rate F]"
            );
            println!("                    [--user-pool N] [--strategy incremental|from-scratch]");
            println!(
                "                    [--stats] [--mc-rounds N] [--audit-every N] [--log FILE]"
            );
            println!("       serve presets");
        }
        Some(other) => die(&format!(
            "unknown subcommand {other}; try replay or presets"
        )),
    }
}

fn run_replay(args: &[String]) {
    let mut preset_name = String::from("quick");
    let mut instance = 0usize;
    let mut trace_config = TraceConfig::default();
    let mut options = ReplayOptions::default();
    let mut log_path: Option<PathBuf> = None;
    let mut strategy: Option<AdmitStrategy> = None;
    let mut print_stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => preset_name = next_str(&mut it, "--preset"),
            "--instance" => instance = next_parsed(&mut it, "--instance"),
            "--events" => trace_config.events = next_parsed(&mut it, "--events"),
            "--seed" => trace_config.seed = next_parsed(&mut it, "--seed"),
            "--arrival-rate" => trace_config.arrival_rate = next_parsed(&mut it, "--arrival-rate"),
            "--mean-holding" => trace_config.mean_holding = next_parsed(&mut it, "--mean-holding"),
            "--link-down-rate" => {
                trace_config.link_down_rate = next_parsed(&mut it, "--link-down-rate");
            }
            "--user-pool" => trace_config.user_pool = next_parsed(&mut it, "--user-pool"),
            "--strategy" => {
                strategy = Some(match next_str(&mut it, "--strategy").as_str() {
                    "incremental" => AdmitStrategy::Incremental,
                    "from-scratch" => AdmitStrategy::FromScratch,
                    other => die(&format!(
                        "--strategy must be incremental or from-scratch, got {other}"
                    )),
                });
            }
            "--stats" => print_stats = true,
            "--mc-rounds" => options.mc_rounds = next_parsed(&mut it, "--mc-rounds"),
            "--audit-every" => options.audit_every = next_parsed(&mut it, "--audit-every"),
            "--log" => log_path = Some(PathBuf::from(next_str(&mut it, "--log"))),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let Some(preset) = resolve_preset(&preset_name) else {
        die(&format!(
            "unknown preset {preset_name}; available: {}",
            presets()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(" ")
        ));
    };

    eprintln!("building {} instance {instance}...", preset.name);
    let net = preset.network_instance(instance);
    eprintln!(
        "  {} nodes, {} edges",
        net.node_count(),
        net.graph().edge_count()
    );
    let mut routing = preset.routing_config();
    if let Some(s) = strategy {
        routing.admit_strategy = s;
    }
    let mut state = ServiceState::new(net, routing);
    let trace = generate(state.network(), &trace_config);
    eprintln!(
        "replaying {} events (seed {:#x})...",
        trace.events.len(),
        trace_config.seed
    );

    let started = Instant::now();
    let report = replay(&mut state, &trace, &options);
    let elapsed = started.elapsed();
    state
        .audit()
        .unwrap_or_else(|e| die(&format!("final audit failed: {e}")));

    let stats = &report.stats;
    let secs = elapsed.as_secs_f64();
    println!("preset           {}", preset.name);
    println!("events           {}", stats.events);
    println!("elapsed          {secs:.3} s");
    println!("events/sec       {:.1}", stats.events as f64 / secs);
    println!(
        "arrivals         {} ({} admitted, {} no-route, {} saturated)",
        stats.arrivals, stats.admitted, stats.rejected_no_route, stats.rejected_saturated
    );
    println!("admit fraction   {:.4}", stats.admit_fraction());
    println!(
        "departures       {} ({} no-ops)",
        stats.departures, stats.depart_noops
    );
    println!(
        "link-downs       {} ({} plans evicted)",
        stats.link_downs, stats.evicted
    );
    println!("final live       {}", stats.final_live);
    println!("final epoch      {}", stats.final_epoch);
    println!("rate sum         {:.6}", stats.admitted_rate_sum);
    println!("log fingerprint  {:016x}", report.fingerprint());

    if print_stats {
        match state.cache_stats() {
            Some(c) => {
                println!("cache admissions {}", c.admissions);
                println!(
                    "cache hits       {} full, {} partial, {} miss",
                    c.full_hits, c.partial_hits, c.misses
                );
                println!(
                    "widths           {} reused, {} recomputed ({:.4} hit fraction)",
                    c.widths_reused,
                    c.widths_recomputed,
                    c.width_hit_fraction()
                );
                println!(
                    "invalidations    {} by node, {} by edge, {} entries evicted",
                    c.invalidated_by_node, c.invalidated_by_edge, c.entries_evicted
                );
            }
            None => println!("cache            (from-scratch strategy: no cache)"),
        }
    }

    if let Some(path) = log_path {
        let mut text = report.log.join("\n");
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            die(&format!("could not write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }
}

fn next_str(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next()
        .cloned()
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn next_parsed<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    let raw = next_str(it, flag);
    raw.parse()
        .unwrap_or_else(|_| die(&format!("{flag} could not parse {raw}")))
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}
