//! Tier-1 smoke coverage of the replay harness: determinism of the event
//! log on a preset world, and the link-failure path end to end (plans
//! crossing a cut fiber are evicted and their capacity returned).

use fusion_serve::{
    generate, replay, resolve_preset, ReplayOptions, ServiceState, TraceConfig, TraceEventKind,
};

fn quick_state() -> ServiceState {
    let preset = resolve_preset("quick").expect("quick preset exists");
    ServiceState::new(preset.network_instance(0), preset.routing_config())
}

/// Same preset, same trace seed => byte-identical logs and identical
/// final state. This is the cheap CI stand-in for the 100k-event
/// determinism run documented in EXPERIMENTS.md.
#[test]
fn smoke_replay_is_byte_deterministic() {
    let config = TraceConfig {
        events: 300,
        link_down_rate: 0.03,
        ..TraceConfig::default()
    };
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut state = quick_state();
        let trace = generate(state.network(), &config);
        let report = replay(
            &mut state,
            &trace,
            &ReplayOptions {
                audit_every: 50,
                ..ReplayOptions::default()
            },
        );
        state.audit().expect("books balance after replay");
        runs.push((report, state.digest()));
    }
    assert_eq!(
        runs[0].0.log, runs[1].0.log,
        "logs must match byte for byte"
    );
    assert_eq!(runs[0].0.fingerprint(), runs[1].0.fingerprint());
    assert_eq!(runs[0].0.stats, runs[1].0.stats);
    assert_eq!(runs[0].1, runs[1].1, "final states must match");
    assert!(runs[0].0.stats.admitted > 0, "{:?}", runs[0].0.stats);
}

/// A trace with mid-trace link-down events: every plan crossing a failed
/// link is evicted with its capacity returned — after all live sessions
/// also depart, the ledger is back to pristine.
#[test]
fn link_failures_evict_and_return_capacity() {
    let mut state = quick_state();
    let trace = generate(
        state.network(),
        &TraceConfig {
            events: 400,
            mean_holding: 60.0, // long sessions: cuts hit live plans
            link_down_rate: 0.15,
            ..TraceConfig::default()
        },
    );
    let report = replay(
        &mut state,
        &trace,
        &ReplayOptions {
            audit_every: 1, // balance the books after every single event
            ..ReplayOptions::default()
        },
    );
    let stats = &report.stats;
    assert!(stats.link_downs > 0, "trace must contain link-downs");
    assert!(
        stats.evicted > 0,
        "long-held sessions under heavy cutting must lose plans: {stats:?}"
    );
    // Every eviction is logged against the link-down that caused it.
    let evicted_in_log: usize = report
        .log
        .iter()
        .filter(|l| l.contains("linkdown"))
        .map(|l| {
            let inside = l.split('[').nth(1).unwrap().trim_end_matches(']');
            if inside.is_empty() {
                0
            } else {
                inside.split(',').count()
            }
        })
        .sum();
    assert_eq!(evicted_in_log, stats.evicted);
    // No evicted plan is still charged: evictions returned capacity, and
    // after the remaining live plans depart, nothing is left behind.
    state.audit().expect("books balance after replay");
    let live: Vec<_> = state.live_plans().map(|lp| lp.id).collect();
    assert_eq!(live.len(), stats.final_live);
    for id in live {
        state.depart(id).expect("live plan departs");
    }
    assert!(
        state.ledger().is_pristine(),
        "all capacity must return once every session ends"
    );
}

/// The trace generator puts real link-down events on real edges of the
/// preset world (promoted `fusion_sim::failure::sample_link_outage`).
#[test]
fn link_down_events_reference_real_edges() {
    let state = quick_state();
    let trace = generate(
        state.network(),
        &TraceConfig {
            events: 200,
            link_down_rate: 0.2,
            ..TraceConfig::default()
        },
    );
    let edge_count = state.network().graph().edge_count();
    let downs: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::LinkDown { edge } => Some(edge),
            _ => None,
        })
        .collect();
    assert!(!downs.is_empty());
    for edge in downs {
        assert!(edge.index() < edge_count, "outage on a phantom edge");
    }
}
