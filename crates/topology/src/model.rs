use fusion_graph::{NodeId, UnGraph};
use serde::{Deserialize, Serialize};

use crate::geometry::Position;

/// Whether a node is a quantum switch or a quantum-user (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Relay processor with communication qubits only.
    Switch,
    /// End processor that demands shared quantum states.
    User,
}

/// Node payload: deployment position plus role.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Where the processor sits in the deployment area.
    pub position: Position,
    /// Switch or user.
    pub role: Role,
}

impl Site {
    /// Creates a switch site.
    #[must_use]
    pub fn switch(position: Position) -> Self {
        Site {
            position,
            role: Role::Switch,
        }
    }

    /// Creates a user site.
    #[must_use]
    pub fn user(position: Position) -> Self {
        Site {
            position,
            role: Role::User,
        }
    }

    /// `true` when this is a user site.
    #[must_use]
    pub fn is_user(&self) -> bool {
        self.role == Role::User
    }
}

/// Edge payload: the optical-fiber span between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Euclidean length of the fiber in network units.
    pub length: f64,
}

impl Link {
    /// Creates a link of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is negative or not finite.
    #[must_use]
    pub fn new(length: f64) -> Self {
        assert!(
            length.is_finite() && length >= 0.0,
            "invalid link length {length}"
        );
        Link { length }
    }
}

/// A generated quantum-network topology: the site graph plus the demand
/// list (one quantum state per user pair).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Sites (switches first, then users) connected by fiber links.
    pub graph: UnGraph<Site, Link>,
    /// Source/destination user pairs, one per demanded quantum state.
    pub demands: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// Iterates over switch node ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .node_ids()
            .filter(|&n| self.graph.node(n).role == Role::Switch)
    }

    /// Iterates over user node ids.
    pub fn user_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .node_ids()
            .filter(|&n| self.graph.node(n).role == Role::User)
    }

    /// Number of switches.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switch_ids().count()
    }

    /// Average degree over switch nodes only.
    #[must_use]
    pub fn average_switch_degree(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for s in self.switch_ids() {
            total += self.graph.degree(s);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_constructors() {
        let p = Position::new(1.0, 2.0);
        assert_eq!(Site::switch(p).role, Role::Switch);
        assert!(Site::user(p).is_user());
        assert!(!Site::switch(p).is_user());
    }

    #[test]
    fn link_validates_length() {
        assert_eq!(Link::new(3.5).length, 3.5);
    }

    #[test]
    #[should_panic(expected = "invalid link length")]
    fn link_rejects_negative() {
        let _ = Link::new(-1.0);
    }

    #[test]
    fn topology_queries() {
        let mut graph = UnGraph::new();
        let s0 = graph.add_node(Site::switch(Position::new(0.0, 0.0)));
        let s1 = graph.add_node(Site::switch(Position::new(1.0, 0.0)));
        let u0 = graph.add_node(Site::user(Position::new(0.0, 1.0)));
        let u1 = graph.add_node(Site::user(Position::new(1.0, 1.0)));
        graph.add_edge(s0, s1, Link::new(1.0));
        graph.add_edge(u0, s0, Link::new(1.0));
        graph.add_edge(u1, s1, Link::new(1.0));
        let topo = Topology {
            graph,
            demands: vec![(u0, u1)],
        };
        assert_eq!(topo.switch_count(), 2);
        assert_eq!(topo.user_ids().collect::<Vec<_>>(), vec![u0, u1]);
        assert!((topo.average_switch_degree() - 2.0).abs() < 1e-12);
    }
}
