//! Trace replay: drive a [`ServiceState`] through a generated event
//! sequence, producing a byte-stable log and aggregate statistics.
//!
//! The log is the determinism artifact: every line is fully determined by
//! `(network, routing config, trace)`, with floating-point rates rendered
//! as their IEEE-754 bit patterns so two replays can be compared
//! byte-for-byte (see [`ReplayReport::fingerprint`]).
//!
//! The admission strategy is deliberately *not* part of that artifact:
//! `AdmitStrategy::Incremental` (the candidate cache) and
//! `AdmitStrategy::FromScratch` must produce the same log and the same
//! [`ReplayStats`] on every trace — only wall-clock differs. Cache
//! behaviour is observable separately through the `serve.cache.*`
//! counters in the state's telemetry registry
//! ([`ServiceState::registry`](crate::ServiceState::registry)).
//!
//! When the state carries an enabled registry, the replay loop also
//! folds the final [`ReplayStats`] into `serve.replay.*` counters (one
//! bulk add per counter, after the event loop) and wraps the loop in a
//! `serve.replay` wall-time span — the span stays in the timing plane
//! and never reaches a snapshot.

use std::collections::BTreeMap;

use fusion_sim::{estimate_demand_plan_counted, McCounters};
use fusion_telemetry::Registry;

use crate::state::{AdmitOutcome, PlanId, RejectReason, ServiceState};
use crate::trace::{Trace, TraceEventKind};

/// Replay-time knobs (all orthogonal to the trace itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Monte-Carlo rounds per admitted plan; `0` skips simulation and
    /// logs only the analytic rate.
    pub mc_rounds: usize,
    /// Base seed of the per-admission Monte-Carlo estimates. Each
    /// admission derives its own stream from this and its plan id, so
    /// estimates are independent of interleaving.
    pub mc_seed: u64,
    /// Audit the ledger against the live set every this many events;
    /// `0` disables auditing.
    pub audit_every: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            mc_rounds: 0,
            mc_seed: 0x5eed,
            audit_every: 0,
        }
    }
}

/// Aggregate counters of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// Total events processed.
    pub events: usize,
    /// Arrival events.
    pub arrivals: usize,
    /// Arrivals admitted.
    pub admitted: usize,
    /// Arrivals rejected because no route fit the residual capacity.
    pub rejected_no_route: usize,
    /// Arrivals rejected without routing (no free switch qubit at all).
    pub rejected_saturated: usize,
    /// Departure events that tore a live plan down.
    pub departures: usize,
    /// Departure events whose arrival was rejected or already evicted.
    pub depart_noops: usize,
    /// Link-down events.
    pub link_downs: usize,
    /// Plans evicted by link-downs.
    pub evicted: usize,
    /// Live plans at the end of the replay.
    pub final_live: usize,
    /// State epoch at the end of the replay.
    pub final_epoch: u64,
    /// Sum of analytic rates over admitted plans (throughput proxy).
    pub admitted_rate_sum: f64,
}

impl ReplayStats {
    /// Fraction of arrivals admitted, in `[0, 1]`.
    #[must_use]
    pub fn admit_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.admitted as f64 / self.arrivals as f64
        }
    }
}

/// The outcome of a replay: the byte-stable log and the counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// One line per event, byte-stable for a fixed
    /// `(network, config, trace)`.
    pub log: Vec<String>,
    /// Aggregate counters.
    pub stats: ReplayStats,
}

impl ReplayReport {
    /// FNV-1a over the log lines — a cheap order-sensitive digest for
    /// determinism checks and for `serve replay` output.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.log {
            for &b in line.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(b'\n');
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Replays `trace` against `state`, mutating it in place.
///
/// Arrivals call [`ServiceState::admit`]; departures resolve their arrival
/// index to a plan id (no-ops when the arrival was rejected or evicted);
/// link-downs call [`ServiceState::fail_link`]. With `mc_rounds > 0`,
/// every admitted plan is also Monte-Carlo estimated with a per-plan seed
/// so the estimate does not depend on what else is in flight.
///
/// # Panics
///
/// Panics if the ledger audit fails (`audit_every > 0`) — that is a bug
/// in the engine, not in the trace.
pub fn replay(state: &mut ServiceState, trace: &Trace, options: &ReplayOptions) -> ReplayReport {
    let registry = state.registry().clone();
    let mc_counters = McCounters::from_registry(&registry);
    let _span = registry.span("serve.replay");
    let mut log = Vec::with_capacity(trace.events.len());
    let mut stats = ReplayStats::default();
    // arrival index -> live plan id (removed again on departure/eviction).
    let mut by_arrival: BTreeMap<usize, PlanId> = BTreeMap::new();
    let mut arrival_of: BTreeMap<PlanId, usize> = BTreeMap::new();

    for (i, event) in trace.events.iter().enumerate() {
        stats.events += 1;
        match event.kind {
            TraceEventKind::Arrival {
                arrival,
                source,
                dest,
            } => {
                stats.arrivals += 1;
                match state.admit(source, dest) {
                    AdmitOutcome::Accepted { id, rate } => {
                        stats.admitted += 1;
                        stats.admitted_rate_sum += rate;
                        by_arrival.insert(arrival, id);
                        arrival_of.insert(id, arrival);
                        let mut line = format!(
                            "{i} arrive {source}->{dest} accept {id} rate={:016x}",
                            rate.to_bits()
                        );
                        if options.mc_rounds > 0 {
                            let plan = &state.get(id).expect("just admitted").plan;
                            let est = estimate_demand_plan_counted(
                                state.network(),
                                plan,
                                state.config().mode,
                                options.mc_rounds,
                                options.mc_seed.wrapping_add(id.index()),
                                &mc_counters,
                            );
                            line.push_str(&format!(" mc={:016x}", est.mean.to_bits()));
                        }
                        log.push(line);
                    }
                    AdmitOutcome::Rejected(reason) => {
                        let tag = match reason {
                            RejectReason::NoRoute => {
                                stats.rejected_no_route += 1;
                                "no-route"
                            }
                            RejectReason::Saturated => {
                                stats.rejected_saturated += 1;
                                "saturated"
                            }
                        };
                        log.push(format!("{i} arrive {source}->{dest} reject {tag}"));
                    }
                }
            }
            TraceEventKind::Departure { arrival } => {
                if let Some(id) = by_arrival.remove(&arrival) {
                    arrival_of.remove(&id);
                    state.depart(id).expect("arrival map tracks live plans");
                    stats.departures += 1;
                    log.push(format!("{i} depart arrival={arrival} {id}"));
                } else {
                    stats.depart_noops += 1;
                    log.push(format!("{i} depart arrival={arrival} noop"));
                }
            }
            TraceEventKind::LinkDown { edge } => {
                stats.link_downs += 1;
                let victims = state.fail_link(edge);
                stats.evicted += victims.len();
                for id in &victims {
                    let arrival = arrival_of.remove(id).expect("victim was tracked");
                    by_arrival.remove(&arrival);
                }
                let ids: Vec<String> = victims.iter().map(PlanId::to_string).collect();
                log.push(format!(
                    "{i} linkdown e{} evict [{}]",
                    edge.index(),
                    ids.join(",")
                ));
            }
        }
        if options.audit_every > 0 && (i + 1) % options.audit_every == 0 {
            state.audit().expect("ledger out of balance mid-replay");
        }
    }

    stats.final_live = state.live_count();
    stats.final_epoch = state.epoch();
    record_replay_counters(&registry, &stats);
    ReplayReport { log, stats }
}

/// Folds one replay's aggregate stats into the `serve.replay.*` counters:
/// a handful of bulk adds, so the per-event path pays nothing. Gauges
/// (`final_live`, `final_epoch`, `admitted_rate_sum`) stay out — counters
/// are monotonic event counts and those are end-of-replay state.
fn record_replay_counters(registry: &Registry, stats: &ReplayStats) {
    if !registry.is_enabled() {
        return;
    }
    let add = |name: &str, value: usize| registry.counter(name).add(value as u64);
    add("serve.replay.events", stats.events);
    add("serve.replay.arrivals", stats.arrivals);
    add("serve.replay.admitted", stats.admitted);
    add("serve.replay.rejected_no_route", stats.rejected_no_route);
    add("serve.replay.rejected_saturated", stats.rejected_saturated);
    add("serve.replay.departures", stats.departures);
    add("serve.replay.depart_noops", stats.depart_noops);
    add("serve.replay.link_downs", stats.link_downs);
    add("serve.replay.evicted", stats.evicted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServiceState;
    use crate::trace::{generate, TraceConfig};
    use fusion_core::algorithms::RoutingConfig;
    use fusion_core::{NetworkParams, QuantumNetwork};
    use fusion_topology::TopologyConfig;

    fn state() -> ServiceState {
        let topo = TopologyConfig {
            num_switches: 20,
            num_user_pairs: 4,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(3);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        ServiceState::new(net, RoutingConfig::n_fusion())
    }

    #[test]
    fn replay_is_deterministic_and_balanced() {
        let config = TraceConfig {
            events: 400,
            link_down_rate: 0.05,
            ..TraceConfig::default()
        };
        let mut s1 = state();
        let trace = generate(s1.network(), &config);
        let r1 = replay(
            &mut s1,
            &trace,
            &ReplayOptions {
                audit_every: 7,
                ..ReplayOptions::default()
            },
        );
        let mut s2 = state();
        let r2 = replay(
            &mut s2,
            &trace,
            &ReplayOptions {
                audit_every: 7,
                ..ReplayOptions::default()
            },
        );
        assert_eq!(r1, r2, "same trace must replay identically");
        assert_eq!(r1.fingerprint(), r2.fingerprint());
        assert_eq!(s1.digest(), s2.digest());
        assert_eq!(r1.log.len(), 400);
        assert!(r1.stats.admitted > 0, "{:?}", r1.stats);
        assert_eq!(
            r1.stats.admitted,
            r1.stats.departures + r1.stats.evicted + r1.stats.final_live,
            "every admitted plan departs, is evicted, or stays live: {:?}",
            r1.stats
        );
        s1.audit().unwrap();
    }

    #[test]
    fn mc_rounds_change_log_but_not_state() {
        let config = TraceConfig {
            events: 120,
            ..TraceConfig::default()
        };
        let mut plain = state();
        let trace = generate(plain.network(), &config);
        let r_plain = replay(&mut plain, &trace, &ReplayOptions::default());
        let mut mc = state();
        let r_mc = replay(
            &mut mc,
            &trace,
            &ReplayOptions {
                mc_rounds: 16,
                ..ReplayOptions::default()
            },
        );
        assert_eq!(plain.digest(), mc.digest(), "MC is observational only");
        assert_eq!(r_plain.stats, r_mc.stats);
        assert_ne!(r_plain.fingerprint(), r_mc.fingerprint());
    }
}
