//! Seeded deterministic trace generation: Poisson arrivals, exponential
//! holding times, optional Poisson link-down events.
//!
//! A [`Trace`] is generated up front from a [`TraceConfig`] and a network
//! (which supplies the user population and link set), so the same
//! `(network, config)` pair always yields the same event sequence —
//! byte-identical replay logs are the determinism contract of the serve
//! smoke test and of `serve replay`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fusion_core::QuantumNetwork;
use fusion_graph::{EdgeId, NodeId};
use fusion_sim::failure::sample_link_outage;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Knobs of the trace generator. Rates are per unit of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Total number of events to emit (arrivals + departures + link-downs).
    pub events: usize,
    /// Poisson rate of demand arrivals.
    pub arrival_rate: f64,
    /// Mean of the exponential holding time of an admitted demand.
    pub mean_holding: f64,
    /// Poisson rate of transient link failures; `0.0` disables them.
    pub link_down_rate: f64,
    /// Restrict demands to the first `user_pool` users of the network
    /// (`0` = every user). A small pool makes demands *recur*, which is
    /// the regime the incremental admission cache is built for; the
    /// default of `0` leaves the generator's RNG stream untouched.
    pub user_pool: usize,
    /// Seed of the generator's RNG.
    pub seed: u64,
}

impl TraceConfig {
    /// Checks the knobs for values the generator has no well-defined
    /// deterministic trace for, so callers (the CLI in particular) can
    /// reject them at parse time instead of panicking mid-generation:
    ///
    /// * `arrival_rate` must be finite and positive — a rate of `0`
    ///   never produces an arrival, and the event loop would spin
    ///   forever waiting for one.
    /// * `mean_holding` must be finite and positive — a holding time of
    ///   `0` collapses every session into a same-instant
    ///   arrival/departure pair whose ordering is an accident of the
    ///   event-queue tie-break, not a modeled workload.
    /// * `link_down_rate` must be finite and non-negative (`0` disables
    ///   link failures).
    /// * `user_pool` must not be `1` — a single user cannot form a
    ///   demand pair, and the distinct-destination rejection loop would
    ///   never terminate. `0` means "every user" and pools of two or
    ///   more are checked against the actual population by [`generate`].
    ///
    /// [`generate`] enforces the same rules by panicking, so a validated
    /// config never aborts generation for config-shaped reasons.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(format!(
                "arrival rate must be finite and positive, got {}",
                self.arrival_rate
            ));
        }
        if !(self.mean_holding.is_finite() && self.mean_holding > 0.0) {
            return Err(format!(
                "mean holding time must be finite and positive, got {}",
                self.mean_holding
            ));
        }
        if !(self.link_down_rate.is_finite() && self.link_down_rate >= 0.0) {
            return Err(format!(
                "link-down rate must be finite and non-negative, got {}",
                self.link_down_rate
            ));
        }
        if self.user_pool == 1 {
            return Err("user pool of 1 cannot form demand pairs (use 0 for all users, or >= 2)"
                .to_string());
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: 1_000,
            arrival_rate: 1.0,
            mean_holding: 25.0,
            link_down_rate: 0.0,
            user_pool: 0,
            seed: 0xCAFE,
        }
    }
}

/// One event of a trace. Departures and link-downs refer to earlier
/// arrivals / network edges; the replay layer resolves what (if anything)
/// they affect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// A demand arrives and asks to be admitted.
    Arrival {
        /// Index of this arrival (0-based, dense).
        arrival: usize,
        /// Source user.
        source: NodeId,
        /// Destination user.
        dest: NodeId,
    },
    /// The demand admitted at `arrival` ends its session. A no-op at
    /// replay time if that arrival was rejected or already evicted.
    Departure {
        /// Index of the arrival whose session ends.
        arrival: usize,
    },
    /// A transient fiber cut on `edge`.
    LinkDown {
        /// The failed link.
        edge: EdgeId,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: f64,
    /// What happens.
    pub kind: TraceEventKind,
}

/// A generated event sequence, in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The events, ascending by [`TraceEvent::at`].
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of arrival events in the trace.
    #[must_use]
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Arrival { .. }))
            .count()
    }
}

/// Samples `Exp(rate)` via inversion. `u < 1` so the argument of `ln` is
/// positive; the result is finite and non-negative.
fn exp_sample<R: RngCore>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

/// Generates a trace of exactly `config.events` events over `net`.
///
/// Arrivals form a Poisson process of rate `arrival_rate` between
/// uniformly random *distinct* user pairs (drawn from the first
/// [`TraceConfig::user_pool`] users when that knob is set); each arrival schedules its own
/// departure an `Exp(1/mean_holding)` holding time later; link-downs form
/// an independent Poisson process of rate `link_down_rate` over uniformly
/// random links. Scheduled departures falling beyond the event budget are
/// simply cut off.
///
/// # Panics
///
/// Panics if the config fails [`TraceConfig::validate`], if the network
/// (restricted to the pool) has fewer than two users, or if
/// `link_down_rate > 0` on an edgeless network.
#[must_use]
pub fn generate(net: &QuantumNetwork, config: &TraceConfig) -> Trace {
    if let Err(reason) = config.validate() {
        panic!("invalid trace config: {reason}");
    }
    let mut users: Vec<NodeId> = net
        .graph()
        .node_ids()
        .filter(|&v| !net.is_switch(v))
        .collect();
    if config.user_pool > 0 {
        users.truncate(config.user_pool);
    }
    assert!(users.len() >= 2, "need at least two users to form demands");
    let holding_rate = 1.0 / config.mean_holding;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.events);
    let mut next_arrival = exp_sample(&mut rng, config.arrival_rate);
    let mut next_link_down = if config.link_down_rate > 0.0 {
        exp_sample(&mut rng, config.link_down_rate)
    } else {
        f64::INFINITY
    };
    // Pending departures ordered by time. Holding times are positive and
    // finite, so `f64::to_bits` is order-preserving and gives us a total
    // order without an Ord wrapper.
    let mut departures: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut arrivals = 0usize;

    while events.len() < config.events {
        let t_dep = departures
            .peek()
            .map_or(f64::INFINITY, |Reverse((bits, _))| f64::from_bits(*bits));
        if t_dep <= next_arrival && t_dep <= next_link_down {
            let Reverse((bits, arrival)) = departures.pop().expect("peeked");
            events.push(TraceEvent {
                at: f64::from_bits(bits),
                kind: TraceEventKind::Departure { arrival },
            });
        } else if next_arrival <= next_link_down {
            let at = next_arrival;
            let source = users[rng.gen_range(0..users.len())];
            let dest = loop {
                let d = users[rng.gen_range(0..users.len())];
                if d != source {
                    break d;
                }
            };
            let holding = exp_sample(&mut rng, holding_rate);
            departures.push(Reverse(((at + holding).to_bits(), arrivals)));
            events.push(TraceEvent {
                at,
                kind: TraceEventKind::Arrival {
                    arrival: arrivals,
                    source,
                    dest,
                },
            });
            arrivals += 1;
            next_arrival += exp_sample(&mut rng, config.arrival_rate);
        } else {
            let edge = sample_link_outage(net, &mut rng)
                .expect("link-down rate set on an edgeless network");
            events.push(TraceEvent {
                at: next_link_down,
                kind: TraceEventKind::LinkDown { edge },
            });
            next_link_down += exp_sample(&mut rng, config.link_down_rate);
        }
    }

    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::NetworkParams;
    use fusion_topology::TopologyConfig;

    fn net() -> QuantumNetwork {
        let topo = TopologyConfig {
            num_switches: 20,
            num_user_pairs: 4,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(3);
        QuantumNetwork::from_topology(&topo, &NetworkParams::default())
    }

    #[test]
    fn trace_is_deterministic_and_time_ordered() {
        let net = net();
        let config = TraceConfig {
            events: 500,
            link_down_rate: 0.05,
            ..TraceConfig::default()
        };
        let a = generate(&net, &config);
        let b = generate(&net, &config);
        assert_eq!(a, b, "same seed must yield the same trace");
        assert_eq!(a.events.len(), 500);
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at, "events out of order");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let net = net();
        let a = generate(&net, &TraceConfig::default());
        let b = generate(
            &net,
            &TraceConfig {
                seed: 0xBEEF,
                ..TraceConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn departures_follow_their_arrivals() {
        let net = net();
        let trace = generate(
            &net,
            &TraceConfig {
                events: 2_000,
                link_down_rate: 0.02,
                ..TraceConfig::default()
            },
        );
        let mut seen_arrivals = vec![false; trace.events.len()];
        let mut departed = vec![false; trace.events.len()];
        let mut kinds = [0usize; 3];
        for e in &trace.events {
            match e.kind {
                TraceEventKind::Arrival {
                    arrival,
                    source,
                    dest,
                } => {
                    assert_ne!(source, dest);
                    seen_arrivals[arrival] = true;
                    kinds[0] += 1;
                }
                TraceEventKind::Departure { arrival } => {
                    assert!(seen_arrivals[arrival], "departure before its arrival");
                    assert!(!departed[arrival], "double departure in trace");
                    departed[arrival] = true;
                    kinds[1] += 1;
                }
                TraceEventKind::LinkDown { .. } => kinds[2] += 1,
            }
        }
        assert!(kinds[0] > 0 && kinds[1] > 0 && kinds[2] > 0, "{kinds:?}");
        assert!(kinds[1] <= kinds[0], "cannot depart more than arrived");
    }

    /// Degenerate knob values are rejected by `validate` with a message
    /// naming the knob — the CLI surfaces these at parse time, before a
    /// network is even built.
    #[test]
    fn validate_rejects_degenerate_knobs() {
        let base = TraceConfig::default();
        assert_eq!(base.validate(), Ok(()));

        let cases: [(TraceConfig, &str); 7] = [
            (TraceConfig { arrival_rate: 0.0, ..base }, "arrival rate"),
            (TraceConfig { arrival_rate: f64::NAN, ..base }, "arrival rate"),
            (TraceConfig { arrival_rate: f64::INFINITY, ..base }, "arrival rate"),
            (TraceConfig { mean_holding: 0.0, ..base }, "mean holding"),
            (TraceConfig { mean_holding: -3.0, ..base }, "mean holding"),
            (TraceConfig { link_down_rate: -0.5, ..base }, "link-down rate"),
            (TraceConfig { user_pool: 1, ..base }, "user pool"),
        ];
        for (config, knob) in cases {
            let err = config.validate().expect_err(knob);
            assert!(err.contains(knob), "error {err:?} should name {knob:?}");
        }
    }

    /// `user_pool: 0` means "every user": it is valid, recurring demands
    /// are still possible (same pair drawn twice), and the trace is
    /// deterministic. `user_pool >= 2` restricts to a prefix and yields a
    /// different — still deterministic — trace.
    #[test]
    fn user_pool_zero_means_all_users_and_stays_deterministic() {
        let net = net();
        let all = TraceConfig {
            events: 300,
            user_pool: 0,
            ..TraceConfig::default()
        };
        assert_eq!(all.validate(), Ok(()));
        assert_eq!(generate(&net, &all), generate(&net, &all));

        let pool = TraceConfig { user_pool: 2, ..all };
        assert_eq!(pool.validate(), Ok(()));
        let trace = generate(&net, &pool);
        assert_eq!(trace, generate(&net, &pool));
        // With two users every arrival is the same (unordered) pair.
        let mut pairs: Vec<(NodeId, NodeId)> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Arrival { source, dest, .. } => {
                    Some((source.min(dest), source.max(dest)))
                }
                _ => None,
            })
            .collect();
        pairs.dedup();
        assert_eq!(pairs.len(), 1, "pool of 2 admits exactly one pair");
    }

    #[test]
    #[should_panic(expected = "invalid trace config")]
    fn generate_panics_on_zero_arrival_rate() {
        let net = net();
        let _ = generate(
            &net,
            &TraceConfig {
                arrival_rate: 0.0,
                ..TraceConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid trace config")]
    fn generate_panics_on_zero_holding_time() {
        let net = net();
        let _ = generate(
            &net,
            &TraceConfig {
                mean_holding: 0.0,
                ..TraceConfig::default()
            },
        );
    }
}
