//! Classic-swapping (BSM) metrics used by the Q-CAST baseline \[17\].
//!
//! Under 2-fusion one shared state occupies exactly one *lane*: a
//! pre-committed chain of one link per hop, swapped by one BSM per
//! intermediate switch. In the paper's synchronized one-shot protocol
//! (§III-B) both the link assignment and the BSM pairings are fixed before
//! heralding outcomes are known — the inability to adapt to which links
//! actually succeeded is precisely the flexibility n-fusion adds (§IV-A),
//! and it is what the paper's own classic formulas encode: Fig. 6b rates a
//! width-2, 2-hop path at `2p²q` for *two* states (one lane each), and
//! idea 4 rates classic width-`w` at `w·p^z·q^(z-1)` — `w` independent
//! lanes, each `p^z·q^(z-1)`. The per-state scoring is therefore
//! [`success_probability`] = `Π p_j · q^(z-1)`, independent of width.
//!
//! Two stronger classic models are kept for the ablation bench
//! (`ablation-classic`):
//!
//! * **multi-lane** ([`success_probability_multilane`]) — the state may
//!   ride any of the `min w_j` pre-committed lanes;
//! * **adaptive** ([`success_probability_adaptive`]) — Q-CAST's own
//!   analysis model, where a switch re-pairs any successful left link with
//!   any successful right link (min-of-binomials DP with per-swap
//!   thinning).

use crate::flow::WidthedPath;
use crate::network::QuantumNetwork;

/// Resolves the `(link success, width)` sequence of a path; `None` if a hop
/// has no edge.
fn resolve_hops(net: &QuantumNetwork, wp: &WidthedPath) -> Option<Vec<(f64, u32)>> {
    wp.hops()
        .map(|(u, v, w)| net.hop(u, v).map(|(_, p)| (p, w)))
        .collect()
}

/// Number of parallel links hop `j` contributes to lane `l` when `w` links
/// are spread evenly over `lanes` lanes.
fn lane_links(w: u32, lanes: u32, l: u32) -> u32 {
    w / lanes + u32::from(l < w % lanes)
}

/// Probability that a demanded state is established on this path under
/// the paper's classic model: its single pre-committed lane survives every
/// hop (`p_j` each, extra width serves other states) and every
/// intermediate BSM (`q` each).
#[must_use]
pub fn success_probability(net: &QuantumNetwork, wp: &WidthedPath) -> f64 {
    let Some(hops) = resolve_hops(net, wp) else {
        return 0.0;
    };
    let q = net.swap_success();
    let swaps = q.powi(hops.len() as i32 - 1);
    hops.iter().map(|&(p, _)| p).product::<f64>() * swaps
}

/// Per-lane end-to-end success probabilities of a path under the
/// *multi-lane* fixed-lane model (ablation only).
///
/// The lane count is the minimum hop width; wider hops back their lanes
/// with extra parallel links. Each lane needs every hop segment to succeed
/// (`1 - (1-p)^links`) and every one of the `z - 1` intermediate BSMs to
/// succeed (`q` each).
#[must_use]
pub fn lane_successes(net: &QuantumNetwork, wp: &WidthedPath) -> Vec<f64> {
    let Some(hops) = resolve_hops(net, wp) else {
        return Vec::new();
    };
    let lanes = hops.iter().map(|&(_, w)| w).min().unwrap_or(0);
    if lanes == 0 {
        return Vec::new();
    }
    let q = net.swap_success();
    let swaps = q.powi(hops.len() as i32 - 1);
    (0..lanes)
        .map(|l| {
            let mut lane = swaps;
            for &(p, w) in &hops {
                lane *= 1.0 - (1.0 - p).powi(lane_links(w, lanes, l) as i32);
            }
            lane
        })
        .collect()
}

/// Probability that a demanded state is established under the multi-lane
/// model: at least one pre-committed lane survives end to end (ablation
/// only).
#[must_use]
pub fn success_probability_multilane(net: &QuantumNetwork, wp: &WidthedPath) -> f64 {
    let fail: f64 = lane_successes(net, wp).iter().map(|s| 1.0 - s).product();
    1.0 - fail
}

/// Expected number of surviving end-to-end Bell pairs across all
/// pre-committed lanes — Q-CAST's `EXT` under fixed lanes. This is the
/// paper's idea-4 classic rate `w·p^z·q^(z-1)` for uniform widths.
#[must_use]
pub fn expected_pairs(net: &QuantumNetwork, wp: &WidthedPath) -> f64 {
    lane_successes(net, wp).iter().sum()
}

/// Probability mass function of `Binomial(n, p)` over `0..=n`.
fn binomial_pmf(n: u32, p: f64) -> Vec<f64> {
    let n = n as usize;
    let mut dist = vec![0.0; n + 1];
    if p <= 0.0 {
        dist[0] = 1.0;
        return dist;
    }
    if p >= 1.0 {
        dist[n] = 1.0;
        return dist;
    }
    // Multiplicative recurrence keeps everything in f64 range.
    let mut term = (1.0 - p).powi(n as i32);
    for (k, slot) in dist.iter_mut().enumerate() {
        *slot = term;
        if k < n {
            term *= (n - k) as f64 / (k + 1) as f64 * p / (1.0 - p);
        }
    }
    dist
}

/// Distribution of `min(A, B)` for independent non-negative integer
/// variables given by their pmfs.
fn min_distribution(a: &[f64], b: &[f64]) -> Vec<f64> {
    let n = a.len().min(b.len());
    let mut out = vec![0.0; n];
    // Tail sums: P[A >= k], P[B >= k].
    let tail = |d: &[f64], k: usize| -> f64 { d.iter().skip(k).sum() };
    for (k, slot) in out.iter_mut().enumerate() {
        // P[min = k] = P[A>=k]P[B>=k] - P[A>=k+1]P[B>=k+1]
        *slot = tail(a, k) * tail(b, k) - tail(a, k + 1) * tail(b, k + 1);
    }
    out
}

/// Binomial thinning: each of the `k` surviving pairs independently passes
/// the switch's BSM with probability `q`.
fn thin(dist: &[f64], q: f64) -> Vec<f64> {
    let mut out = vec![0.0; dist.len()];
    for (k, &pk) in dist.iter().enumerate() {
        if pk == 0.0 {
            continue;
        }
        let pmf = binomial_pmf(k as u32, q);
        for (i, &pi) in pmf.iter().enumerate() {
            out[i] += pk * pi;
        }
    }
    out
}

/// Exact distribution of end-to-end surviving Bell-pair counts under
/// Q-CAST's *adaptive* model: each hop succeeds on `Binomial(w, p)` links,
/// the joining switch re-pairs any successful left link with any
/// successful right link, and every matched pair survives the BSM with
/// probability `q`.
///
/// Index `i` of the result is the probability that exactly `i` pairs
/// survive. Returns a point mass at 0 if some hop has no edge in the
/// network.
///
/// # Panics
///
/// Panics if the path is trivial.
#[must_use]
pub fn pair_distribution(net: &QuantumNetwork, wp: &WidthedPath) -> Vec<f64> {
    let Some(hops) = resolve_hops(net, wp) else {
        return vec![1.0];
    };
    assert!(!hops.is_empty(), "classic metric needs at least one hop");

    let q = net.swap_success();
    let (p0, w0) = hops[0];
    let mut dist = binomial_pmf(w0, p0);
    for &(p, w) in &hops[1..] {
        let x = binomial_pmf(w, p);
        let matched = min_distribution(&dist, &x);
        dist = thin(&matched, q);
    }
    dist
}

/// Success probability under the adaptive re-pairing model: at least one
/// pair survives end to end.
#[must_use]
pub fn success_probability_adaptive(net: &QuantumNetwork, wp: &WidthedPath) -> f64 {
    1.0 - pair_distribution(net, wp)[0]
}

/// Q-CAST's `EXT` metric under the adaptive model: the expected number of
/// surviving end-to-end Bell pairs.
#[must_use]
pub fn expected_pairs_adaptive(net: &QuantumNetwork, wp: &WidthedPath) -> f64 {
    pair_distribution(net, wp)
        .iter()
        .enumerate()
        .map(|(i, &p)| i as f64 * p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_graph::Path;
    use proptest::prelude::*;

    /// Chain with `hops` hops, switch endpoints so every hop count works,
    /// uniform p and q.
    fn chain(hops: usize, p: f64, q: f64) -> (QuantumNetwork, Path) {
        let mut b = QuantumNetwork::builder();
        let nodes: Vec<_> = (0..=hops).map(|i| b.switch(i as f64, 0.0, 100)).collect();
        for w in nodes.windows(2) {
            b.link(w[0], w[1]).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        (net, Path::new(nodes))
    }

    #[test]
    fn binomial_pmf_basics() {
        let d = binomial_pmf(2, 0.5);
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.25).abs() < 1e-12);
        assert_eq!(binomial_pmf(3, 0.0), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(binomial_pmf(3, 1.0), vec![0.0, 0.0, 0.0, 1.0]);
        let sum: f64 = binomial_pmf(9, 0.37).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_distribution_brute_force() {
        let a = binomial_pmf(2, 0.3);
        let b = binomial_pmf(2, 0.6);
        let m = min_distribution(&a, &b);
        let mut brute = [0.0; 3];
        for i in 0..=2usize {
            for j in 0..=2usize {
                brute[i.min(j)] += a[i] * b[j];
            }
        }
        for k in 0..3 {
            assert!((m[k] - brute[k]).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn lane_links_spread_evenly() {
        // 5 links over 2 lanes: 3 + 2.
        assert_eq!(lane_links(5, 2, 0), 3);
        assert_eq!(lane_links(5, 2, 1), 2);
        // Uniform width w over w lanes: 1 each.
        for l in 0..4 {
            assert_eq!(lane_links(4, 4, l), 1);
        }
    }

    #[test]
    fn single_hop_models() {
        let (net, path) = chain(1, 0.3, 0.9);
        let wp = crate::flow::WidthedPath::uniform(path, 3);
        // Single lane: exactly one of the three links is the state's.
        assert!((success_probability(&net, &wp) - 0.3).abs() < 1e-12);
        // Multi-lane / adaptive: any of the three links may carry it.
        let expect = 1.0 - 0.7_f64.powi(3);
        assert!((success_probability_multilane(&net, &wp) - expect).abs() < 1e-12);
        assert!((success_probability_adaptive(&net, &wp) - expect).abs() < 1e-12);
    }

    #[test]
    fn width_one_matches_series_formula() {
        // One lane: success = p^hops * q^(hops-1) in all three models.
        let (net, path) = chain(3, 0.4, 0.8);
        let wp = crate::flow::WidthedPath::uniform(path, 1);
        let expect = 0.4_f64.powi(3) * 0.8_f64.powi(2);
        assert!((success_probability(&net, &wp) - expect).abs() < 1e-12);
        assert!((success_probability_multilane(&net, &wp) - expect).abs() < 1e-12);
        assert!((success_probability_adaptive(&net, &wp) - expect).abs() < 1e-12);
    }

    #[test]
    fn width_is_irrelevant_to_single_lane() {
        let (net, path) = chain(3, 0.4, 0.8);
        let narrow = crate::flow::WidthedPath::uniform(path.clone(), 1);
        let wide = crate::flow::WidthedPath::uniform(path, 5);
        assert_eq!(
            success_probability(&net, &narrow),
            success_probability(&net, &wide)
        );
    }

    #[test]
    fn multilane_closed_form() {
        // z = 2 hops, w = 2: multilane success = 1 - (1 - p²q)², EXT = 2p²q
        // (the paper's idea-4 classic rate w·p^z·q^(z-1)).
        let (net, path) = chain(2, 0.5, 0.9);
        let wp = crate::flow::WidthedPath::uniform(path, 2);
        let lane = 0.25 * 0.9;
        let expect = 1.0 - (1.0 - lane) * (1.0 - lane);
        assert!((success_probability_multilane(&net, &wp) - expect).abs() < 1e-12);
        assert!((expected_pairs(&net, &wp) - 2.0 * lane).abs() < 1e-12);
        // Single-lane: one of those lanes.
        assert!((success_probability(&net, &wp) - lane).abs() < 1e-12);
    }

    #[test]
    fn model_hierarchy_single_multilane_adaptive() {
        // Each relaxation of pre-commitment can only help.
        for (p, q, w, hops) in [(0.5, 0.9, 3, 3), (0.2, 0.7, 2, 4), (0.8, 0.5, 4, 2)] {
            let (net, path) = chain(hops, p, q);
            let wp = crate::flow::WidthedPath::uniform(path, w);
            let single = success_probability(&net, &wp);
            let multi = success_probability_multilane(&net, &wp);
            let adaptive = success_probability_adaptive(&net, &wp);
            assert!(
                single <= multi + 1e-12 && multi <= adaptive + 1e-12,
                "hierarchy violated at p={p}, q={q}, w={w}, z={hops}: \
                 {single} / {multi} / {adaptive}"
            );
        }
    }

    #[test]
    fn uneven_widths_back_lanes() {
        // Hop widths (2, 1): one lane whose first segment has 2 links.
        let (net, path) = chain(2, 0.4, 0.9);
        let mut wp = crate::flow::WidthedPath::uniform(path, 1);
        wp.widths[0] = 2;
        let lanes = lane_successes(&net, &wp);
        assert_eq!(lanes.len(), 1);
        let expect = (1.0 - 0.6_f64 * 0.6) * 0.4 * 0.9;
        assert!((lanes[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn ext_on_perfect_path_is_width() {
        let (net, path) = chain(2, 1.0, 1.0);
        let wp = crate::flow::WidthedPath::uniform(path, 4);
        assert!((expected_pairs(&net, &wp) - 4.0).abs() < 1e-12);
        assert!((expected_pairs_adaptive(&net, &wp) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_gives_zero() {
        let mut b = QuantumNetwork::builder();
        let u = b.switch(0.0, 0.0, 4);
        let v = b.switch(1.0, 0.0, 4);
        let _bridge = b.switch(0.5, 0.0, 4);
        let net = b.build();
        let wp = crate::flow::WidthedPath::uniform(Path::new(vec![u, v]), 1);
        assert_eq!(success_probability(&net, &wp), 0.0);
        assert_eq!(success_probability_multilane(&net, &wp), 0.0);
        assert_eq!(success_probability_adaptive(&net, &wp), 0.0);
        assert_eq!(expected_pairs(&net, &wp), 0.0);
    }

    proptest! {
        /// The adaptive distribution is a pmf; both models' success
        /// probabilities are monotone in p, q, and width; adaptive
        /// dominates fixed-lane everywhere.
        #[test]
        fn model_sanity(
            p in 0.05f64..0.95,
            q in 0.05f64..0.95,
            w in 1u32..5,
            hops in 1usize..5,
        ) {
            let (net, path) = chain(hops, p, q);
            let wp = crate::flow::WidthedPath::uniform(path.clone(), w);
            let dist = pair_distribution(&net, &wp);
            let sum: f64 = dist.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(dist.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
            prop_assert!(
                success_probability_adaptive(&net, &wp)
                    >= success_probability_multilane(&net, &wp) - 1e-12
            );
            prop_assert!(
                success_probability_multilane(&net, &wp)
                    >= success_probability(&net, &wp) - 1e-12
            );

            // Multilane success is monotone in width; single-lane ignores it.
            let wider = crate::flow::WidthedPath::uniform(path.clone(), w + 1);
            prop_assert!(
                success_probability_multilane(&net, &wider)
                    >= success_probability_multilane(&net, &wp) - 1e-12
            );
            prop_assert!(
                (success_probability(&net, &wider) - success_probability(&net, &wp)).abs()
                    < 1e-12
            );

            // Monotone in p.
            let (net_hi, _) = chain(hops, (p + 0.04).min(1.0), q);
            prop_assert!(
                success_probability(&net_hi, &wp) >= success_probability(&net, &wp) - 1e-12
            );

            // Monotone in q.
            let (net_q, _) = chain(hops, p, (q + 0.04).min(1.0));
            prop_assert!(
                success_probability(&net_q, &wp) >= success_probability(&net, &wp) - 1e-12
            );
        }
    }
}
