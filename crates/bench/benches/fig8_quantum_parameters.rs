//! Fig. 8 runtime bench: route-and-evaluate cost across the quantum
//! parameter sweeps (link success probability p, swap success q).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::workloads::{Algorithm, ExperimentConfig};
use fusion_sim::evaluate::estimate_plan;
use std::hint::black_box;

fn bench_p_sweep(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig8a_route_p");
    group.sample_size(10);
    for p in [0.1, 0.4] {
        let (mut net, demands) = config.instance(0);
        net.set_uniform_link_success(Some(p));
        group.bench_with_input(
            BenchmarkId::new("ALG-N-FUSION", format!("p={p}")),
            &(&net, &demands),
            |b, (net, demands)| {
                b.iter(|| black_box(Algorithm::AlgNFusion.route(net, demands, config.h)));
            },
        );
    }
    group.finish();
}

fn bench_q_sweep(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("fig8b_route_q");
    group.sample_size(10);
    for q in [0.3, 0.9] {
        let (mut net, demands) = config.instance(0);
        net.set_swap_success(q);
        group.bench_with_input(
            BenchmarkId::new("ALG-N-FUSION", format!("q={q}")),
            &(&net, &demands),
            |b, (net, demands)| {
                b.iter(|| black_box(Algorithm::AlgNFusion.route(net, demands, config.h)));
            },
        );
    }
    group.finish();
}

fn bench_monte_carlo_evaluation(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let (net, demands) = config.instance(0);
    let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
    let mut group = c.benchmark_group("fig8_evaluate");
    group.sample_size(10);
    for rounds in [200usize, 1000] {
        group.bench_with_input(
            BenchmarkId::new("monte-carlo", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| black_box(estimate_plan(&net, &plan, rounds, 1)));
            },
        );
    }
    group.bench_function("analytic", |b| {
        b.iter(|| black_box(plan.total_rate(&net)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_p_sweep,
    bench_q_sweep,
    bench_monte_carlo_evaluation
);
criterion_main!(benches);
