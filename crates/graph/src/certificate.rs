//! Certificate-based validity footprints for width-descent searches.
//!
//! A width slice's original footprint was the raw [`RecordedSet`] of every
//! node whose feasibility a search *read* — the whole explored region. At
//! high churn that is fatal: the first search of a width reads most of the
//! graph at ordinal 0, so nearly every residual flip kills the cached
//! slice and incremental admission degenerates to recompute parity.
//!
//! A **certificate** is the minimal subset of those reads whose *answers*
//! the search results actually depend on, split per feasibility kind:
//!
//! * for a search that returned a path `P`: the endpoint answers of
//!   `P.first()` / `P.last()` (both endpoint-checked before the search
//!   ran) and the relay answers of `P`'s intermediate nodes — plus every
//!   *blocked* read (a node observed infeasible, which pruned an edge and
//!   thereby witnessed "no better alternative" for the explored region);
//! * for a search that returned `None`: only the blocked reads — an
//!   untracked read was feasible, and a feasible answer turning
//!   *infeasible* can only shrink the explored subgraph, never resurrect
//!   a path;
//! * for a search skipped by a negative reachability certificate: the
//!   relay answers of the reach view's *blocked frontier* `∂R` (every
//!   probed-but-infeasible switch) — any path into the unexplored side
//!   would have to cross it.
//!
//! **Soundness invariant: a certificate is a subset of the raw
//! `RecordedSet` footprint, and as long as no tracked `(node, kind)`
//! answer flips, re-running the construction reproduces the same bytes.**
//! The subset direction is structural (every `track_*` call also raw-
//! records). The reproduction direction rests on the max-product search's
//! total order: heap entries are `(Metric, NodeId)` tuples, so the settle
//! sequence is the descending sort of final labels — a pure function of
//! the feasible subgraph, not of heap history. Removing a feasible
//! off-path node only shrinks that subgraph pointwise, which leaves every
//! on-path label (and the last-strict-improver predecessor chain that
//! *is* the returned path) pinned; nodes never read at all were never
//! reached and stay unreachable in the re-run. Users' relay answers are
//! width-0 constants and are never tracked. `certificate_untracked_flips_
//! preserve_results` below checks the whole claim end to end against
//! fresh searches.
//!
//! Tracking is stratified by *search ordinal* exactly like the raw
//! footprint used to be — except an ordinal now means "first search whose
//! **result depends** on this answer", not "first search that read it" —
//! which is what lets the serve layer's repair lattice keep a damaged
//! slot's log prefix: searches before the first dependent ordinal are
//! invariant under the flip by the same argument as above.

use crate::graph::NodeId;
use crate::path::Path;
use crate::stamps::RecordedSet;

/// One certificate entry: a node plus, per feasibility kind, the ordinal
/// of the first search whose result depends on that kind's answer
/// (`None` = the slice never depended on it). At least one kind is
/// `Some` — kind-free nodes are simply not in the certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertEntry {
    /// The node whose feasibility answer is witnessed.
    pub node: NodeId,
    /// First dependent search ordinal of the node's *relay* answer.
    pub relay: Option<u32>,
    /// First dependent search ordinal of the node's *endpoint* answer.
    pub endpoint: Option<u32>,
}

impl CertEntry {
    /// The smallest ordinal across the tracked kinds — the deepest log
    /// prefix guaranteed intact if *any* tracked answer here flips.
    ///
    /// # Panics
    ///
    /// Panics if neither kind is tracked (no such entry is ever emitted).
    #[must_use]
    pub fn first_ordinal(&self) -> u32 {
        self.relay
            .iter()
            .chain(self.endpoint.iter())
            .copied()
            .min()
            .expect("certificate entries track at least one kind")
    }
}

/// Records one width slice's raw reads *and* its validity certificate
/// while the width's searches run (see the module docs for the tracking
/// rules and the soundness argument).
///
/// The recorder is reusable: [`begin`](CertificateRecorder::begin) resets
/// it in O(changed) via the generation-stamp discipline.
#[derive(Debug, Clone, Default)]
pub struct CertificateRecorder {
    /// Every feasibility read, tracked or not — the classic footprint.
    /// Kept for telemetry and as the superset the certificate must stay
    /// inside of.
    raw: RecordedSet,
    /// Nodes with a tracked relay answer, ordinals parallel to
    /// `relay.members()`.
    relay: RecordedSet,
    relay_ords: Vec<u32>,
    /// Nodes with a tracked endpoint answer, ordinals parallel to
    /// `endpoint.members()`.
    endpoint: RecordedSet,
    endpoint_ords: Vec<u32>,
    /// Ordinal of the search currently issuing reads.
    current: u32,
    reach_folded: bool,
}

impl CertificateRecorder {
    /// Resets the recorder for a new width slice over `nodes` nodes.
    pub fn begin(&mut self, nodes: usize) {
        self.raw.clear(nodes);
        self.relay.clear(nodes);
        self.relay_ords.clear();
        self.endpoint.clear(nodes);
        self.endpoint_ords.clear();
        self.current = 0;
        self.reach_folded = false;
    }

    /// Sets the ordinal subsequent tracking calls are attributed to.
    pub fn set_ordinal(&mut self, ordinal: u32) {
        self.current = ordinal;
    }

    /// Records a relay-feasibility read of `v` that answered `feasible`.
    /// Tracked only when the answer *blocked* the search (`!feasible`)
    /// and can ever flip (`can_flip` — `false` for users, whose relay
    /// threshold is 0 at every capacity). Feasible relay reads become
    /// tracked later only if `v` ends up on the returned path
    /// ([`commit_success`](CertificateRecorder::commit_success)).
    #[inline]
    pub fn read_relay(&mut self, v: NodeId, feasible: bool, can_flip: bool) {
        self.raw.insert(v.index());
        if !feasible && can_flip {
            self.track_relay(v);
        }
    }

    /// Records an endpoint-feasibility read of `v` that answered
    /// `feasible`. Tracked when blocked; a feasible endpoint read becomes
    /// tracked only via [`commit_success`](CertificateRecorder::commit_success).
    #[inline]
    pub fn read_endpoint(&mut self, v: NodeId, feasible: bool) {
        self.raw.insert(v.index());
        if !feasible {
            self.track_endpoint(v);
        }
    }

    /// Commits a successful search: the returned path's endpoints carry
    /// tracked endpoint answers, its intermediates tracked relay answers
    /// — the path's own threshold reads, the positive half of the
    /// certificate.
    pub fn commit_success(&mut self, path: &Path) {
        let nodes = path.nodes();
        if let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) {
            self.track_endpoint(first);
            self.track_endpoint(last);
        }
        if nodes.len() > 2 {
            for &v in &nodes[1..nodes.len() - 1] {
                self.track_relay(v);
            }
        }
    }

    /// Folds in a negative reachability certificate's dependency set,
    /// once per width: `all` (the reach view's `R ∪ ∂R`) enters the raw
    /// footprint; `blocked_switches` (the relay-infeasible frontier `∂R`
    /// restricted to nodes whose relay answer can flip) is tracked. Later
    /// searches skipped on the same certificate depend on the same set at
    /// ordinals ≥ this one, so folding once keeps stratification sound.
    pub fn fold_reach(
        &mut self,
        all: impl Iterator<Item = NodeId>,
        blocked_switches: impl Iterator<Item = NodeId>,
    ) {
        if self.reach_folded {
            return;
        }
        self.reach_folded = true;
        for v in all {
            self.raw.insert(v.index());
        }
        for v in blocked_switches {
            self.track_relay(v);
        }
    }

    /// Number of raw reads so far this width — the classic footprint
    /// cardinality, kept for telemetry comparability.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.raw.len()
    }

    /// Whether `v` was raw-read this width.
    #[must_use]
    pub fn raw_contains(&self, v: NodeId) -> bool {
        self.raw.contains(v.index())
    }

    fn track_relay(&mut self, v: NodeId) {
        self.raw.insert(v.index());
        if self.relay.insert(v.index()) {
            self.relay_ords.push(self.current);
        }
    }

    fn track_endpoint(&mut self, v: NodeId) {
        self.raw.insert(v.index());
        if self.endpoint.insert(v.index()) {
            self.endpoint_ords.push(self.current);
        }
    }

    /// The width's certificate, sorted by node. First-tracked ordinals
    /// win (searches issue in ordinal order, so they are first-*dependent*
    /// ordinals). The recorder stays usable; the next
    /// [`begin`](CertificateRecorder::begin) resets it.
    #[must_use]
    pub fn drain(&mut self) -> Vec<CertEntry> {
        let mut out: Vec<CertEntry> = self
            .relay
            .members()
            .iter()
            .zip(&self.relay_ords)
            .map(|(&i, &o)| CertEntry {
                node: NodeId::new(i),
                relay: Some(o),
                endpoint: None,
            })
            .collect();
        out.sort_unstable_by_key(|e| e.node);
        for (&i, &o) in self.endpoint.members().iter().zip(&self.endpoint_ords) {
            let node = NodeId::new(i);
            match out.binary_search_by_key(&node, |e| e.node) {
                Ok(at) => out[at].endpoint = Some(o),
                Err(at) => out.insert(
                    at,
                    CertEntry {
                        node,
                        relay: None,
                        endpoint: Some(o),
                    },
                ),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::{DescentReach, WidthFeasibility};
    use crate::graph::UnGraph;
    use crate::metric::Metric;
    use crate::search::{max_product_resume, SearchScratch};
    use proptest::prelude::*;

    /// The swap-success factor every switch transit pays in the harness.
    const Q: f64 = 0.9;

    fn feas_for(caps: &[u32], users: &[bool]) -> WidthFeasibility {
        let mut feas = WidthFeasibility::new(caps.len());
        for (i, &c) in caps.iter().enumerate() {
            let relay = if users[i] { 0 } else { c / 2 };
            feas.set_node(NodeId::new(i), relay, c);
        }
        feas
    }

    /// A faithful miniature of the width-descent engine's single search:
    /// endpoint checks, optional negative-reachability skip, then the
    /// relay-gated goal-directed max-product run — the exact read/track
    /// discipline `fusion_core::alg2` wires through this recorder.
    #[allow(clippy::too_many_arguments)]
    fn certified_search(
        scratch: &mut SearchScratch,
        g: &UnGraph<(), f64>,
        feas: &WidthFeasibility,
        users: &[bool],
        reach: Option<&DescentReach>,
        source: NodeId,
        dest: NodeId,
        width: u32,
        mut recorder: Option<&mut CertificateRecorder>,
    ) -> Option<(Path, Metric)> {
        if source == dest {
            return None;
        }
        if let Some(r) = recorder.as_deref_mut() {
            r.read_endpoint(source, feas.endpoint_feasible(source, width));
            r.read_endpoint(dest, feas.endpoint_feasible(dest, width));
        }
        if !feas.endpoint_feasible(source, width) || !feas.endpoint_feasible(dest, width) {
            return None;
        }
        if let Some(reach) = reach {
            if !reach.can_reach(source) {
                if let Some(r) = recorder.as_deref_mut() {
                    r.fold_reach(
                        reach.reached_nodes(),
                        reach.blocked_frontier().filter(|v| !users[v.index()]),
                    );
                }
                return None;
            }
        }
        let result = max_product_resume(
            scratch,
            g,
            source,
            |from, e| {
                let to = e.other(from);
                if to != dest {
                    if let Some(r) = recorder.as_deref_mut() {
                        r.read_relay(to, feas.relay_feasible(to, width), !users[to.index()]);
                    }
                    if !feas.relay_feasible(to, width) {
                        return None;
                    }
                }
                Some(*e.weight)
            },
            |via| (!users[via.index()]).then_some(Q),
        )
        .run_to(dest);
        if let (Some(r), Some((p, _))) = (recorder, result.as_ref()) {
            r.commit_success(p);
        }
        result
    }

    fn build_graph(n: usize, edges: &[(usize, usize, u8)]) -> UnGraph<(), f64> {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for &(u, v, p) in edges {
            if u != v && !g.contains_edge(NodeId::new(u), NodeId::new(v)) {
                #[allow(clippy::cast_lossless)]
                g.add_edge(
                    NodeId::new(u),
                    NodeId::new(v),
                    0.05 + 0.9 * (p as f64 / 255.0),
                );
            }
        }
        g
    }

    #[test]
    fn drain_merges_kinds_sorted_by_node() {
        let mut r = CertificateRecorder::default();
        r.begin(8);
        r.set_ordinal(0);
        r.read_relay(NodeId::new(5), false, true); // tracked relay @0
        r.read_relay(NodeId::new(2), true, true); // feasible: untracked
        r.read_endpoint(NodeId::new(5), false); // tracked endpoint @0
        r.set_ordinal(3);
        r.read_endpoint(NodeId::new(1), false); // tracked endpoint @3
        r.read_relay(NodeId::new(5), false, true); // re-read: first wins
        r.read_relay(NodeId::new(7), false, false); // user: never tracked
        let cert = r.drain();
        assert_eq!(
            cert,
            vec![
                CertEntry {
                    node: NodeId::new(1),
                    relay: None,
                    endpoint: Some(3)
                },
                CertEntry {
                    node: NodeId::new(5),
                    relay: Some(0),
                    endpoint: Some(0)
                },
            ]
        );
        assert_eq!(cert[0].first_ordinal(), 3);
        assert_eq!(cert[1].first_ordinal(), 0);
        assert_eq!(r.raw_len(), 4, "raw keeps every read: nodes 1, 2, 5, 7");
        assert!(r.raw_contains(NodeId::new(2)) && r.raw_contains(NodeId::new(7)));
        // begin() resets everything.
        r.begin(8);
        assert_eq!(r.raw_len(), 0);
        assert!(r.drain().is_empty());
    }

    #[test]
    fn commit_success_tracks_path_thresholds_only() {
        let mut r = CertificateRecorder::default();
        r.begin(6);
        r.read_endpoint(NodeId::new(0), true);
        r.read_endpoint(NodeId::new(3), true);
        r.read_relay(NodeId::new(1), true, true);
        r.read_relay(NodeId::new(2), true, true);
        r.read_relay(NodeId::new(4), true, true); // feasible off-path
        let path = Path::new(vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        ]);
        r.commit_success(&path);
        let cert = r.drain();
        let by_node = |n: usize| cert.iter().find(|e| e.node == NodeId::new(n));
        assert_eq!(by_node(0).unwrap().endpoint, Some(0));
        assert_eq!(by_node(0).unwrap().relay, None);
        assert_eq!(by_node(1).unwrap().relay, Some(0));
        assert_eq!(by_node(2).unwrap().relay, Some(0));
        assert_eq!(by_node(3).unwrap().endpoint, Some(0));
        assert!(by_node(4).is_none(), "feasible off-path reads are untracked");
        assert!(r.raw_contains(NodeId::new(4)));
    }

    #[test]
    fn fold_reach_tracks_only_the_blocked_frontier_and_folds_once() {
        let mut r = CertificateRecorder::default();
        r.begin(10);
        r.set_ordinal(2);
        let all = [0usize, 1, 2, 3, 4].map(NodeId::new);
        let blocked = [3usize, 4].map(NodeId::new);
        r.fold_reach(all.iter().copied(), blocked.iter().copied());
        // Second fold at a later ordinal is a no-op.
        r.set_ordinal(5);
        r.fold_reach(all.iter().copied(), [NodeId::new(1)].into_iter());
        let cert = r.drain();
        assert_eq!(cert.len(), 2);
        assert!(cert
            .iter()
            .all(|e| e.relay == Some(2) && e.endpoint.is_none()));
        assert_eq!(r.raw_len(), 5, "R ∪ ∂R enters raw in full");
    }

    proptest! {
        /// The soundness invariant, end to end, on random worlds: the
        /// certificate is a subset of the raw footprint, and flipping any
        /// untracked (node, kind) answer — via a capacity delta — leaves
        /// a fresh search's result byte-identical.
        #[test]
        fn certificate_untracked_flips_preserve_results(
            edges in proptest::collection::vec((0usize..12, 0usize..12, 0u8..255), 1..40),
            caps in proptest::collection::vec(0u32..12, 12),
            user_mask in proptest::collection::vec(proptest::bool::ANY, 12),
            source in 0usize..12,
            dest in 0usize..12,
            width in 1u32..5,
            new_cap in 0u32..12,
            use_reach in proptest::bool::ANY,
        ) {
            certificate_case(
                &edges, &caps, &user_mask, source, dest, width, new_cap, use_reach,
            )?;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        /// Wide-grid variant of the invariant check, for the scheduled
        /// `wide-differential` workflow.
        #[test]
        #[ignore = "wide grid: run explicitly or via the wide-differential workflow"]
        fn certificate_untracked_flips_preserve_results_wide(
            edges in proptest::collection::vec((0usize..16, 0usize..16, 0u8..255), 1..70),
            caps in proptest::collection::vec(0u32..14, 16),
            user_mask in proptest::collection::vec(proptest::bool::ANY, 16),
            source in 0usize..16,
            dest in 0usize..16,
            width in 1u32..6,
            new_cap in 0u32..14,
            use_reach in proptest::bool::ANY,
        ) {
            certificate_case(
                &edges, &caps, &user_mask, source, dest, width, new_cap, use_reach,
            )?;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn certificate_case(
        edges: &[(usize, usize, u8)],
        caps: &[u32],
        user_mask: &[bool],
        source: usize,
        dest: usize,
        width: u32,
        new_cap: u32,
        use_reach: bool,
    ) -> Result<(), TestCaseError> {
        let n = caps.len();
        let g = build_graph(n, edges);
        let users = user_mask.to_vec();
        let feas = feas_for(caps, &users);
        let source = NodeId::new(source);
        let dest = NodeId::new(dest);
        let mut reach_store = DescentReach::new();
        let reach = if use_reach {
            reach_store.begin(&g, &feas, dest, width);
            Some(&reach_store)
        } else {
            None
        };

        let mut scratch = SearchScratch::with_capacity(n);
        let mut recorder = CertificateRecorder::default();
        recorder.begin(n);
        let baseline = certified_search(
            &mut scratch,
            &g,
            &feas,
            &users,
            reach,
            source,
            dest,
            width,
            Some(&mut recorder),
        );
        let cert = recorder.drain();

        // Subset invariant: every certificate node is a raw read, and
        // every entry tracks at least one kind.
        for e in &cert {
            prop_assert!(
                recorder.raw_contains(e.node),
                "certificate node {} outside the raw footprint",
                e.node.index()
            );
            prop_assert!(e.relay.is_some() || e.endpoint.is_some());
            prop_assert!(
                e.relay.is_none() || !users[e.node.index()],
                "user {} relay-tracked; user relay answers never flip",
                e.node.index()
            );
        }

        // Revalidation equivalence: for every node, apply the capacity
        // delta `caps[v] -> new_cap`; if no tracked kind of v flips its
        // answer at this width, a fresh search must return the same
        // bytes.
        let by_node = |v: NodeId| cert.iter().find(|e| e.node == v);
        for vi in 0..n {
            let v = NodeId::new(vi);
            let old = caps[vi];
            let (relay_old, relay_new) = if users[vi] {
                (0, 0)
            } else {
                (old / 2, new_cap / 2)
            };
            let entry = by_node(v);
            let relay_flips = (relay_old >= width) != (relay_new >= width);
            let endpoint_flips = (old >= width) != (new_cap >= width);
            let tracked_flip = entry.is_some_and(|e| {
                (e.relay.is_some() && relay_flips) || (e.endpoint.is_some() && endpoint_flips)
            });
            if tracked_flip {
                continue; // the certificate claims nothing here
            }
            let mut caps2 = caps.to_vec();
            caps2[vi] = new_cap;
            let feas2 = feas_for(&caps2, &users);
            let mut reach2_store = DescentReach::new();
            let reach2 = if use_reach {
                reach2_store.begin(&g, &feas2, dest, width);
                Some(&reach2_store)
            } else {
                None
            };
            let fresh = certified_search(
                &mut scratch, &g, &feas2, &users, reach2, source, dest, width, None,
            );
            prop_assert_eq!(
                &fresh,
                &baseline,
                "untracked flip at node {} ({} -> {}) changed the result",
                vi,
                old,
                new_cap
            );
        }
        Ok(())
    }
}
