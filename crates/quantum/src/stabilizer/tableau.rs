use rand::Rng;

use super::pauli::PauliString;

/// One row of the tableau: a signed Pauli in symplectic form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    x: Vec<bool>,
    z: Vec<bool>,
    r: bool, // true = -1 phase
}

impl Row {
    fn zero(n: usize) -> Self {
        Row {
            x: vec![false; n],
            z: vec![false; n],
            r: false,
        }
    }
}

/// Aaronson-Gottesman stabilizer tableau over `n` qubits.
///
/// Rows `0..n` hold destabilizer generators, rows `n..2n` stabilizer
/// generators; the state starts as `|0…0⟩`. Supports the Clifford gates and
/// Z-basis measurements needed by GHZ fusion circuits.
///
/// # Examples
///
/// ```
/// use fusion_quantum::stabilizer::Tableau;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut tab = Tableau::new(2);
/// tab.h(0);
/// tab.cnot(0, 1); // Bell pair
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = tab.measure_z(0, &mut rng);
/// let b = tab.measure_z(1, &mut rng);
/// assert_eq!(a, b, "Bell-pair Z outcomes are perfectly correlated");
/// ```
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    rows: Vec<Row>, // 2n generator rows + 1 scratch row
}

impl Tableau {
    /// Creates the `|0…0⟩` state on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "tableau needs at least one qubit");
        let mut rows = vec![Row::zero(n); 2 * n + 1];
        for i in 0..n {
            rows[i].x[i] = true; // destabilizer X_i
            rows[n + i].z[i] = true; // stabilizer Z_i
        }
        Tableau { n, rows }
    }

    /// Number of qubits.
    #[must_use]
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of bounds for {} qubits", self.n);
    }

    /// Hadamard on qubit `q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        for row in &mut self.rows[..2 * self.n] {
            row.r ^= row.x[q] & row.z[q];
            std::mem::swap(&mut row.x[q], &mut row.z[q]);
        }
    }

    /// Phase gate S on qubit `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        for row in &mut self.rows[..2 * self.n] {
            row.r ^= row.x[q] & row.z[q];
            row.z[q] ^= row.x[q];
        }
    }

    /// CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either is out of bounds.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check(c);
        self.check(t);
        assert_ne!(c, t, "cnot control and target must differ");
        for row in &mut self.rows[..2 * self.n] {
            row.r ^= row.x[c] & row.z[t] & (row.x[t] ^ row.z[c] ^ true);
            row.x[t] ^= row.x[c];
            row.z[c] ^= row.z[t];
        }
    }

    /// Pauli X on qubit `q`.
    pub fn x(&mut self, q: usize) {
        self.check(q);
        for row in &mut self.rows[..2 * self.n] {
            row.r ^= row.z[q];
        }
    }

    /// Pauli Z on qubit `q`.
    pub fn z(&mut self, q: usize) {
        self.check(q);
        for row in &mut self.rows[..2 * self.n] {
            row.r ^= row.x[q];
        }
    }

    /// The phase exponent contribution of multiplying single-qubit Paulis
    /// `(x1,z1) · (x2,z2)`: returns the power of `i` in `{-1, 0, 1}`.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// `rows[h] := rows[h] * rows[i]` with exact phase tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.rows[h].r as i32) + 2 * (self.rows[i].r as i32);
        for j in 0..self.n {
            phase += Self::g(
                self.rows[i].x[j],
                self.rows[i].z[j],
                self.rows[h].x[j],
                self.rows[h].z[j],
            );
        }
        phase = phase.rem_euclid(4);
        debug_assert!(
            phase == 0 || phase == 2,
            "hermitian products have real sign"
        );
        let (xi, zi): (Vec<bool>, Vec<bool>) = (self.rows[i].x.clone(), self.rows[i].z.clone());
        let row_h = &mut self.rows[h];
        row_h.r = phase == 2;
        for j in 0..self.n {
            row_h.x[j] ^= xi[j];
            row_h.z[j] ^= zi[j];
        }
    }

    /// Measures qubit `q` in the Z basis and returns the outcome bit.
    ///
    /// Deterministic outcomes are computed exactly; non-deterministic ones
    /// are sampled uniformly from `rng` and the tableau collapses
    /// accordingly.
    pub fn measure_z(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        self.check(q);
        let n = self.n;
        // A stabilizer with X support on q makes the outcome random.
        let random_row = (n..2 * n).find(|&i| self.rows[i].x[q]);
        match random_row {
            Some(p) => {
                for i in 0..2 * n {
                    if i != p && self.rows[i].x[q] {
                        self.rowsum(i, p);
                    }
                }
                self.rows[p - n] = self.rows[p].clone();
                let outcome = rng.gen_bool(0.5);
                let row = &mut self.rows[p];
                for j in 0..n {
                    row.x[j] = false;
                    row.z[j] = false;
                }
                row.z[q] = true;
                row.r = outcome;
                outcome
            }
            None => {
                // Deterministic: accumulate the relevant stabilizers into
                // the scratch row (index 2n).
                let scratch = 2 * n;
                self.rows[scratch] = Row::zero(n);
                for i in 0..n {
                    if self.rows[i].x[q] {
                        self.rowsum(scratch, i + n);
                    }
                }
                self.rows[scratch].r
            }
        }
    }

    /// Entangles `qubits` (which must currently be in `|0⟩`) into the
    /// canonical GHZ state via `H` plus a CNOT fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty or repeats an index.
    pub fn prepare_ghz(&mut self, qubits: &[usize]) {
        assert!(
            !qubits.is_empty(),
            "GHZ preparation needs at least one qubit"
        );
        let mut seen = std::collections::HashSet::new();
        for &q in qubits {
            assert!(seen.insert(q), "qubit {q} repeated");
        }
        self.h(qubits[0]);
        for &q in &qubits[1..] {
            self.cnot(qubits[0], q);
        }
    }

    /// Tests whether `±P` is in the stabilizer group of the current state.
    ///
    /// Returns `Some(true)` if `+P` stabilizes the state, `Some(false)` if
    /// `-P` does, and `None` if the unsigned operator is not in the group
    /// at all.
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong number of qubits.
    #[must_use]
    pub fn stabilizes(&mut self, p: &PauliString) -> Option<bool> {
        assert_eq!(p.len(), self.n, "operator size mismatch");
        let n = self.n;
        // Membership test: P (unsigned) lies in <stabilizers> iff the
        // product of the stabilizers indexed by the destabilizers that
        // anticommute with P reproduces P's symplectic vector.
        let scratch = 2 * n;
        self.rows[scratch] = Row::zero(n);
        for i in 0..n {
            // Symplectic product of destabilizer row i with P.
            let mut anti = false;
            for j in 0..n {
                anti ^= (self.rows[i].x[j] && p.z_bit(j)) ^ (self.rows[i].z[j] && p.x_bit(j));
            }
            if anti {
                self.rowsum(scratch, i + n);
            }
        }
        let same = (0..n).all(|j| {
            self.rows[scratch].x[j] == p.x_bit(j) && self.rows[scratch].z[j] == p.z_bit(j)
        });
        if !same {
            return None;
        }
        Some(self.rows[scratch].r == p.is_negative())
    }

    /// `true` when the listed qubits are exactly in the canonical GHZ state
    /// `(|0…0⟩ + |1…1⟩)/√2` (for one qubit, `|+⟩`), unentangled with the
    /// rest of the system.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty or out of bounds.
    #[must_use]
    pub fn is_ghz(&mut self, qubits: &[usize]) -> bool {
        assert!(!qubits.is_empty(), "GHZ check needs at least one qubit");
        let xs = PauliString::x_string(self.n, qubits);
        if self.stabilizes(&xs) != Some(true) {
            return false;
        }
        for w in qubits.windows(2) {
            let zz = PauliString::z_string(self.n, w);
            if self.stabilizes(&zz) != Some(true) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn fresh_state_is_all_zero() {
        let mut tab = Tableau::new(3);
        let mut r = rng();
        for q in 0..3 {
            assert!(
                !tab.measure_z(q, &mut r),
                "|000> must measure 0 deterministically"
            );
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut tab = Tableau::new(2);
        tab.x(1);
        let mut r = rng();
        assert!(!tab.measure_z(0, &mut r));
        assert!(tab.measure_z(1, &mut r));
    }

    #[test]
    fn hh_is_identity() {
        let mut tab = Tableau::new(1);
        tab.h(0);
        tab.h(0);
        let mut r = rng();
        assert!(!tab.measure_z(0, &mut r));
    }

    #[test]
    fn plus_state_measures_randomly_but_consistently() {
        // After measuring |+> once, re-measuring must repeat the outcome.
        for seed in 0..20 {
            let mut tab = Tableau::new(1);
            tab.h(0);
            let mut r = StdRng::seed_from_u64(seed);
            let first = tab.measure_z(0, &mut r);
            let second = tab.measure_z(0, &mut r);
            assert_eq!(first, second);
        }
    }

    #[test]
    fn plus_state_outcomes_are_actually_random() {
        let mut ones = 0;
        for seed in 0..200 {
            let mut tab = Tableau::new(1);
            tab.h(0);
            let mut r = StdRng::seed_from_u64(seed);
            if tab.measure_z(0, &mut r) {
                ones += 1;
            }
        }
        assert!((50..150).contains(&ones), "observed {ones}/200 ones");
    }

    #[test]
    fn bell_pair_correlations() {
        for seed in 0..20 {
            let mut tab = Tableau::new(2);
            tab.h(0);
            tab.cnot(0, 1);
            let mut r = StdRng::seed_from_u64(seed);
            let a = tab.measure_z(0, &mut r);
            let b = tab.measure_z(1, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ghz_stabilizers_verified() {
        let mut tab = Tableau::new(4);
        tab.prepare_ghz(&[0, 1, 2, 3]);
        assert!(tab.is_ghz(&[0, 1, 2, 3]));
        // Subsets of a GHZ state are not GHZ states.
        assert!(!tab.is_ghz(&[0, 1, 2]));
        assert!(!tab.is_ghz(&[0, 1]));
        // The X-string with a minus sign is not a stabilizer.
        let xs = PauliString::x_string(4, &[0, 1, 2, 3]).negated();
        assert_eq!(tab.stabilizes(&xs), Some(false));
        // An operator outside the group.
        let x0 = PauliString::x_string(4, &[0]);
        assert_eq!(tab.stabilizes(&x0), None);
    }

    #[test]
    fn ghz_measurement_collapse() {
        for seed in 0..10 {
            let mut tab = Tableau::new(3);
            tab.prepare_ghz(&[0, 1, 2]);
            let mut r = StdRng::seed_from_u64(seed);
            let a = tab.measure_z(0, &mut r);
            // Z-measuring one GHZ qubit collapses all others to match.
            assert_eq!(tab.measure_z(1, &mut r), a);
            assert_eq!(tab.measure_z(2, &mut r), a);
        }
    }

    #[test]
    fn z_after_h_gives_minus() {
        // Z|+> = |->, whose X stabilizer has a minus sign.
        let mut tab = Tableau::new(1);
        tab.h(0);
        tab.z(0);
        let x = PauliString::x_string(1, &[0]);
        assert_eq!(tab.stabilizes(&x), Some(false));
        assert!(!tab.is_ghz(&[0]));
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        // S|+> is stabilized by Y = iXZ; X alone no longer stabilizes.
        let mut tab = Tableau::new(1);
        tab.h(0);
        tab.s(0);
        let x = PauliString::x_string(1, &[0]);
        assert_eq!(tab.stabilizes(&x), None);
    }

    #[test]
    fn single_qubit_ghz_is_plus() {
        let mut tab = Tableau::new(2);
        tab.h(0);
        assert!(tab.is_ghz(&[0]));
        assert!(!tab.is_ghz(&[1]), "|0> is not |+>");
    }

    #[test]
    #[should_panic(expected = "control and target must differ")]
    fn cnot_rejects_same_qubit() {
        let mut tab = Tableau::new(2);
        tab.cnot(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gates_bounds_checked() {
        let mut tab = Tableau::new(2);
        tab.h(2);
    }
}
