use std::fmt;

use fusion_graph::NodeId;
use fusion_topology::Topology;
use serde::{Deserialize, Serialize};

/// Identifier of one demanded quantum state `ϱ` (paper §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DemandId(usize);

impl DemandId {
    /// Creates a demand id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        DemandId(index)
    }

    /// Raw index of this demand.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DemandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ϱ{}", self.0)
    }
}

/// One demanded quantum state between a quantum-user pair.
///
/// Multiple demands may share the same user pair; each demand is routed and
/// resourced independently (flow-like graphs of different states never share
/// quantum links, §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Demand {
    /// Stable identifier.
    pub id: DemandId,
    /// Source user `S`.
    pub source: NodeId,
    /// Destination user `D`.
    pub dest: NodeId,
}

impl Demand {
    /// Creates a demand.
    ///
    /// # Panics
    ///
    /// Panics if `source == dest`.
    #[must_use]
    pub fn new(id: DemandId, source: NodeId, dest: NodeId) -> Self {
        assert_ne!(source, dest, "a demand needs two distinct users");
        Demand { id, source, dest }
    }

    /// Builds the demand list from a generated topology (one state per
    /// generated user pair).
    #[must_use]
    pub fn from_topology(topology: &Topology) -> Vec<Demand> {
        topology
            .demands
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Demand::new(DemandId::new(i), s, d))
            .collect()
    }
}

impl fmt::Display for Demand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ⇄ {}", self.id, self.source, self.dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_topology::TopologyConfig;

    #[test]
    fn from_topology_enumerates_pairs() {
        let topo = TopologyConfig {
            num_switches: 15,
            num_user_pairs: 4,
            ..TopologyConfig::default()
        }
        .generate(1);
        let demands = Demand::from_topology(&topo);
        assert_eq!(demands.len(), 4);
        for (i, d) in demands.iter().enumerate() {
            assert_eq!(d.id.index(), i);
            assert_ne!(d.source, d.dest);
            assert!(topo.graph.node(d.source).is_user());
            assert!(topo.graph.node(d.dest).is_user());
        }
    }

    #[test]
    #[should_panic(expected = "two distinct users")]
    fn rejects_self_demand() {
        let _ = Demand::new(DemandId::new(0), NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn display_format() {
        let d = Demand::new(DemandId::new(2), NodeId::new(0), NodeId::new(5));
        assert_eq!(d.to_string(), "ϱ2: n0 ⇄ n5");
    }
}
