use fusion_graph::{search, NodeId, UnGraph};

use crate::model::{Link, Site};

/// Patches a possibly disconnected switch graph into a connected one by
/// repeatedly adding the geometrically shortest edge between two different
/// components.
///
/// Random generators occasionally strand a handful of switches; the paper's
/// evaluation implicitly assumes a connected substrate (unreachable demands
/// would just deflate every algorithm equally), so we bridge with the
/// cheapest physical fiber, mirroring how an operator would fix dead spots.
pub(crate) fn ensure_connected(graph: &mut UnGraph<Site, Link>) {
    if graph.node_count() < 2 {
        return;
    }
    loop {
        let (labels, k) = search::connected_components(graph);
        if k <= 1 {
            return;
        }
        // Closest pair of nodes across distinct components.
        let mut best: Option<(NodeId, NodeId, f64)> = None;
        for u in graph.node_ids() {
            for v in graph.node_ids() {
                if v <= u || labels[u.index()] == labels[v.index()] {
                    continue;
                }
                let d = graph.node(u).position.distance(graph.node(v).position);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((u, v, d));
                }
            }
        }
        let (u, v, d) = best.expect("k > 1 implies a cross-component pair exists");
        graph.add_edge(u, v, Link::new(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;

    #[test]
    fn connects_two_islands_with_shortest_bridge() {
        let mut g: UnGraph<Site, Link> = UnGraph::new();
        // Island 1: nodes at x = 0, 1; island 2: nodes at x = 5, 6.
        let a = g.add_node(Site::switch(Position::new(0.0, 0.0)));
        let b = g.add_node(Site::switch(Position::new(1.0, 0.0)));
        let c = g.add_node(Site::switch(Position::new(5.0, 0.0)));
        let d = g.add_node(Site::switch(Position::new(6.0, 0.0)));
        g.add_edge(a, b, Link::new(1.0));
        g.add_edge(c, d, Link::new(1.0));
        ensure_connected(&mut g);
        assert!(search::is_connected(&g));
        // The bridge must be b—c (distance 4), the closest cross pair.
        assert!(g.contains_edge(b, c));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn already_connected_is_untouched() {
        let mut g: UnGraph<Site, Link> = UnGraph::new();
        let a = g.add_node(Site::switch(Position::new(0.0, 0.0)));
        let b = g.add_node(Site::switch(Position::new(1.0, 0.0)));
        g.add_edge(a, b, Link::new(1.0));
        ensure_connected(&mut g);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn connects_many_singletons() {
        let mut g: UnGraph<Site, Link> = UnGraph::new();
        for i in 0..5 {
            g.add_node(Site::switch(Position::new(i as f64, 0.0)));
        }
        ensure_connected(&mut g);
        assert!(search::is_connected(&g));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let mut empty: UnGraph<Site, Link> = UnGraph::new();
        ensure_connected(&mut empty);
        let mut single: UnGraph<Site, Link> = UnGraph::new();
        single.add_node(Site::switch(Position::new(0.0, 0.0)));
        ensure_connected(&mut single);
        assert_eq!(single.edge_count(), 0);
    }
}
