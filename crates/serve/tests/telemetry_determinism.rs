//! The telemetry determinism oracle.
//!
//! The deterministic plane (counters and histograms) must be a pure
//! function of the work performed: two replays of the same seeded trace
//! against identical fresh states must produce **byte-identical**
//! [`fusion_telemetry::MetricsSnapshot`]s — same JSON, same FNV digest —
//! no matter how different their wall-clock profiles are. Spans live in
//! the separate timing plane and must never leak a key into a snapshot;
//! that separation is what makes the digest safe to compare at all.
//!
//! The reduced grid runs in tier-1 CI on every push; the wide grid
//! (`--ignored`) covers larger networks and longer traces in the
//! scheduled `wide-differential` workflow:
//!
//! ```text
//! cargo test --release -p fusion-serve --test telemetry_determinism -- --ignored
//! ```

use fusion_core::algorithms::{AdmitStrategy, RoutingConfig};
use fusion_core::{NetworkParams, QuantumNetwork};
use fusion_serve::{generate, replay, ReplayOptions, ServiceState, TraceConfig};
use fusion_telemetry::Registry;
use fusion_topology::{GeneratorKind, TopologyConfig};

use proptest::prelude::*;
use proptest::test_runner::{ProptestConfig, TestCaseError};

#[allow(clippy::too_many_arguments)]
fn build_state(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    strategy: AdmitStrategy,
    registry: Registry,
) -> ServiceState {
    let topo = TopologyConfig {
        num_switches: switches,
        num_user_pairs: pairs,
        avg_degree: 6.0,
        kind: if grid {
            GeneratorKind::Grid
        } else {
            GeneratorKind::default()
        },
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);
    ServiceState::with_telemetry(
        net,
        RoutingConfig {
            h,
            admit_strategy: strategy,
            ..RoutingConfig::n_fusion()
        },
        registry,
    )
}

/// Replays the same trace twice on identical fresh states with separate
/// enabled registries and asserts the deterministic plane is
/// byte-identical — while deliberately skewing the two runs' wall-clock
/// (extra spans on one side) to prove the timing plane cannot leak in.
#[allow(clippy::too_many_arguments)]
fn check_telemetry_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    incremental: bool,
    events: usize,
    trace_seed: u64,
    link_down_rate: f64,
    mc_rounds: usize,
) -> Result<(), TestCaseError> {
    let strategy = if incremental {
        AdmitStrategy::Incremental
    } else {
        AdmitStrategy::FromScratch
    };
    let trace_config = TraceConfig {
        events,
        seed: trace_seed,
        link_down_rate,
        ..TraceConfig::default()
    };
    let options = ReplayOptions {
        mc_rounds,
        ..ReplayOptions::default()
    };

    let run = |noise_spans: usize| {
        let registry = Registry::enabled();
        // Asymmetric span load: wall-time activity that must not show up
        // in the snapshot comparison below.
        for _ in 0..noise_spans {
            let _g = registry.span("noise");
        }
        let mut state = build_state(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            strategy,
            registry.clone(),
        );
        let trace = generate(state.network(), &trace_config);
        let report = replay(&mut state, &trace, &options);
        (registry.snapshot(), report, state.digest())
    };
    let (snap_a, report_a, digest_a) = run(0);
    let (snap_b, report_b, digest_b) = run(64);

    prop_assert_eq!(&report_a, &report_b, "replay reports diverged");
    prop_assert_eq!(digest_a == digest_b, true, "state digests diverged");
    prop_assert_eq!(
        snap_a.to_json(),
        snap_b.to_json(),
        "counter snapshots diverged"
    );
    prop_assert_eq!(snap_a.digest(), snap_b.digest());

    // The replay span recorded on the timing plane and only there.
    prop_assert!(
        snap_a.iter().all(|(name, _)| !name.contains("noise")
            && name != "serve.replay/count"
            && name != "serve.replay/total_ns"),
        "a span key leaked into the deterministic plane: {:?}",
        snap_a
    );

    // The snapshot is not vacuous: the replay layer recorded, and with
    // MC rounds on, so did the Monte Carlo layer.
    prop_assert_eq!(snap_a.value("serve.replay.events"), events as u64);
    if mc_rounds > 0 && snap_a.value("serve.replay.admitted") > 0 {
        prop_assert!(snap_a.value("mc.rounds") > 0, "MC counters missing");
    }
    if incremental && snap_a.value("serve.replay.arrivals") > 0 {
        prop_assert!(
            snap_a.value("serve.cache.admissions") > 0,
            "cache counters missing"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reduced tier-1 grid: small worlds, short traces, both strategies.
    #[test]
    fn snapshots_are_byte_identical_across_replays_reduced(
        switches in 10usize..24,
        pairs in 2usize..5,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000,
        p in 0.55f64..0.95,
        q in 0.7f64..1.0,
        h in 1usize..4,
        incremental in proptest::bool::ANY,
        events in 30usize..70,
        trace_seed in 0u64..1_000,
        link_down_rate in 0.0f64..0.15,
        mc_rounds in 0usize..12,
    ) {
        check_telemetry_case(
            switches, pairs, grid, seed, p, q, h, incremental,
            events, trace_seed, link_down_rate, mc_rounds,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wide grid for the scheduled `wide-differential` workflow: larger
    /// networks, longer traces, heavier MC sampling.
    #[test]
    #[ignore = "wide telemetry-determinism grid; minutes of runtime, run with -- --ignored"]
    fn snapshots_are_byte_identical_across_replays_wide(
        switches in 10usize..70,
        pairs in 2usize..8,
        grid in proptest::bool::ANY,
        seed in 0u64..10_000,
        p in 0.4f64..1.0,
        q in 0.5f64..1.0,
        h in 1usize..5,
        incremental in proptest::bool::ANY,
        events in 60usize..200,
        trace_seed in 0u64..10_000,
        link_down_rate in 0.0f64..0.25,
        mc_rounds in 0usize..32,
    ) {
        check_telemetry_case(
            switches, pairs, grid, seed, p, q, h, incremental,
            events, trace_seed, link_down_rate, mc_rounds,
        )?;
    }
}
