//! Protocol-level simulation of Phase III (paper §III-B) driving the
//! quantum substrate.
//!
//! Where [`crate::connectivity`] samples outcomes abstractly, this module
//! walks the actual entanglement machinery per round:
//!
//! 1. **Link generation** — every parallel link of every routed channel
//!    attempts heralded entanglement; successes become Bell pairs in an
//!    [`EntanglementRegistry`], one qubit pinned at each endpoint.
//! 2. **Fusion** — every switch in the flow measures all its qubits for
//!    the state in one GHZ-basis measurement. Fusions are simultaneous:
//!    a failed fusion destroys the Bell pairs it touched (at measurement
//!    time every involved qubit is still in its own pair), a successful
//!    fusion merges its surviving pairs; a switch left with a single live
//!    qubit measures it out (1-fusion).
//! 3. **Verification** — the state is established when the source and
//!    destination users hold qubits of one common GHZ group; the group is
//!    then trimmed to a Bell pair by Pauli-measuring spectators, ready for
//!    teleportation (§II-B).
//!
//! The simulator also recomputes each round's verdict with plain
//! percolation connectivity and asserts the two agree — the registry and
//! the paper's Eq.-1 world model are equivalent round by round.

use std::collections::HashMap;

use fusion_core::{DemandPlan, QuantumNetwork};
use fusion_graph::{DisjointSets, NodeId};
use fusion_quantum::{EntanglementRegistry, QubitId};
use rand::Rng;

/// Outcome of one protocol round for one demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Whether the demanded state was established.
    pub established: bool,
    /// Bell pairs generated across all channels this round.
    pub links_generated: usize,
    /// GHZ fusions attempted (arity >= 2).
    pub fusions_attempted: usize,
    /// GHZ fusions that succeeded.
    pub fusions_succeeded: usize,
}

/// Simulates one full protocol round for a routed demand, returning the
/// outcome. See the module docs for the phase structure.
///
/// # Panics
///
/// Panics (debug assertions) if the registry verdict ever disagrees with
/// percolation connectivity — that would mean the quantum bookkeeping and
/// the analytic model diverged.
pub fn simulate_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> RoundOutcome {
    let flow = &plan.flow;
    if flow.is_empty() {
        return RoundOutcome {
            established: false,
            links_generated: 0,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        };
    }

    let mut registry = EntanglementRegistry::new();
    // Per-node qubits pinned for this state, in flow-node order.
    let mut held: HashMap<NodeId, Vec<QubitId>> = HashMap::new();
    let mut links_generated = 0usize;

    // Phase III.1: heralded link-level entanglement on every parallel link.
    let mut live_links: Vec<(NodeId, NodeId)> = Vec::new();
    for (u, v, width) in flow.edges() {
        let Some((_, p)) = net.hop(u, v) else {
            continue;
        };
        for _ in 0..width {
            if rng.gen_bool(p) {
                let qu = registry.alloc();
                let qv = registry.alloc();
                registry.create_pair(qu, qv).expect("fresh qubits");
                held.entry(u).or_default().push(qu);
                held.entry(v).or_default().push(qv);
                live_links.push((u, v));
                links_generated += 1;
            }
        }
    }

    // Phase III.2: simultaneous fusions at every participating switch.
    let nodes = flow.nodes();
    let mut fusions_attempted = 0usize;
    let mut fusions_succeeded = 0usize;
    let mut switch_up: HashMap<NodeId, bool> = HashMap::new();
    for &node in &nodes {
        if !net.is_switch(node) {
            continue;
        }
        let up = rng.gen_bool(net.swap_success());
        switch_up.insert(node, up);
    }
    // Failed fusions resolve first: at measurement time every qubit is
    // still in its own Bell pair, so the damage is local to those pairs.
    // A pair between two failed switches dies at whichever fusion is
    // processed first; the second switch then simply holds dead qubits.
    for (&node, &up) in &switch_up {
        if up {
            continue;
        }
        let qubits: Vec<QubitId> = held
            .get(&node)
            .map(|qs| {
                qs.iter()
                    .copied()
                    .filter(|&q| registry.group_of(q).is_some())
                    .collect()
            })
            .unwrap_or_default();
        if qubits.is_empty() {
            continue;
        }
        fusions_attempted += usize::from(qubits.len() >= 2);
        registry
            .fail_fuse(&qubits)
            .expect("filtered to entangled qubits");
    }
    // Successful fusions merge whatever survived.
    for (&node, &up) in &switch_up {
        if !up {
            continue;
        }
        let qubits: Vec<QubitId> = held
            .get(&node)
            .map(|qs| {
                qs.iter()
                    .copied()
                    .filter(|&q| registry.group_of(q).is_some())
                    .collect()
            })
            .unwrap_or_default();
        match qubits.len() {
            0 => {}
            1 => {
                // Dangling link end: Pauli-measure it out (1-fusion).
                registry.measure_out(qubits[0]).expect("entangled");
            }
            _ => {
                fusions_attempted += 1;
                registry.fuse(&qubits).expect("entangled");
                fusions_succeeded += 1;
            }
        }
    }

    // Phase III.3: do the users share a group?
    let empty = Vec::new();
    let s_qubits = held.get(&flow.source()).unwrap_or(&empty);
    let d_qubits = held.get(&flow.sink()).unwrap_or(&empty);
    let mut witness: Option<(QubitId, QubitId)> = None;
    'outer: for &sq in s_qubits {
        for &dq in d_qubits {
            if registry.are_entangled(sq, dq) {
                witness = Some((sq, dq));
                break 'outer;
            }
        }
    }
    let established = witness.is_some();

    // Cross-check against percolation connectivity on the same outcomes.
    debug_assert_eq!(
        established,
        connectivity_verdict(net, plan, &live_links, &switch_up),
        "registry and percolation semantics diverged"
    );

    // Trim the shared group down to a Bell pair for teleportation.
    if let Some((sq, dq)) = witness {
        let group = registry.group_of(sq).expect("witnessed group");
        let members = registry.group_members(group).expect("live group");
        for member in members {
            if member != sq && member != dq {
                registry.measure_out(member).expect("member of live group");
            }
        }
        debug_assert!(registry.are_entangled(sq, dq));
        debug_assert_eq!(
            registry.group_of(sq).and_then(|g| registry.group_size(g)),
            Some(2),
            "trimming must leave exactly a Bell pair"
        );
    }

    RoundOutcome {
        established,
        links_generated,
        fusions_attempted,
        fusions_succeeded,
    }
}

/// Recomputes the round verdict by percolation over the sampled outcomes.
fn connectivity_verdict(
    net: &QuantumNetwork,
    plan: &DemandPlan,
    live_links: &[(NodeId, NodeId)],
    switch_up: &HashMap<NodeId, bool>,
) -> bool {
    let nodes = plan.flow.nodes();
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut sets = DisjointSets::new(nodes.len());
    let up = |n: NodeId| !net.is_switch(n) || *switch_up.get(&n).unwrap_or(&false);
    for &(u, v) in live_links {
        if up(u) && up(v) {
            sets.union(index[&u], index[&v]);
        }
    }
    match (index.get(&plan.flow.source()), index.get(&plan.flow.sink())) {
        (Some(&s), Some(&d)) => sets.same_set(s, d),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::{metrics, Demand, DemandId, WidthedPath};
    use fusion_graph::Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branching_plan(p: f64, q: f64) -> (QuantumNetwork, DemandPlan) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 1.0, 100);
        let v2 = b.switch(1.0, -1.0, 100);
        let d = b.user(2.0, 0.0);
        for (u, v) in [(s, v1), (v1, d), (s, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        for (path, w) in [
            (Path::new(vec![s, v1, d]), 2),
            (Path::new(vec![s, v2, d]), 1),
        ] {
            plan.flow.add_path(&path, w);
            plan.paths.push(WidthedPath::uniform(path, w));
        }
        (net, plan)
    }

    #[test]
    fn registry_rate_matches_eq1() {
        let (net, plan) = branching_plan(0.5, 0.8);
        let mut rng = StdRng::seed_from_u64(99);
        let rounds = 20_000;
        let mut hits = 0;
        for _ in 0..rounds {
            if simulate_round(&net, &plan, &mut rng).established {
                hits += 1;
            }
        }
        let measured = hits as f64 / rounds as f64;
        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        assert!(
            (measured - analytic).abs() < 0.015,
            "protocol {measured} vs Eq.1 {analytic}"
        );
    }

    #[test]
    fn outcome_counters_are_consistent() {
        let (net, plan) = branching_plan(0.9, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let out = simulate_round(&net, &plan, &mut rng);
            assert!(out.fusions_succeeded <= out.fusions_attempted);
            // 3 channel-links exist in total (width 2 + width 1) per side.
            assert!(out.links_generated <= 6);
            if out.established {
                assert!(out.links_generated >= 2, "a route needs both hops");
            }
        }
    }

    #[test]
    fn perfect_round_always_establishes() {
        let (net, plan) = branching_plan(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let out = simulate_round(&net, &plan, &mut rng);
            assert!(out.established);
            assert_eq!(out.fusions_attempted, out.fusions_succeeded);
        }
    }

    #[test]
    fn dead_network_never_establishes() {
        let (mut net, plan) = branching_plan(0.5, 0.5);
        net.set_uniform_link_success(Some(1e-9));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!simulate_round(&net, &plan, &mut rng).established);
        }
    }

    #[test]
    fn empty_plan_short_circuits() {
        let (net, plan) = branching_plan(0.5, 0.5);
        let empty = DemandPlan::empty(plan.demand);
        let mut rng = StdRng::seed_from_u64(4);
        let out = simulate_round(&net, &empty, &mut rng);
        assert!(!out.established);
        assert_eq!(out.links_generated, 0);
    }
}
