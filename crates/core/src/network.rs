use fusion_graph::{EdgeId, NodeId, UnGraph};
use fusion_topology::{Position, Role, Topology};
use serde::{Deserialize, Serialize};

/// Physical-layer parameters of the quantum network (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicsParams {
    /// Fiber attenuation constant: a single link of length `L` succeeds
    /// with probability `exp(-alpha · L)` (default `1e-4`).
    pub alpha: f64,
    /// Success probability `q` of one entanglement-swapping (fusion)
    /// operation at a switch, identical for every arity (default `0.9`).
    pub swap_success: f64,
    /// When set, every link succeeds with this probability regardless of
    /// length — used by the Fig. 8a sweep "to avoid the randomness brought
    /// by the network generation".
    pub uniform_link_success: Option<f64>,
}

impl Default for PhysicsParams {
    fn default() -> Self {
        PhysicsParams {
            alpha: 1e-4,
            swap_success: 0.9,
            uniform_link_success: None,
        }
    }
}

/// Parameters for deriving a [`QuantumNetwork`] from a generated topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Qubits in each switch's solid memory (the paper's main resource
    /// limitation; default 10).
    pub switch_capacity: u32,
    /// Physical-layer constants.
    pub physics: PhysicsParams,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            switch_capacity: 10,
            physics: PhysicsParams::default(),
        }
    }
}

/// Node payload of a quantum network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeProps {
    /// Switch or user.
    pub role: Role,
    /// Deployment position.
    pub position: Position,
    /// Communication qubits available for routing. Users are modelled with
    /// effectively unlimited memory (§III-D).
    pub capacity: u32,
}

/// Edge payload: one fiber span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeProps {
    /// Euclidean length in network units.
    pub length: f64,
}

/// Errors raised while constructing a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// An edge connected two quantum-users directly (§V-A forbids this).
    UserUserLink(NodeId, NodeId),
    /// Two parallel fibers between the same node pair; widths model
    /// parallelism instead.
    DuplicateEdge(NodeId, NodeId),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::SelfLoop(n) => write!(f, "self-loop at {n}"),
            NetworkError::UserUserLink(a, b) => {
                write!(f, "users {a} and {b} may not connect directly")
            }
            NetworkError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// The quantum network: sites, fiber spans, qubit capacities, and the
/// physical success model (paper §III).
///
/// Construct one from a generated [`Topology`] with
/// [`QuantumNetwork::from_topology`] or by hand with
/// [`QuantumNetwork::builder`].
///
/// # Examples
///
/// ```
/// use fusion_core::QuantumNetwork;
///
/// let mut b = QuantumNetwork::builder();
/// let s = b.user(0.0, 0.0);
/// let v = b.switch(1_000.0, 0.0, 10);
/// let d = b.user(2_000.0, 0.0);
/// b.link(s, v)?;
/// b.link(v, d)?;
/// let net = b.build();
/// assert_eq!(net.capacity(v), 10);
/// assert!(net.link_success(net.graph().find_edge(s, v).unwrap()) > 0.9);
/// # Ok::<(), fusion_core::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantumNetwork {
    graph: UnGraph<NodeProps, EdgeProps>,
    physics: PhysicsParams,
}

/// Capacity assigned to quantum-users: effectively unlimited, but small
/// enough that arithmetic on sums of capacities cannot overflow `u32`.
pub const USER_CAPACITY: u32 = u32::MAX / 4;

impl QuantumNetwork {
    /// Starts building a network by hand.
    #[must_use]
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// Derives a network from a generated topology: switches get
    /// `params.switch_capacity` qubits, users get unlimited memory, links
    /// keep their fiber lengths.
    #[must_use]
    pub fn from_topology(topology: &Topology, params: &NetworkParams) -> Self {
        let mut graph =
            UnGraph::with_capacity(topology.graph.node_count(), topology.graph.edge_count());
        for site in topology.graph.node_weights() {
            let capacity = match site.role {
                Role::Switch => params.switch_capacity,
                Role::User => USER_CAPACITY,
            };
            graph.add_node(NodeProps {
                role: site.role,
                position: site.position,
                capacity,
            });
        }
        for e in topology.graph.edges() {
            graph.add_edge(
                e.source,
                e.target,
                EdgeProps {
                    length: e.weight.length,
                },
            );
        }
        QuantumNetwork {
            graph,
            physics: params.physics,
        }
    }

    /// The underlying site graph.
    #[must_use]
    pub fn graph(&self) -> &UnGraph<NodeProps, EdgeProps> {
        &self.graph
    }

    /// Number of nodes (switches + users).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `true` if `node` is a quantum-user.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn is_user(&self, node: NodeId) -> bool {
        self.graph.node(node).role == Role::User
    }

    /// `true` if `node` is a switch.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn is_switch(&self, node: NodeId) -> bool {
        self.graph.node(node).role == Role::Switch
    }

    /// Qubit capacity of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn capacity(&self, node: NodeId) -> u32 {
        self.graph.node(node).capacity
    }

    /// Initial per-node capacity vector, indexed by node id.
    #[must_use]
    pub fn capacities(&self) -> Vec<u32> {
        self.graph.node_weights().map(|p| p.capacity).collect()
    }

    /// The largest switch capacity — the paper's `MAX_WIDTH` bound.
    #[must_use]
    pub fn max_switch_capacity(&self) -> u32 {
        self.graph
            .node_weights()
            .filter(|p| p.role == Role::Switch)
            .map(|p| p.capacity)
            .max()
            .unwrap_or(0)
    }

    /// The largest value of `capacity` over the switches — the `MAX_WIDTH`
    /// bound when routing against a residual-capacity vector instead of
    /// the built-in capacities. Equals [`max_switch_capacity`] when
    /// `capacity` is the full [`capacities`] vector.
    ///
    /// [`max_switch_capacity`]: QuantumNetwork::max_switch_capacity
    /// [`capacities`]: QuantumNetwork::capacities
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is shorter than the node count.
    #[must_use]
    pub fn max_switch_capacity_in(&self, capacity: &[u32]) -> u32 {
        assert!(
            capacity.len() >= self.node_count(),
            "capacity vector too short"
        );
        self.graph
            .node_ids()
            .filter(|&v| self.graph.node(v).role == Role::Switch)
            .map(|v| capacity[v.index()])
            .max()
            .unwrap_or(0)
    }

    /// Overwrites the qubit capacity of one node (service-layer capacity
    /// views; the routing algorithms themselves take capacity vectors).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn set_capacity(&mut self, node: NodeId, capacity: u32) {
        self.graph.node_mut(node).capacity = capacity;
    }

    /// A copy of this network whose per-node capacities are replaced by
    /// `capacity` — physics and wiring unchanged. This is the batch side
    /// of the residual-capacity equivalence oracle: running the pipeline
    /// on `with_capacities(residual)` must be byte-identical to running
    /// it on the original network against the `residual` vector.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is shorter than the node count.
    #[must_use]
    pub fn with_capacities(&self, capacity: &[u32]) -> QuantumNetwork {
        assert!(
            capacity.len() >= self.node_count(),
            "capacity vector too short"
        );
        let mut out = self.clone();
        for (v, &cap) in capacity.iter().enumerate().take(out.node_count()) {
            out.graph.node_mut(NodeId::new(v)).capacity = cap;
        }
        out
    }

    /// Physical parameters.
    #[must_use]
    pub fn physics(&self) -> &PhysicsParams {
        &self.physics
    }

    /// Swap (fusion) success probability `q`.
    #[must_use]
    pub fn swap_success(&self) -> f64 {
        self.physics.swap_success
    }

    /// Sets the swap success probability (Fig. 8b sweep).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn set_swap_success(&mut self, q: f64) {
        assert!(
            q > 0.0 && q <= 1.0,
            "swap success must be in (0,1], got {q}"
        );
        self.physics.swap_success = q;
    }

    /// Forces every link to the same success probability (Fig. 8a sweep),
    /// or restores the length-based model with `None`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn set_uniform_link_success(&mut self, p: Option<f64>) {
        if let Some(p) = p {
            assert!(
                p > 0.0 && p <= 1.0,
                "link success must be in (0,1], got {p}"
            );
        }
        self.physics.uniform_link_success = p;
    }

    /// Success probability of a single entanglement attempt over `edge`:
    /// `exp(-alpha·L)`, or the uniform override when set.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    #[must_use]
    pub fn link_success(&self, edge: EdgeId) -> f64 {
        if let Some(p) = self.physics.uniform_link_success {
            return p;
        }
        let length = self.graph.edge(edge).weight.length;
        // Fully lossless (p = 1) only for zero-length fibers; clamp away
        // from zero so metrics stay in (0, 1].
        (-self.physics.alpha * length).exp().max(1e-12)
    }

    /// Success probability of a width-`w` channel over `edge`:
    /// `1 - (1 - p)^w` (§III-C).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds or `w == 0`.
    #[must_use]
    pub fn channel_success(&self, edge: EdgeId, width: u32) -> f64 {
        assert!(width > 0, "channel width must be positive");
        let p = self.link_success(edge);
        1.0 - (1.0 - p).powi(width as i32)
    }

    /// Looks up the edge between `u` and `v` and returns it with its
    /// single-link success probability.
    #[must_use]
    pub fn hop(&self, u: NodeId, v: NodeId) -> Option<(EdgeId, f64)> {
        let e = self.graph.find_edge(u, v)?;
        Some((e, self.link_success(e)))
    }
}

/// Incremental constructor for hand-built networks (tests, examples).
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    graph: UnGraph<NodeProps, EdgeProps>,
    physics: PhysicsParams,
}

impl NetworkBuilder {
    /// Creates an empty builder with default physics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the physical parameters.
    pub fn physics(&mut self, physics: PhysicsParams) -> &mut Self {
        self.physics = physics;
        self
    }

    /// Adds a switch with the given position and qubit capacity.
    pub fn switch(&mut self, x: f64, y: f64, capacity: u32) -> NodeId {
        self.graph.add_node(NodeProps {
            role: Role::Switch,
            position: Position::new(x, y),
            capacity,
        })
    }

    /// Adds a quantum-user (unlimited memory).
    pub fn user(&mut self, x: f64, y: f64) -> NodeId {
        self.graph.add_node(NodeProps {
            role: Role::User,
            position: Position::new(x, y),
            capacity: USER_CAPACITY,
        })
    }

    /// Connects two nodes with a fiber whose length is their Euclidean
    /// distance.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, user-user links, and duplicate edges.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, NetworkError> {
        let d = self
            .graph
            .node(a)
            .position
            .distance(self.graph.node(b).position);
        self.link_with_length(a, b, d)
    }

    /// Connects two nodes with an explicit fiber length (which may differ
    /// from the geometric distance, e.g. for routed fiber).
    ///
    /// # Errors
    ///
    /// Rejects self-loops, user-user links, and duplicate edges.
    pub fn link_with_length(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: f64,
    ) -> Result<EdgeId, NetworkError> {
        if a == b {
            return Err(NetworkError::SelfLoop(a));
        }
        if self.graph.node(a).role == Role::User && self.graph.node(b).role == Role::User {
            return Err(NetworkError::UserUserLink(a, b));
        }
        if self.graph.contains_edge(a, b) {
            return Err(NetworkError::DuplicateEdge(a, b));
        }
        Ok(self.graph.add_edge(a, b, EdgeProps { length }))
    }

    /// Finishes construction.
    #[must_use]
    pub fn build(self) -> QuantumNetwork {
        QuantumNetwork {
            graph: self.graph,
            physics: self.physics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_topology::TopologyConfig;

    #[test]
    fn builder_roundtrip() {
        let mut b = QuantumNetwork::builder();
        let u = b.user(0.0, 0.0);
        let s = b.switch(3.0, 4.0, 8);
        let e = b.link(u, s).unwrap();
        let net = b.build();
        assert!(net.is_user(u));
        assert!(net.is_switch(s));
        assert_eq!(net.capacity(s), 8);
        assert_eq!(net.capacity(u), USER_CAPACITY);
        assert_eq!(net.graph().edge(e).weight.length, 5.0);
        assert_eq!(net.max_switch_capacity(), 8);
    }

    #[test]
    fn builder_rejects_bad_links() {
        let mut b = QuantumNetwork::builder();
        let u1 = b.user(0.0, 0.0);
        let u2 = b.user(1.0, 0.0);
        let s = b.switch(2.0, 0.0, 4);
        assert_eq!(b.link(u1, u1), Err(NetworkError::SelfLoop(u1)));
        assert_eq!(b.link(u1, u2), Err(NetworkError::UserUserLink(u1, u2)));
        b.link(u1, s).unwrap();
        assert_eq!(b.link(u1, s), Err(NetworkError::DuplicateEdge(u1, s)));
        assert_eq!(b.link(s, u1), Err(NetworkError::DuplicateEdge(s, u1)));
    }

    #[test]
    fn link_success_follows_exponential_law() {
        let mut b = QuantumNetwork::builder();
        let s1 = b.switch(0.0, 0.0, 4);
        let s2 = b.switch(10_000.0, 0.0, 4);
        let e = b.link(s1, s2).unwrap();
        let net = b.build();
        // alpha = 1e-4, L = 10_000 => p = e^-1.
        assert!((net.link_success(e) - (-1.0_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn uniform_override_and_sweeps() {
        let mut b = QuantumNetwork::builder();
        let s1 = b.switch(0.0, 0.0, 4);
        let s2 = b.switch(5_000.0, 0.0, 4);
        let e = b.link(s1, s2).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.3));
        assert_eq!(net.link_success(e), 0.3);
        net.set_uniform_link_success(None);
        assert!(net.link_success(e) > 0.3);
        net.set_swap_success(0.5);
        assert_eq!(net.swap_success(), 0.5);
    }

    #[test]
    fn channel_success_saturates_with_width() {
        let mut b = QuantumNetwork::builder();
        let s1 = b.switch(0.0, 0.0, 4);
        let s2 = b.switch(0.0, 0.0, 4);
        let e = b.link_with_length(s1, s2, 20_000.0).unwrap();
        let net = b.build();
        let p = net.link_success(e);
        let c1 = net.channel_success(e, 1);
        let c2 = net.channel_success(e, 2);
        let c8 = net.channel_success(e, 8);
        assert!((c1 - p).abs() < 1e-12);
        assert!((c2 - (1.0 - (1.0 - p) * (1.0 - p))).abs() < 1e-12);
        assert!(c1 < c2 && c2 < c8 && c8 < 1.0);
    }

    #[test]
    fn from_topology_assigns_capacities() {
        let config = TopologyConfig {
            num_switches: 20,
            num_user_pairs: 3,
            ..TopologyConfig::default()
        };
        let topo = config.generate(5);
        let params = NetworkParams {
            switch_capacity: 12,
            ..NetworkParams::default()
        };
        let net = QuantumNetwork::from_topology(&topo, &params);
        assert_eq!(net.node_count(), topo.graph.node_count());
        for s in topo.switch_ids() {
            assert_eq!(net.capacity(s), 12);
        }
        for u in topo.user_ids() {
            assert_eq!(net.capacity(u), USER_CAPACITY);
        }
        assert_eq!(net.graph().edge_count(), topo.graph.edge_count());
    }

    #[test]
    fn hop_lookup() {
        let mut b = QuantumNetwork::builder();
        let s1 = b.switch(0.0, 0.0, 4);
        let s2 = b.switch(100.0, 0.0, 4);
        let s3 = b.switch(200.0, 0.0, 4);
        b.link(s1, s2).unwrap();
        let net = b.build();
        assert!(net.hop(s1, s2).is_some());
        assert!(net.hop(s1, s3).is_none());
        let (_, p) = net.hop(s2, s1).unwrap();
        assert!(p > 0.98);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let mut b = QuantumNetwork::builder();
        let s1 = b.switch(0.0, 0.0, 4);
        let s2 = b.switch(1.0, 0.0, 4);
        let e = b.link(s1, s2).unwrap();
        let _ = b.build().channel_success(e, 0);
    }
}
