//! The residual-capacity ledger: exact per-node qubit and per-edge
//! channel accounting for the live plan set.
//!
//! The ledger is the service layer's single source of truth for "what is
//! free right now". Admission charges a plan's [`ResourceUsage`] against
//! it, departure releases the identical value, and both operations are
//! all-or-nothing: a charge that would overdraw any node leaves the
//! ledger untouched. Everything is integral, so `release ∘ charge` is the
//! identity *exactly* — the conservation oracle in
//! `crates/serve/tests/service_oracle.rs` holds with `==`, not within an
//! epsilon.

use fusion_core::{QuantumNetwork, ResourceUsage};
use fusion_graph::{EdgeId, NodeId};

/// Why a ledger operation was refused. Refused operations are no-ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A charge asked for more qubits than a node has free.
    NodeOverdraft {
        /// The overdrawn node.
        node: NodeId,
        /// Qubits free at the node.
        free: u32,
        /// Qubits the charge asked for.
        requested: u32,
    },
    /// A release returned more qubits than a node has outstanding.
    NodeUnderflow {
        /// The over-released node.
        node: NodeId,
        /// Qubits currently charged at the node.
        used: u32,
        /// Qubits the release tried to return.
        returned: u32,
    },
    /// A release returned more channels than an edge has outstanding.
    EdgeUnderflow {
        /// The over-released edge.
        edge: EdgeId,
        /// Channels currently charged on the edge.
        used: u32,
        /// Channels the release tried to return.
        returned: u32,
    },
    /// A usage entry referenced a node pair with no fiber between them.
    UnknownEdge(NodeId, NodeId),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::NodeOverdraft {
                node,
                free,
                requested,
            } => write!(
                f,
                "node {node}: requested {requested} of {free} free qubits"
            ),
            LedgerError::NodeUnderflow {
                node,
                used,
                returned,
            } => write!(f, "node {node}: released {returned} of {used} used qubits"),
            LedgerError::EdgeUnderflow {
                edge,
                used,
                returned,
            } => write!(
                f,
                "edge {edge}: released {returned} of {used} used channels"
            ),
            LedgerError::UnknownEdge(u, v) => write!(f, "no fiber between {u} and {v}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Exact residual-capacity accounting over one network: per-node free
/// qubits and per-edge channels in use.
///
/// Node residuals constrain admission (the routing pipeline takes the
/// [`residual`](ResidualLedger::residual) vector as its capacity budget);
/// edge usage has no intrinsic bound — a fiber carries as many channels
/// as its endpoints can pin — and is tracked so departures and the
/// conservation oracle can audit channel totals exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualLedger {
    /// Built-in per-node capacities (the restore point).
    capacity: Vec<u32>,
    /// Free qubits per node; `free[v] <= capacity[v]` always.
    free: Vec<u32>,
    /// Channels in use per edge, indexed by `EdgeId`.
    edge_used: Vec<u32>,
}

impl ResidualLedger {
    /// A pristine ledger over `net`: everything free, nothing in use.
    #[must_use]
    pub fn new(net: &QuantumNetwork) -> Self {
        let capacity = net.capacities();
        ResidualLedger {
            free: capacity.clone(),
            capacity,
            edge_used: vec![0; net.graph().edge_count()],
        }
    }

    /// Residual qubits per node — the capacity budget admissions route
    /// against.
    #[must_use]
    pub fn residual(&self) -> &[u32] {
        &self.free
    }

    /// Built-in capacities (what [`residual`](ResidualLedger::residual)
    /// returns on a pristine ledger).
    #[must_use]
    pub fn capacities(&self) -> &[u32] {
        &self.capacity
    }

    /// Free qubits at one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn node_free(&self, node: NodeId) -> u32 {
        self.free[node.index()]
    }

    /// Channels in use on one edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds.
    #[must_use]
    pub fn edge_used(&self, edge: EdgeId) -> u32 {
        self.edge_used[edge.index()]
    }

    /// Total channels in use across all edges.
    #[must_use]
    pub fn total_channels_used(&self) -> u64 {
        self.edge_used.iter().map(|&w| u64::from(w)).sum()
    }

    /// `true` when nothing is charged: every node back at capacity and
    /// every edge channel-free.
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        self.free == self.capacity && self.edge_used.iter().all(|&w| w == 0)
    }

    /// Resolves every edge entry of `usage` to its `EdgeId`, failing on
    /// pairs the network has no fiber for.
    fn resolve_edges(
        &self,
        net: &QuantumNetwork,
        usage: &ResourceUsage,
    ) -> Result<Vec<(EdgeId, u32)>, LedgerError> {
        usage
            .edge_channels
            .iter()
            .map(|&((u, v), w)| {
                net.graph()
                    .find_edge(u, v)
                    .map(|e| (e, w))
                    .ok_or(LedgerError::UnknownEdge(u, v))
            })
            .collect()
    }

    /// Charges a plan's usage: subtracts qubits from every listed node and
    /// adds channels to every listed edge. All-or-nothing — on error the
    /// ledger is unchanged.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NodeOverdraft`] if any node lacks the free qubits,
    /// [`LedgerError::UnknownEdge`] if a usage entry names a non-edge.
    pub fn charge(
        &mut self,
        net: &QuantumNetwork,
        usage: &ResourceUsage,
    ) -> Result<(), LedgerError> {
        let edges = self.resolve_edges(net, usage)?;
        for &(node, q) in &usage.node_qubits {
            let free = self.free[node.index()];
            if free < q {
                return Err(LedgerError::NodeOverdraft {
                    node,
                    free,
                    requested: q,
                });
            }
        }
        for &(node, q) in &usage.node_qubits {
            self.free[node.index()] -= q;
        }
        for (e, w) in edges {
            self.edge_used[e.index()] += w;
        }
        Ok(())
    }

    /// Releases a plan's usage: the exact inverse of
    /// [`charge`](ResidualLedger::charge). All-or-nothing — on error the
    /// ledger is unchanged.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NodeUnderflow`] / [`LedgerError::EdgeUnderflow`] if
    /// the release exceeds what is outstanding (a double-release or a
    /// foreign usage), [`LedgerError::UnknownEdge`] for non-edges.
    pub fn release(
        &mut self,
        net: &QuantumNetwork,
        usage: &ResourceUsage,
    ) -> Result<(), LedgerError> {
        let edges = self.resolve_edges(net, usage)?;
        for &(node, q) in &usage.node_qubits {
            let used = self.capacity[node.index()] - self.free[node.index()];
            if used < q {
                return Err(LedgerError::NodeUnderflow {
                    node,
                    used,
                    returned: q,
                });
            }
        }
        for &(e, w) in &edges {
            let used = self.edge_used[e.index()];
            if used < w {
                return Err(LedgerError::EdgeUnderflow {
                    edge: e,
                    used,
                    returned: w,
                });
            }
        }
        for &(node, q) in &usage.node_qubits {
            self.free[node.index()] += q;
        }
        for (e, w) in edges {
            self.edge_used[e.index()] -= w;
        }
        Ok(())
    }

    /// Audits the ledger against a set of live usages: per node, charged
    /// qubits must equal the sum of live usages; per edge, charged
    /// channels likewise. Returns the first discrepancy as an error
    /// message, `Ok(())` when the books balance.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn audit<'a>(
        &self,
        net: &QuantumNetwork,
        live: impl Iterator<Item = &'a ResourceUsage>,
    ) -> Result<(), String> {
        let mut node_sum = vec![0u64; self.capacity.len()];
        let mut edge_sum = vec![0u64; self.edge_used.len()];
        for usage in live {
            for &(node, q) in &usage.node_qubits {
                node_sum[node.index()] += u64::from(q);
            }
            for &((u, v), w) in &usage.edge_channels {
                let e = net
                    .graph()
                    .find_edge(u, v)
                    .ok_or_else(|| format!("live usage references non-edge {u}-{v}"))?;
                edge_sum[e.index()] += u64::from(w);
            }
        }
        for (i, &sum) in node_sum.iter().enumerate() {
            let charged = u64::from(self.capacity[i]) - u64::from(self.free[i]);
            if charged != sum {
                return Err(format!(
                    "node n{i}: ledger holds {charged} charged qubits, live plans pin {sum}"
                ));
            }
        }
        for (i, &sum) in edge_sum.iter().enumerate() {
            if u64::from(self.edge_used[i]) != sum {
                return Err(format!(
                    "edge e{i}: ledger holds {} channels, live plans pin {sum}",
                    self.edge_used[i]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::{Demand, DemandId, DemandPlan, WidthedPath};
    use fusion_graph::Path;

    fn net3() -> (QuantumNetwork, NodeId, NodeId, NodeId) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v = b.switch(1.0, 0.0, 10);
        let d = b.user(2.0, 0.0);
        b.link(s, v).unwrap();
        b.link(v, d).unwrap();
        (b.build(), s, v, d)
    }

    fn width2_plan(s: NodeId, v: NodeId, d: NodeId) -> DemandPlan {
        let mut plan = DemandPlan::empty(Demand::new(DemandId::new(0), s, d));
        let path = Path::new(vec![s, v, d]);
        plan.flow.add_path(&path, 2);
        plan.paths.push(WidthedPath::uniform(path, 2));
        plan
    }

    #[test]
    fn charge_release_is_identity() {
        let (net, s, v, d) = net3();
        let mut ledger = ResidualLedger::new(&net);
        let pristine = ledger.clone();
        let usage = width2_plan(s, v, d).resource_usage();
        ledger.charge(&net, &usage).unwrap();
        assert!(!ledger.is_pristine());
        assert_eq!(ledger.node_free(v), 6); // 10 - 2 hops x width 2
        assert_eq!(ledger.total_channels_used(), 4);
        ledger.release(&net, &usage).unwrap();
        assert_eq!(ledger, pristine);
        assert!(ledger.is_pristine());
    }

    #[test]
    fn overdraft_is_a_no_op() {
        let (net, s, v, d) = net3();
        let mut ledger = ResidualLedger::new(&net);
        let usage = width2_plan(s, v, d).resource_usage();
        ledger.charge(&net, &usage).unwrap();
        ledger.charge(&net, &usage).unwrap(); // 8 of 10 at the switch
        let before = ledger.clone();
        let err = ledger.charge(&net, &usage).unwrap_err();
        assert_eq!(
            err,
            LedgerError::NodeOverdraft {
                node: v,
                free: 2,
                requested: 4
            }
        );
        assert_eq!(ledger, before, "failed charge must not move the ledger");
    }

    #[test]
    fn release_underflow_is_a_no_op() {
        let (net, s, v, d) = net3();
        let mut ledger = ResidualLedger::new(&net);
        let usage = width2_plan(s, v, d).resource_usage();
        let err = ledger.release(&net, &usage).unwrap_err();
        assert!(matches!(err, LedgerError::NodeUnderflow { .. }));
        assert!(ledger.is_pristine());
    }

    #[test]
    fn unknown_edge_rejected() {
        let (net, s, _v, d) = net3();
        let mut ledger = ResidualLedger::new(&net);
        let usage = ResourceUsage {
            node_qubits: vec![(s, 1), (d, 1)],
            edge_channels: vec![((s, d), 1)],
        };
        assert_eq!(
            ledger.charge(&net, &usage).unwrap_err(),
            LedgerError::UnknownEdge(s, d)
        );
        assert!(ledger.is_pristine());
    }

    #[test]
    fn audit_balances_live_plans() {
        let (net, s, v, d) = net3();
        let mut ledger = ResidualLedger::new(&net);
        let usage = width2_plan(s, v, d).resource_usage();
        ledger.charge(&net, &usage).unwrap();
        ledger.audit(&net, std::iter::once(&usage)).unwrap();
        // A missing live plan unbalances the books.
        assert!(ledger.audit(&net, std::iter::empty()).is_err());
    }
}
