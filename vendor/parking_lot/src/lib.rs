//! Offline stub of `parking_lot`: a `Mutex` with the `parking_lot` calling
//! convention (`lock()` returns the guard directly, no poisoning) backed by
//! `std::sync::Mutex`. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
