//! Micro-benchmarks of the building blocks: Algorithm 1 path search,
//! Algorithm 2 selection, Eq.-1 flow evaluation (vs exact enumeration and
//! the classic DP), the entanglement registry, the stabilizer tableau, and
//! one Monte Carlo protocol round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::workloads::{Algorithm, ExperimentConfig};
use fusion_core::algorithms::{alg1, alg2};
use fusion_core::{metrics, SwapMode, WidthedPath};
use fusion_graph::Path;
use fusion_quantum::stabilizer::{fuse_groups, Tableau};
use fusion_quantum::EntanglementRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_alg1(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let (net, demands) = config.instance(0);
    let caps = net.capacities();
    let cons = alg1::PathConstraints::default();
    let d = demands[0];
    let mut group = c.benchmark_group("alg1_largest_rate_path");
    for width in [1u32, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| {
                black_box(alg1::largest_rate_path(
                    &net, d.source, d.dest, w, &caps, &cons,
                ))
            });
        });
        // Same query on a reused scratch: the allocation-free hot path
        // Algorithm 2 runs on.
        let mut scratch = fusion_graph::SearchScratch::with_capacity(net.node_count());
        group.bench_with_input(
            BenchmarkId::new("reused_scratch", width),
            &width,
            |b, &w| {
                b.iter(|| {
                    black_box(alg1::largest_rate_path_with(
                        &mut scratch,
                        &net,
                        d.source,
                        d.dest,
                        w,
                        &caps,
                        &cons,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_alg2(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let (net, demands) = config.instance(0);
    let caps = net.capacities();
    c.bench_function("alg2_paths_selection", |b| {
        b.iter(|| {
            black_box(alg2::paths_selection(
                &net,
                &demands,
                &caps,
                config.h,
                5,
                SwapMode::NFusion,
            ))
        });
    });
}

fn routed_flow() -> (fusion_core::QuantumNetwork, fusion_core::DemandPlan) {
    let config = ExperimentConfig::quick();
    let (net, demands) = config.instance(0);
    let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
    let dp = plan
        .plans
        .into_iter()
        .find(|p| !p.is_unserved())
        .expect("quick instance routes something");
    (net, dp)
}

fn bench_rate_evaluators(c: &mut Criterion) {
    let (net, dp) = routed_flow();
    let mut group = c.benchmark_group("rate_evaluation");
    group.bench_function("eq1_flow_rate", |b| {
        b.iter(|| black_box(metrics::flow_rate(&net, &dp.flow)));
    });
    if let Some(wp) = dp.paths.first() {
        group.bench_function("classic_single_lane", |b| {
            b.iter(|| black_box(metrics::classic::success_probability(&net, wp)));
        });
        group.bench_function("classic_adaptive_dp", |b| {
            b.iter(|| black_box(metrics::classic::success_probability_adaptive(&net, wp)));
        });
        let wide = WidthedPath::uniform(wp.path.clone(), 5);
        group.bench_function("nfusion_path_rate_w5", |b| {
            b.iter(|| black_box(metrics::widthed_path_rate(&net, &wide)));
        });
    }
    group.finish();
}

fn bench_exact_vs_eq1(c: &mut Criterion) {
    // A fixed 2-branch series-parallel flow where exact enumeration is
    // tractable, comparing evaluator costs.
    let mut b = fusion_core::QuantumNetwork::builder();
    let s = b.user(0.0, 0.0);
    let v1 = b.switch(1.0, 1.0, 10);
    let v2 = b.switch(1.0, -1.0, 10);
    let d = b.user(2.0, 0.0);
    for (x, y) in [(s, v1), (v1, d), (s, v2), (v2, d)] {
        b.link(x, y).unwrap();
    }
    let mut net = b.build();
    net.set_uniform_link_success(Some(0.5));
    let mut flow = fusion_core::FlowGraph::new(s, d);
    flow.add_path(&Path::new(vec![s, v1, d]), 2);
    flow.add_path(&Path::new(vec![s, v2, d]), 2);
    let mut group = c.benchmark_group("eq1_vs_exact");
    group.bench_function("eq1", |b| {
        b.iter(|| black_box(metrics::flow_rate(&net, &flow)));
    });
    group.bench_function("exact_enumeration", |b| {
        b.iter(|| black_box(fusion_sim::exact::flow_reliability(&net, &flow)));
    });
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    c.bench_function("registry_chain_of_swaps", |b| {
        b.iter(|| {
            let mut reg = EntanglementRegistry::new();
            let mut prev = {
                let a = reg.alloc();
                let m = reg.alloc();
                reg.create_pair(a, m).unwrap();
                m
            };
            for _ in 0..16 {
                let l = reg.alloc();
                let r = reg.alloc();
                reg.create_pair(l, r).unwrap();
                reg.fuse(&[prev, l]).unwrap();
                prev = r;
            }
            black_box(reg.group_count())
        });
    });
}

fn bench_stabilizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("ghz_fuse", n), &n, |b, &n| {
            b.iter(|| {
                let mut tab = Tableau::new(2 * n);
                let g1: Vec<usize> = (0..n).collect();
                let g2: Vec<usize> = (n..2 * n).collect();
                tab.prepare_ghz(&g1);
                tab.prepare_ghz(&g2);
                let mut rng = StdRng::seed_from_u64(7);
                fuse_groups(&mut tab, &[g1, g2], &[0, n], &mut rng);
                black_box(tab.qubit_count())
            });
        });
    }
    group.finish();
}

fn bench_monte_carlo_round(c: &mut Criterion) {
    let (net, dp) = routed_flow();
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("mc_flow_round", |b| {
        b.iter(|| {
            black_box(fusion_sim::connectivity::sample_flow_round(
                &net, &dp, &mut rng,
            ))
        });
    });
    // The reusable sampler: resolved lookups + generational union-find,
    // i.e. what estimate_plan actually runs per round.
    let mut sampler = fusion_sim::FlowSampler::new(&net, &dp);
    let mut rng_s = StdRng::seed_from_u64(3);
    c.bench_function("mc_flow_round_reused_sampler", |b| {
        b.iter(|| black_box(sampler.sample(&mut rng_s)));
    });
    let mut rng2 = StdRng::seed_from_u64(4);
    c.bench_function("protocol_registry_round", |b| {
        b.iter(|| black_box(fusion_sim::protocol::simulate_round(&net, &dp, &mut rng2)));
    });
}

criterion_group!(
    benches,
    bench_alg1,
    bench_alg2,
    bench_rate_evaluators,
    bench_exact_vs_eq1,
    bench_registry,
    bench_stabilizer,
    bench_monte_carlo_round
);
criterion_main!(benches);
