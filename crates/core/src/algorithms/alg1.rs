//! Algorithm 1 — Largest Entanglement Rate path at a fixed width.
//!
//! A max-product Dijkstra over the network: edges contribute their
//! width-`w` channel success `1 - (1 - p_e)^w`, transited switches
//! contribute the swap success `q`. Because every factor lies in `(0, 1]`
//! the metric is monotonically non-increasing along a path, which is the
//! correctness condition the paper sketches.
//!
//! Capacity constraints (paper lines 2 and 9): both endpoints need `w`
//! qubits, every intermediate switch needs `2w` (it pins `w` qubits on each
//! side of the fused channel pair).

use std::collections::HashSet;

use fusion_graph::{search, Metric, NodeId, Path, SearchScratch};

use crate::network::QuantumNetwork;

/// Extra constraints used by Algorithm 2's Yen deviations.
#[derive(Debug, Clone, Default)]
pub struct PathConstraints {
    /// Nodes that may not appear anywhere in the path (root-prefix nodes).
    pub banned_nodes: HashSet<NodeId>,
    /// Undirected hops that may not be used, stored normalized
    /// `(min, max)`.
    pub banned_hops: HashSet<(NodeId, NodeId)>,
}

impl PathConstraints {
    /// Normalizes an undirected hop key.
    #[must_use]
    pub fn hop_key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Bans the undirected hop `{u, v}`.
    pub fn ban_hop(&mut self, u: NodeId, v: NodeId) {
        self.banned_hops.insert(Self::hop_key(u, v));
    }

    /// Bans `node` from appearing in the path.
    pub fn ban_node(&mut self, node: NodeId) {
        self.banned_nodes.insert(node);
    }

    /// `true` if the undirected hop `{u, v}` is banned.
    #[must_use]
    pub fn hop_banned(&self, u: NodeId, v: NodeId) -> bool {
        self.banned_hops.contains(&Self::hop_key(u, v))
    }
}

/// Finds the width-`w` path from `source` to `dest` with the largest
/// entanglement rate, subject to per-node remaining `capacity` and the
/// deviation `constraints`.
///
/// Returns `None` when no feasible path exists. The returned metric is the
/// product of channel successes and transit swap factors; when `source` is
/// a switch (Algorithm 2 spur searches) its own swap factor is *not*
/// included — the caller accounts for it when joining segments.
///
/// # Panics
///
/// Panics if `capacity` is shorter than the node count or `width == 0`.
#[must_use]
pub fn largest_rate_path(
    net: &QuantumNetwork,
    source: NodeId,
    dest: NodeId,
    width: u32,
    capacity: &[u32],
    constraints: &PathConstraints,
) -> Option<(Path, Metric)> {
    let mut scratch = SearchScratch::with_capacity(net.node_count());
    largest_rate_path_with(
        &mut scratch,
        net,
        source,
        dest,
        width,
        capacity,
        constraints,
    )
}

/// [`largest_rate_path`] with caller-provided search scratch: hot callers
/// (Algorithm 2's Yen deviations, batched per-demand routing) reuse one
/// arena across queries instead of allocating per call.
///
/// # Panics
///
/// Panics if `capacity` is shorter than the node count or `width == 0`.
#[must_use]
pub fn largest_rate_path_with(
    scratch: &mut SearchScratch,
    net: &QuantumNetwork,
    source: NodeId,
    dest: NodeId,
    width: u32,
    capacity: &[u32],
    constraints: &PathConstraints,
) -> Option<(Path, Metric)> {
    assert!(width > 0, "width must be positive");
    assert!(
        capacity.len() >= net.node_count(),
        "capacity vector too short"
    );
    if source == dest {
        return None;
    }
    // Paper line 2: endpoints must hold at least `w` qubits.
    if capacity[source.index()] < width || capacity[dest.index()] < width {
        return None;
    }
    if constraints.banned_nodes.contains(&source) || constraints.banned_nodes.contains(&dest) {
        return None;
    }

    let q = net.swap_success();
    let best = search::max_product_dijkstra_with(
        scratch,
        net.graph(),
        source,
        |from, e| {
            let to = e.other(from);
            if constraints.banned_nodes.contains(&to) || constraints.hop_banned(from, to) {
                return None;
            }
            // Entering `to` as an intermediate pins 2w qubits there; only
            // the destination gets away with w (paper line 9). Users other
            // than the destination cannot relay at all.
            if to != dest {
                if net.is_user(to) {
                    return None;
                }
                if capacity[to.index()] < 2 * width {
                    return None;
                }
            }
            Some(net.channel_success(e.id, width))
        },
        |via| {
            // Transit through a node costs one fusion; users never relay.
            net.is_switch(via).then_some(q)
        },
    );
    best.path_to(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::path_rate;

    /// Network of Fig. 3 flavour: two users, four switches, a short lossy
    /// route and a longer reliable route.
    ///
    /// ```text
    ///   S -- v0 -- v1 -- D        (low per-link success)
    ///    \              /
    ///     v2 ---------- v3        (high per-link success)
    /// ```
    fn two_route_net(cap: u32) -> (QuantumNetwork, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v0 = b.switch(1.0, 1.0, cap);
        let v1 = b.switch(2.0, 1.0, cap);
        let v2 = b.switch(1.0, -1.0, cap);
        let v3 = b.switch(2.0, -1.0, cap);
        let d = b.user(3.0, 0.0);
        // Short route: S-v0-v1-D ; alternative: S-v2-v3-D.
        for (u, v, len) in [
            (s, v0, 8_000.0),
            (v0, v1, 8_000.0),
            (v1, d, 8_000.0),
            (s, v2, 1_000.0),
            (v2, v3, 1_000.0),
            (v3, d, 1_000.0),
        ] {
            b.link_with_length(u, v, len).unwrap();
        }
        let net = b.build();
        (net, vec![s, v0, v1, v2, v3, d])
    }

    #[test]
    fn picks_highest_rate_route() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let (path, metric) =
            largest_rate_path(&net, n[0], n[5], 1, &caps, &PathConstraints::default()).unwrap();
        assert_eq!(path.nodes(), &[n[0], n[3], n[4], n[5]], "short fibers win");
        let expect = path_rate(&net, &path, 1);
        assert!((metric.value() - expect.value()).abs() < 1e-12);
    }

    #[test]
    fn respects_banned_hop() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let mut cons = PathConstraints::default();
        cons.ban_hop(n[3], n[4]);
        let (path, _) = largest_rate_path(&net, n[0], n[5], 1, &caps, &cons).unwrap();
        assert_eq!(path.nodes(), &[n[0], n[1], n[2], n[5]]);
    }

    #[test]
    fn respects_banned_node() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let mut cons = PathConstraints::default();
        cons.ban_node(n[3]);
        let (path, _) = largest_rate_path(&net, n[0], n[5], 1, &caps, &cons).unwrap();
        assert!(!path.contains_node(n[3]));
    }

    #[test]
    fn intermediate_needs_double_width() {
        // Capacity 4 supports width 2 paths (2w = 4) but not width 3.
        let (net, n) = two_route_net(4);
        let caps = net.capacities();
        assert!(
            largest_rate_path(&net, n[0], n[5], 2, &caps, &PathConstraints::default()).is_some()
        );
        assert!(
            largest_rate_path(&net, n[0], n[5], 3, &caps, &PathConstraints::default()).is_none()
        );
    }

    #[test]
    fn endpoint_capacity_checked() {
        let (net, n) = two_route_net(10);
        let mut caps = net.capacities();
        caps[n[0].index()] = 1; // throttle the source
        assert!(
            largest_rate_path(&net, n[0], n[5], 2, &caps, &PathConstraints::default()).is_none()
        );
    }

    #[test]
    fn wider_paths_have_higher_metric() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let m1 = largest_rate_path(&net, n[0], n[5], 1, &caps, &PathConstraints::default())
            .unwrap()
            .1;
        let m2 = largest_rate_path(&net, n[0], n[5], 2, &caps, &PathConstraints::default())
            .unwrap()
            .1;
        assert!(m2 > m1, "width 2 must beat width 1 on the same route");
    }

    #[test]
    fn users_cannot_relay() {
        // S - u(user) - D with a switch detour; the user route is shorter
        // but forbidden.
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let mid_user = b.user(1.0, 0.0);
        let sw = b.switch(1.0, 5_000.0, 10);
        let d = b.user(2.0, 0.0);
        b.link(s, sw).unwrap();
        b.link(sw, d).unwrap();
        b.link_with_length(s, mid_user, 1.0).unwrap_err(); // user-user rejected by builder
        let net = b.build();
        let caps = net.capacities();
        let (path, _) =
            largest_rate_path(&net, s, d, 1, &caps, &PathConstraints::default()).unwrap();
        assert_eq!(path.nodes(), &[s, sw, d]);
    }

    #[test]
    fn disconnected_or_same_returns_none() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        assert!(
            largest_rate_path(&net, n[0], n[0], 1, &caps, &PathConstraints::default()).is_none()
        );
        let mut cons = PathConstraints::default();
        cons.ban_node(n[1]);
        cons.ban_node(n[3]);
        assert!(largest_rate_path(&net, n[0], n[5], 1, &caps, &cons).is_none());
    }

    #[test]
    fn reused_scratch_matches_fresh_calls() {
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let mut scratch = SearchScratch::new();
        let mut cons = PathConstraints::default();
        // A query mix that exercises bans and infeasible widths on one
        // dirty scratch.
        for (width, banned) in [(1, None), (2, Some(n[3])), (3, None), (1, Some(n[1]))] {
            cons.banned_nodes.clear();
            if let Some(b) = banned {
                cons.ban_node(b);
            }
            let reused =
                largest_rate_path_with(&mut scratch, &net, n[0], n[5], width, &caps, &cons);
            let fresh = largest_rate_path(&net, n[0], n[5], width, &caps, &cons);
            assert_eq!(reused, fresh, "width {width}, banned {banned:?}");
        }
    }

    #[test]
    fn metric_is_monotone_in_length() {
        // Adding a hop can never increase the metric (§IV-C correctness
        // argument).
        let (net, n) = two_route_net(10);
        let caps = net.capacities();
        let (_, direct) =
            largest_rate_path(&net, n[0], n[5], 1, &caps, &PathConstraints::default()).unwrap();
        let (_, to_v3) =
            largest_rate_path(&net, n[0], n[4], 1, &caps, &PathConstraints::default()).unwrap();
        assert!(to_v3 >= direct, "prefix metric must dominate");
    }
}
