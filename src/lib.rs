//! Umbrella crate for the GHZ n-fusion entanglement-routing stack.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests can use a single dependency:
//!
//! * [`graph`] — classical graph substrate.
//! * [`topology`] — random quantum-network topology generation.
//! * [`quantum`] — GHZ entanglement semantics and a stabilizer simulator.
//! * [`core`] — the paper's routing model, metrics, and algorithms.
//! * [`sim`] — Monte Carlo simulation of the entanglement process.
//! * [`serve`] — the online demand engine (admit/depart over a residual
//!   ledger) and its trace-replay harness.

#![forbid(unsafe_code)]

pub use fusion_core as core;
pub use fusion_graph as graph;
pub use fusion_quantum as quantum;
pub use fusion_serve as serve;
pub use fusion_sim as sim;
pub use fusion_topology as topology;
