//! Sharded multi-seed experiment orchestration for the GHZ-routing stack.
//!
//! The paper's figures average several random networks per data point;
//! PR 2 made single 1k–10k-switch instances runnable but left every large
//! preset at one sample. This crate turns one-shot figure runs into
//! orchestrated, resumable campaigns:
//!
//! * [`spec`] — a declarative [`SweepSpec`]: a grid of presets/generators
//!   × demand loads × algorithms × seeds with per-cell budgets, parsed
//!   from a flat TOML subset or JSON. Each cell's RNG seed derives
//!   deterministically from `(campaign_seed, cell key)`.
//! * [`campaign`] — a self-scheduling (work-stealing) shard pool that
//!   executes pending cells on any number of worker threads; results are
//!   bit-identical regardless of thread count, shard order, or resume
//!   boundaries.
//! * [`store`] — a crash-safe JSONL results store with atomic append and
//!   an atomically-replaced manifest; an interrupted campaign resumes by
//!   skipping completed cells.
//! * [`aggregate`] — streaming Welford aggregation of result rows into
//!   per-configuration mean ± 95% CI summaries (the Fig. 9b extension
//!   table into the 1k–10k-switch regime), byte-deterministic.
//!
//! The `sweep` binary drives it end to end:
//!
//! ```text
//! sweep run --spec campaign.toml --out results/campaign [--threads N]
//! sweep aggregate --out results/campaign
//! sweep list-presets
//! sweep example-spec > campaign.toml
//! ```
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod spec;
pub mod store;

pub use aggregate::{aggregate_rows, render_table, summary_json, GroupSummary};
pub use campaign::{aggregate_campaign, run_campaign, CampaignOutcome, RunOptions};
pub use spec::{derive_cell_seed, Cell, SweepSpec};
pub use store::{CampaignStore, Manifest};
