//! Fig. 7 runtime bench: routing cost of every algorithm on each network
//! generation method (Waxman, Watts-Strogatz, Aiello).
//!
//! The *rates* behind Fig. 7 come from the `figures` binary; these benches
//! measure the compute cost of regenerating the figure's data points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_bench::workloads::{Algorithm, ExperimentConfig};
use fusion_topology::GeneratorKind;
use std::hint::black_box;

fn bench_generation_methods(c: &mut Criterion) {
    let kinds = [
        ("waxman", GeneratorKind::Waxman { alpha: 1.0 }),
        (
            "watts-strogatz",
            GeneratorKind::WattsStrogatz { rewire: 0.1 },
        ),
        ("aiello", GeneratorKind::Aiello { gamma: 2.5 }),
    ];
    let mut group = c.benchmark_group("fig7_route");
    group.sample_size(10);
    for (name, kind) in kinds {
        let mut config = ExperimentConfig::quick();
        config.topology.kind = kind;
        let (net, demands) = config.instance(0);
        for algo in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), name),
                &(&net, &demands),
                |b, (net, demands)| {
                    b.iter(|| black_box(algo.route(net, demands, config.h)));
                },
            );
        }
    }
    group.finish();
}

fn bench_topology_generation(c: &mut Criterion) {
    let kinds = [
        ("waxman", GeneratorKind::Waxman { alpha: 1.0 }),
        (
            "watts-strogatz",
            GeneratorKind::WattsStrogatz { rewire: 0.1 },
        ),
        ("aiello", GeneratorKind::Aiello { gamma: 2.5 }),
    ];
    let mut group = c.benchmark_group("fig7_generate");
    for (name, kind) in kinds {
        let mut config = ExperimentConfig::default();
        config.topology.kind = kind;
        group.bench_function(name, |b| {
            b.iter(|| black_box(config.topology.generate(7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation_methods, bench_topology_generation);
criterion_main!(benches);
