//! Profiles Algorithm 2 candidate construction at scale: times the
//! width-descent engine against the per-width sweep reference on one
//! `large-N-grid` instance and asserts their outputs are identical.
//! Reproduces the EXPERIMENTS.md "width-descent candidate construction"
//! table:
//!
//! ```text
//! cargo run --release -p fusion-bench --example alg2_profile -- 10000
//! ```
//!
//! Pass `--skip-reference` to time only the descent engine (the reference
//! sweep is minutes of single-core work at 10k switches).
use std::time::Instant;

use fusion_bench::workloads::ExperimentConfig;
use fusion_core::algorithms::alg2;
use fusion_core::SwapMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let skip_reference = args.iter().any(|a| a == "--skip-reference");

    let config = ExperimentConfig::large_grid(n);
    let t0 = Instant::now();
    let (net, demands) = config.instance(0);
    eprintln!("instance({n}): {:?}", t0.elapsed());

    let caps = net.capacities();
    let max_width = net.max_switch_capacity();
    let t1 = Instant::now();
    let descent = alg2::paths_selection(
        &net,
        &demands,
        &caps,
        config.h,
        max_width,
        SwapMode::NFusion,
    );
    let descent_t = t1.elapsed();
    eprintln!(
        "width-descent alg2: {descent_t:?} ({} candidates)",
        descent.len()
    );

    if skip_reference {
        return;
    }
    let t2 = Instant::now();
    let reference = alg2::paths_selection_reference(
        &net,
        &demands,
        &caps,
        config.h,
        max_width,
        SwapMode::NFusion,
    );
    let ref_t = t2.elapsed();
    eprintln!("per-width sweep alg2: {ref_t:?}");
    assert_eq!(descent, reference, "descent must match reference");
    eprintln!(
        "speedup: {:.1}x",
        ref_t.as_secs_f64() / descent_t.as_secs_f64()
    );
}
