//! Statistics for Monte Carlo rate estimation.

use serde::{Deserialize, Serialize};

/// A Monte Carlo estimate of a success probability or rate.
///
/// # Examples
///
/// ```
/// use fusion_sim::RateEstimate;
///
/// let est = RateEstimate::from_successes(250, 1000);
/// assert_eq!(est.mean, 0.25);
/// assert!(est.stderr > 0.0);
/// let (lo, hi) = est.confidence_interval();
/// assert!(lo < 0.25 && 0.25 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Number of Monte Carlo rounds.
    pub rounds: usize,
}

impl RateEstimate {
    /// Estimate of a Bernoulli probability from a success count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `successes > rounds`.
    #[must_use]
    pub fn from_successes(successes: usize, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one round");
        assert!(successes <= rounds, "more successes than rounds");
        let mean = successes as f64 / rounds as f64;
        let var = mean * (1.0 - mean) / rounds as f64;
        RateEstimate {
            mean,
            stderr: var.sqrt(),
            rounds,
        }
    }

    /// Estimate from a sequence of real-valued samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        RateEstimate {
            mean,
            stderr: (var / n).sqrt(),
            rounds: samples.len(),
        }
    }

    /// Two-sided ~95% normal-approximation confidence interval, clamped to
    /// `[0, ∞)` on the lower side.
    #[must_use]
    pub fn confidence_interval(&self) -> (f64, f64) {
        let half = 1.96 * self.stderr;
        ((self.mean - half).max(0.0), self.mean + half)
    }

    /// `true` when `value` lies inside the 95% confidence interval widened
    /// by `slack` (an absolute tolerance for model mismatch).
    #[must_use]
    pub fn is_consistent_with(&self, value: f64, slack: f64) -> bool {
        let (lo, hi) = self.confidence_interval();
        value >= lo - slack && value <= hi + slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_estimate() {
        let est = RateEstimate::from_successes(500, 1000);
        assert_eq!(est.mean, 0.5);
        assert!((est.stderr - (0.25_f64 / 1000.0).sqrt()).abs() < 1e-12);
        assert_eq!(est.rounds, 1000);
    }

    #[test]
    fn degenerate_counts() {
        let zero = RateEstimate::from_successes(0, 100);
        assert_eq!(zero.mean, 0.0);
        assert_eq!(zero.stderr, 0.0);
        let all = RateEstimate::from_successes(100, 100);
        assert_eq!(all.mean, 1.0);
        assert_eq!(all.stderr, 0.0);
    }

    #[test]
    fn sample_estimate() {
        let est = RateEstimate::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((est.mean - 2.5).abs() < 1e-12);
        // Sample variance = 5/3; stderr = sqrt(5/3/4).
        assert!((est.stderr - (5.0 / 3.0 / 4.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_contains_mean() {
        let est = RateEstimate::from_successes(300, 1000);
        let (lo, hi) = est.confidence_interval();
        assert!(lo < est.mean && est.mean < hi);
        assert!(est.is_consistent_with(0.3, 0.0));
        assert!(!est.is_consistent_with(0.9, 0.0));
        assert!(est.is_consistent_with(0.9, 1.0), "slack widens the band");
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = RateEstimate::from_successes(0, 0);
    }
}
