//! Circuit-level GHZ fusion (paper §II-B, Figs. 1-2).
//!
//! An n-fusion jointly measures one qubit from each of n GHZ groups in the
//! GHZ basis. The measurement circuit is the textbook one: CNOT fan-in from
//! the first measured qubit to the others, a Hadamard on the first, then
//! Z-basis measurements everywhere; the classical outcomes select Pauli
//! corrections that rotate the survivors onto the canonical GHZ state.

use rand::Rng;

use super::tableau::Tableau;

/// Fuses the listed GHZ `groups` by jointly measuring `measured[i]` (which
/// must belong to `groups[i]`) in the GHZ basis, then applies the
/// outcome-dependent Pauli corrections. Afterwards every unmeasured member
/// of every group shares one canonical GHZ state.
///
/// Returns the measurement outcomes (first entry is the X-basis outcome of
/// the fan-in qubit, the rest are Z-basis outcomes).
///
/// # Panics
///
/// Panics if `groups` is empty, lengths differ, some `measured[i]` is not a
/// member of `groups[i]`, or a group has fewer than 2 members.
pub fn fuse_groups(
    tab: &mut Tableau,
    groups: &[Vec<usize>],
    measured: &[usize],
    rng: &mut impl Rng,
) -> Vec<bool> {
    assert!(!groups.is_empty(), "fusion needs at least one group");
    assert_eq!(groups.len(), measured.len(), "one measured qubit per group");
    for (g, &m) in groups.iter().zip(measured) {
        assert!(g.contains(&m), "measured qubit {m} not in its group");
        assert!(g.len() >= 2, "groups must hold at least a Bell pair");
    }

    // GHZ-basis measurement circuit.
    let pivot = measured[0];
    for &m in &measured[1..] {
        tab.cnot(pivot, m);
    }
    tab.h(pivot);
    let outcomes: Vec<bool> = measured.iter().map(|&m| tab.measure_z(m, rng)).collect();

    // Bit-flip corrections: a `1` on measured[i] (i >= 1) means group i is
    // X-flipped relative to group 0; flip all its survivors back.
    for (i, group) in groups.iter().enumerate().skip(1) {
        if outcomes[i] {
            for &q in group {
                if q != measured[i] {
                    tab.x(q);
                }
            }
        }
    }
    // Phase correction: a `1` on the fan-in (X-basis) qubit flips the
    // relative sign of the |1…1⟩ branch; one Z anywhere fixes it.
    if outcomes[0] {
        let survivor = groups
            .iter()
            .zip(measured)
            .flat_map(|(g, &m)| g.iter().copied().filter(move |&q| q != m))
            .next()
            .expect("every group has a survivor");
        tab.z(survivor);
    }
    outcomes
}

/// Removes qubit `q` from its GHZ `group` with a single-qubit X-basis
/// measurement (1-fusion): an n-GHZ state becomes an (n-1)-GHZ state.
/// Returns the measurement outcome.
///
/// # Panics
///
/// Panics if `q` is not in `group` or the group has fewer than 2 members.
pub fn measure_out_x(tab: &mut Tableau, group: &[usize], q: usize, rng: &mut impl Rng) -> bool {
    assert!(group.contains(&q), "qubit {q} not in group");
    assert!(group.len() >= 2, "group must hold at least a Bell pair");
    tab.h(q);
    let outcome = tab.measure_z(q, rng);
    if outcome {
        let survivor = group.iter().copied().find(|&s| s != q).expect("len >= 2");
        tab.z(survivor);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Prepares `sizes.len()` disjoint GHZ groups on a fresh tableau and
    /// returns (tableau, groups).
    fn prepare(sizes: &[usize]) -> (Tableau, Vec<Vec<usize>>) {
        let total: usize = sizes.iter().sum();
        let mut tab = Tableau::new(total);
        let mut groups = Vec::new();
        let mut next = 0;
        for &s in sizes {
            let group: Vec<usize> = (next..next + s).collect();
            tab.prepare_ghz(&group);
            groups.push(group);
            next += s;
        }
        (tab, groups)
    }

    fn survivors(groups: &[Vec<usize>], measured: &[usize]) -> Vec<usize> {
        groups
            .iter()
            .flatten()
            .copied()
            .filter(|q| !measured.contains(q))
            .collect()
    }

    #[test]
    fn bsm_swapping_yields_bell_pair() {
        // Two Bell pairs fused through a switch: the classic swap (Fig. 1a).
        for seed in 0..25 {
            let (mut tab, groups) = prepare(&[2, 2]);
            let measured = vec![groups[0][1], groups[1][0]];
            let mut rng = StdRng::seed_from_u64(seed);
            fuse_groups(&mut tab, &groups, &measured, &mut rng);
            let s = survivors(&groups, &measured);
            assert!(tab.is_ghz(&s), "seed {seed}: swap must yield a Bell pair");
        }
    }

    #[test]
    fn three_fusion_yields_ghz() {
        // Fig. 1b: a 3-GHZ measurement fusing three Bell pairs.
        for seed in 0..25 {
            let (mut tab, groups) = prepare(&[2, 2, 2]);
            let measured = vec![groups[0][1], groups[1][0], groups[2][0]];
            let mut rng = StdRng::seed_from_u64(seed);
            fuse_groups(&mut tab, &groups, &measured, &mut rng);
            let s = survivors(&groups, &measured);
            assert_eq!(s.len(), 3);
            assert!(tab.is_ghz(&s), "seed {seed}");
        }
    }

    #[test]
    fn fig2_six_ghz_from_three_groups() {
        // Fig. 2: three processor sets (sizes 3, 3, 3) fused into a 6-GHZ
        // state by measuring one qubit of each.
        for seed in 0..10 {
            let (mut tab, groups) = prepare(&[3, 3, 3]);
            let measured = vec![groups[0][2], groups[1][0], groups[2][0]];
            let mut rng = StdRng::seed_from_u64(seed);
            fuse_groups(&mut tab, &groups, &measured, &mut rng);
            let s = survivors(&groups, &measured);
            assert_eq!(s.len(), 6);
            assert!(tab.is_ghz(&s), "seed {seed}");
        }
    }

    #[test]
    fn measure_out_shrinks_ghz() {
        // 1-fusion: n-GHZ -> (n-1)-GHZ (paper §II-B, n = 1 case).
        for seed in 0..25 {
            let (mut tab, groups) = prepare(&[4]);
            let mut rng = StdRng::seed_from_u64(seed);
            measure_out_x(&mut tab, &groups[0], groups[0][1], &mut rng);
            assert!(tab.is_ghz(&[0, 2, 3]), "seed {seed}");
        }
    }

    #[test]
    fn chained_fusions_build_long_range_entanglement() {
        // A 3-switch repeater chain: 4 Bell pairs, 3 successive swaps.
        for seed in 0..10 {
            let (mut tab, groups) = prepare(&[2, 2, 2, 2]);
            let mut rng = StdRng::seed_from_u64(seed);
            // Swap at switch 1 joins pairs 0,1.
            fuse_groups(
                &mut tab,
                &groups[0..2],
                &[groups[0][1], groups[1][0]],
                &mut rng,
            );
            let g01 = vec![groups[0][0], groups[1][1]];
            // Swap at switch 2 joins the result with pair 2.
            fuse_groups(
                &mut tab,
                &[g01.clone(), groups[2].clone()],
                &[g01[1], groups[2][0]],
                &mut rng,
            );
            let g012 = vec![g01[0], groups[2][1]];
            // Swap at switch 3 joins with pair 3.
            fuse_groups(
                &mut tab,
                &[g012.clone(), groups[3].clone()],
                &[g012[1], groups[3][0]],
                &mut rng,
            );
            assert!(tab.is_ghz(&[groups[0][0], groups[3][1]]), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "not in its group")]
    fn fuse_rejects_foreign_qubit() {
        let (mut tab, groups) = prepare(&[2, 2]);
        let mut rng = StdRng::seed_from_u64(0);
        fuse_groups(&mut tab, &groups, &[groups[0][0], groups[0][1]], &mut rng);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Fusing k random-size GHZ groups always yields the canonical GHZ
        /// state on all survivors, for any RNG seed (i.e. any measurement
        /// outcome pattern).
        #[test]
        fn fusion_always_yields_canonical_ghz(
            sizes in proptest::collection::vec(2usize..5, 1..4),
            seed in 0u64..1000,
        ) {
            let (mut tab, groups) = prepare(&sizes);
            let measured: Vec<usize> = groups.iter().map(|g| g[0]).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            fuse_groups(&mut tab, &groups, &measured, &mut rng);
            let s = survivors(&groups, &measured);
            prop_assert!(tab.is_ghz(&s));
        }
    }
}
