//! Algorithm 4 — Remaining Qubits Assignment: spend leftover qubits on
//! widening already-routed channels.
//!
//! For every network edge, while both endpoints still hold a free qubit,
//! the link is offered to every demand whose route crosses that edge; the
//! demand with the largest marginal entanglement-rate gain receives it.
//! The loop stops when no demand gains anything (adding redundant links to
//! saturated channels is useless once rates hit 1).

use fusion_graph::NodeId;

use crate::network::QuantumNetwork;
use crate::plan::{DemandPlan, SwapMode};

/// Minimum rate improvement considered worth a qubit pair. Guards against
/// floating-point noise keeping the loop alive on saturated channels.
const MIN_GAIN: f64 = 1e-12;

/// Runs Algorithm 4, mutating the plans and the remaining-capacity vector.
/// Returns the number of single links added.
pub fn assign_remaining(
    net: &QuantumNetwork,
    plans: &mut [DemandPlan],
    remaining: &mut [u32],
    mode: SwapMode,
) -> usize {
    let mut added = 0;
    for edge in net.graph().edge_ids() {
        let (u, v) = net.graph().endpoints(edge);
        loop {
            if remaining[u.index()] == 0 || remaining[v.index()] == 0 {
                break;
            }
            let Some((best_plan, best_hop)) = best_beneficiary(net, plans, mode, u, v) else {
                break;
            };
            apply(net, &mut plans[best_plan], mode, u, v, best_hop);
            remaining[u.index()] -= 1;
            remaining[v.index()] -= 1;
            added += 1;
        }
    }
    added
}

/// Finds the demand (and, under classic swapping, the specific path hop)
/// that gains the most from one extra link on `{u, v}`.
fn best_beneficiary(
    net: &QuantumNetwork,
    plans: &[DemandPlan],
    mode: SwapMode,
    u: NodeId,
    v: NodeId,
) -> Option<(usize, Option<(usize, usize)>)> {
    // Best so far: (gain, plan index, classic (path, hop) coordinates).
    type Best = (f64, usize, Option<(usize, usize)>);
    let mut best: Option<Best> = None;
    for (pi, plan) in plans.iter().enumerate() {
        match mode {
            SwapMode::NFusion => {
                if plan.flow.undirected_width(u, v).is_none() {
                    continue;
                }
                let before = plan.rate(net, mode);
                let mut widened = plan.clone();
                widened.flow.widen(u, v);
                let gain = widened.rate(net, mode) - before;
                if gain > MIN_GAIN && best.as_ref().is_none_or(|b| gain > b.0) {
                    best = Some((gain, pi, None));
                }
            }
            SwapMode::Classic => {
                for (wi, wp) in plan.paths.iter().enumerate() {
                    for (hi, (a, b)) in wp.path.hops_iter().enumerate() {
                        if (a, b) != (u, v) && (a, b) != (v, u) {
                            continue;
                        }
                        let before = plan.rate(net, mode);
                        let mut widened = plan.clone();
                        widened.paths[wi].widen_hop(hi);
                        let gain = widened.rate(net, mode) - before;
                        if gain > MIN_GAIN && best.as_ref().is_none_or(|b| gain > b.0) {
                            best = Some((gain, pi, Some((wi, hi))));
                        }
                    }
                }
            }
        }
    }
    best.map(|(_, pi, hop)| (pi, hop))
}

fn apply(
    net: &QuantumNetwork,
    plan: &mut DemandPlan,
    mode: SwapMode,
    u: NodeId,
    v: NodeId,
    hop: Option<(usize, usize)>,
) {
    let _ = net;
    match mode {
        SwapMode::NFusion => {
            let widened = plan.flow.widen(u, v);
            debug_assert!(widened, "beneficiary guaranteed the edge exists");
        }
        SwapMode::Classic => {
            let (wi, hi) = hop.expect("classic beneficiary names a hop");
            plan.paths[wi].widen_hop(hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Demand, DemandId};
    use crate::flow::WidthedPath;
    use fusion_graph::Path;

    /// One demand routed over a 2-hop path with leftover qubits.
    fn routed(cap: u32, width: u32) -> (QuantumNetwork, Vec<DemandPlan>, Vec<u32>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let m = b.switch(1.0, 0.0, cap);
        let d = b.user(2.0, 0.0);
        b.link(s, m).unwrap();
        b.link(m, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.3));
        net.set_swap_success(0.9);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, m, d]);
        plan.flow.add_path(&path, width);
        plan.paths.push(WidthedPath::uniform(path, width));
        let mut remaining = net.capacities();
        remaining[m.index()] -= 2 * width;
        (net, vec![plan], remaining)
    }

    #[test]
    fn widens_until_qubits_run_out() {
        let (net, mut plans, mut remaining) = routed(6, 1);
        let before = plans[0].rate(&net, SwapMode::NFusion);
        let added = assign_remaining(&net, &mut plans, &mut remaining, SwapMode::NFusion);
        // 4 leftover qubits at the switch = 2 per side at most; each added
        // link eats 1 qubit at the switch, so up to 4 additions split
        // across the two edges.
        assert_eq!(added, 4);
        let after = plans[0].rate(&net, SwapMode::NFusion);
        assert!(after > before, "rate must improve: {before} -> {after}");
        // The switch is fully used; users are effectively unlimited.
        let m = fusion_graph::NodeId::new(1);
        assert_eq!(remaining[m.index()], 0);
    }

    #[test]
    fn respects_zero_remaining() {
        let (net, mut plans, mut remaining) = routed(2, 1);
        // Switch capacity exactly spent by the width-1 path.
        let added = assign_remaining(&net, &mut plans, &mut remaining, SwapMode::NFusion);
        assert_eq!(added, 0);
    }

    #[test]
    fn skips_edges_outside_all_routes() {
        // A second, unused edge pair must receive nothing.
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let m = b.switch(1.0, 0.0, 10);
        let d = b.user(2.0, 0.0);
        let stray = b.switch(5.0, 5.0, 10);
        b.link(s, m).unwrap();
        b.link(m, d).unwrap();
        b.link(m, stray).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.3));
        net.set_swap_success(0.9);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, m, d]);
        plan.flow.add_path(&path, 1);
        plan.paths.push(WidthedPath::uniform(path, 1));
        let mut plans = vec![plan];
        let mut remaining = net.capacities();
        remaining[m.index()] -= 2;
        assign_remaining(&net, &mut plans, &mut remaining, SwapMode::NFusion);
        assert_eq!(
            plans[0].flow.undirected_width(m, stray),
            None,
            "unused edges must stay out of the flow"
        );
    }

    #[test]
    fn stops_when_gain_vanishes() {
        // With p = 1 every channel is already certain: no links added.
        let (mut net, mut plans, mut remaining) = {
            let (net, plans, remaining) = routed(10, 1);
            (net, plans, remaining)
        };
        net.set_uniform_link_success(Some(1.0));
        let added = assign_remaining(&net, &mut plans, &mut remaining, SwapMode::NFusion);
        assert_eq!(added, 0, "saturated channels gain nothing");
    }

    #[test]
    fn classic_mode_gains_nothing_from_width() {
        // A single pre-committed lane cannot use extra parallel links, so
        // Algorithm 4 finds no beneficiary under classic swapping.
        let (net, mut plans, mut remaining) = routed(6, 1);
        let before = plans[0].rate(&net, SwapMode::Classic);
        let added = assign_remaining(&net, &mut plans, &mut remaining, SwapMode::Classic);
        assert_eq!(added, 0);
        assert_eq!(plans[0].rate(&net, SwapMode::Classic), before);
    }

    #[test]
    fn best_gain_wins_between_demands() {
        // Two demands share an edge; the one with the lossier remaining
        // route gains more from an extra link.
        let mut b = QuantumNetwork::builder();
        let s1 = b.user(0.0, 1.0);
        let s2 = b.user(0.0, -1.0);
        let m = b.switch(1.0, 0.0, 4);
        let d1 = b.user(2.0, 1.0);
        let d2 = b.user(2.0, -1.0);
        for (u, v) in [(s1, m), (s2, m), (m, d1), (m, d2)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.4));
        net.set_swap_success(0.9);
        let mk = |id: usize, s, d, w| {
            let demand = Demand::new(DemandId::new(id), s, d);
            let mut plan = DemandPlan::empty(demand);
            let path = Path::new(vec![s, m, d]);
            plan.flow.add_path(&path, w);
            plan.paths.push(WidthedPath::uniform(path, w));
            plan
        };
        // Demand 0 already has width 3; demand 1 only width 1 — demand 1
        // gains far more from the first extra link on its own edges.
        let mut plans = vec![mk(0, s1, d1, 1), mk(1, s2, d2, 1)];
        let mut remaining = vec![0; net.node_count()];
        remaining[m.index()] = 2;
        remaining[s2.index()] = 10;
        remaining[d2.index()] = 10;
        remaining[s1.index()] = 0; // demand 0's user-side edges are frozen
        remaining[d1.index()] = 0;
        assign_remaining(&net, &mut plans, &mut remaining, SwapMode::NFusion);
        // Only demand 1's hops could be widened (s2/d2 had budget).
        assert!(plans[1].flow.undirected_width(s2, m).unwrap() >= 2);
        assert_eq!(plans[0].flow.undirected_width(s1, m), Some(1));
    }
}
