//! Quantum substrate: GHZ entanglement semantics for the n-fusion routing
//! stack.
//!
//! Two layers back the routing model (paper §II):
//!
//! * [`EntanglementRegistry`] — an abstract, fast bookkeeping layer that
//!   tracks which qubits are entangled into which GHZ groups under
//!   *create-pair*, *n-fusion* (joint GHZ measurement over n qubits,
//!   merging n groups) and *1-fusion* (single-qubit Pauli measurement,
//!   shrinking a group). The Monte Carlo simulator uses this layer.
//! * [`stabilizer`] — an exact Aaronson-Gottesman stabilizer-tableau
//!   simulator that executes the actual fusion circuits (CNOTs, Hadamards,
//!   Z measurements, Pauli corrections) and verifies that the registry's
//!   bookkeeping matches real GHZ-measurement physics.
//!
//! # Examples
//!
//! ```
//! use fusion_quantum::EntanglementRegistry;
//!
//! let mut reg = EntanglementRegistry::new();
//! let [a1, m1, m2, a2] = [reg.alloc(), reg.alloc(), reg.alloc(), reg.alloc()];
//! reg.create_pair(a1, m1)?; // Bell pair held by Alice and the switch
//! reg.create_pair(m2, a2)?; // Bell pair held by the switch and Bob
//! reg.fuse(&[m1, m2])?;     // 2-fusion (BSM) inside the switch
//! assert!(reg.are_entangled(a1, a2));
//! # Ok::<(), fusion_quantum::RegistryError>(())
//! ```
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub mod stabilizer;

pub use registry::{EntanglementRegistry, FusionOutcome, GroupId, QubitId, RegistryError};
