//! Validates the analytic rate formulas against simulation at every level:
//! Equation 1 vs exact enumeration on small flow graphs, Equation 1 vs
//! Monte Carlo on full routed plans, and the classic single-lane formula
//! vs lane sampling.

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::baselines::route_qcast;
use ghz_entanglement_routing::core::{metrics, Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::sim::evaluate::{estimate_plan, estimate_plan_parallel};
use ghz_entanglement_routing::sim::exact;
use ghz_entanglement_routing::topology::TopologyConfig;

fn world(seed: u64) -> (QuantumNetwork, Vec<Demand>) {
    let topo = TopologyConfig {
        num_switches: 30,
        num_user_pairs: 6,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(seed);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    (net, demands)
}

#[test]
fn eq1_matches_exact_on_routed_flows() {
    // For every routed (small) flow graph, Eq. 1 must match exact
    // enumeration within the series-parallel regime and never be
    // pessimistic beyond tolerance otherwise.
    let mut gaps: Vec<f64> = Vec::new();
    for seed in [2, 5, 9] {
        let (net, demands) = world(seed);
        let plan = alg_n_fusion(&net, &demands);
        for dp in plan.plans.iter().filter(|p| !p.is_unserved()) {
            let elements = dp.flow.edge_count()
                + dp.flow
                    .nodes()
                    .iter()
                    .filter(|&&n| net.is_switch(n))
                    .count();
            if elements > 20 {
                continue;
            }
            let eq1 = metrics::flow_rate(&net, &dp.flow).value();
            let truth = exact::flow_reliability(&net, &dp.flow);
            assert!(
                eq1 >= truth - 1e-9,
                "Eq. 1 must not be pessimistic: {eq1} vs {truth}"
            );
            gaps.push(eq1 - truth);
        }
    }
    assert!(
        gaps.len() >= 5,
        "too few enumerable flows checked ({})",
        gaps.len()
    );
    // Eq. 1 is exact on series-parallel flows; on reconvergent merges it
    // overestimates. Bound the damage: small on average, bounded at worst.
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let max_gap = gaps.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(mean_gap < 0.08, "mean Eq.1 optimism too large: {mean_gap}");
    assert!(
        max_gap < 0.30,
        "worst-case Eq.1 optimism too large: {max_gap}"
    );
}

#[test]
fn eq1_matches_monte_carlo_per_demand() {
    let (net, demands) = world(3);
    let plan = alg_n_fusion(&net, &demands);
    let est = estimate_plan(&net, &plan, 20_000, 17);
    let mut optimism = Vec::new();
    for (i, dp) in plan.plans.iter().enumerate() {
        let analytic = metrics::flow_rate(&net, &dp.flow).value();
        let simulated = est.per_demand[i];
        // Eq. 1 may be optimistic on reconvergent flows; the simulated
        // value must sit at or below it, within a bounded gap per demand.
        // (The per-demand slack was 0.15 against real rand 0.8's seeded
        // topologies; the vendored xoshiro StdRng routes flows whose
        // reconvergence gap reaches ~0.21 on a 12-seed scan, so the tail
        // bound is 0.25 with the tighter mean bound below compensating.)
        assert!(
            simulated.is_consistent_with(analytic, 0.25),
            "demand {i}: analytic {analytic} vs simulated {} ± {}",
            simulated.mean,
            simulated.stderr
        );
        assert!(analytic >= simulated.mean - 4.0 * simulated.stderr - 1e-9);
        optimism.push((analytic - simulated.mean).max(0.0));
    }
    // The per-demand bound covers the reconvergent tail; on average the
    // optimism must stay small.
    let mean_gap = optimism.iter().sum::<f64>() / optimism.len() as f64;
    assert!(mean_gap < 0.12, "mean Eq.1 optimism too large: {mean_gap}");
}

#[test]
fn classic_formula_matches_lane_sampling() {
    let (net, demands) = world(4);
    let plan = route_qcast(&net, &demands, 5);
    let est = estimate_plan(&net, &plan, 20_000, 23);
    for (i, dp) in plan.plans.iter().enumerate() {
        let analytic = dp.rate(&net, plan.mode);
        assert!(
            est.per_demand[i].is_consistent_with(analytic, 0.01),
            "demand {i}: classic analytic {analytic} vs sampled {}",
            est.per_demand[i].mean
        );
    }
}

#[test]
fn parallel_estimation_is_consistent() {
    let (net, demands) = world(6);
    let plan = alg_n_fusion(&net, &demands);
    let serial = estimate_plan(&net, &plan, 6_000, 31);
    let parallel = estimate_plan_parallel(&net, &plan, 6_000, 31, 4);
    assert!(
        (serial.total_rate() - parallel.total_rate()).abs()
            < 4.0 * (serial.total_stderr() + parallel.total_stderr()) + 0.05,
        "serial {} vs parallel {}",
        serial.total_rate(),
        parallel.total_rate()
    );
}

#[test]
fn uniform_p_sweep_shifts_measured_rates() {
    // The simulated rate must track the analytic one across the Fig. 8a
    // sweep (monotone in p).
    let (mut net, demands) = world(8);
    let mut last = -1.0;
    for p in [0.1, 0.2, 0.3, 0.4] {
        net.set_uniform_link_success(Some(p));
        let plan = alg_n_fusion(&net, &demands);
        let est = estimate_plan(&net, &plan, 3_000, 2);
        let rate = est.total_rate();
        assert!(
            rate >= last - 0.15,
            "rate dropped along p sweep: {last} -> {rate}"
        );
        last = rate;
    }
}
