//! The per-demand candidate cache behind incremental admission.
//!
//! Admitting `source -> dest` runs a width descent whose per-width output
//! is a pure function of the width's *feasible subgraph* — and the
//! [`SelectionEngine`](fusion_core::algorithms::SelectionEngine) reports,
//! for every width it computes, a *validity certificate*
//! ([`CertEntry`]): the minimal per-kind set of feasibility answers the
//! slice's results depend on — O(path), not O(explored region) (see
//! [`fusion_graph::certificate`] for the derivation and soundness
//! argument). This module stores those per-(pair, width) slices and keeps
//! two inverted indexes over them, the Algorithm 3 `CandidateIndex` trick
//! lifted to the service layer:
//!
//! * **node → slots** over certificates: when a residual capacity changes
//!   `old -> new` at a node, only slots whose certificate *tracks the
//!   kind whose answer actually flips* at their width are touched (the
//!   relay threshold moves through `(min/2, max/2]`, the endpoint
//!   threshold through `(min, max]` — see [`node_width_thresholds`]).
//!   A flip of an answer the slice read but never depended on — the
//!   common case under churn, e.g. a probed-but-off-path user's endpoint
//!   — retains the slot (`serve.cache.cert_saves`). Everything untouched
//!   provably reproduces the same bytes.
//! * **edge → slots** over cached candidate paths: a
//!   [`fail_link`](crate::state::ServiceState::fail_link) drops every
//!   slot whose cached candidates cross the cut fiber. This one is a
//!   freshness policy, not a soundness requirement — the network model
//!   never mutates on a transient cut — and it keeps cached routes from
//!   silently outliving the fiber they were planned over.
//!
//! Stale-posting hygiene follows the repo's generation discipline (see
//! `docs/ARCHITECTURE.md`): every stored slot gets a fresh generation
//! number, postings carry the generation they indexed, and a posting
//! whose generation no longer matches the live slot is dropped lazily
//! whenever a scan touches it (plus an amortized global sweep, so dead
//! postings cannot accumulate without bound).
//!
//! Over-invalidation is always *correct* here — recomputing a still-valid
//! slot reproduces identical candidates — so every policy in this module
//! errs on the side of dropping. Only a *missed* invalidation could break
//! the byte-identity contract, and the footprint rule above is exactly
//! the dependency set recorded by the engine. The differential oracle
//! (`tests/incremental_oracle.rs`) enforces this end to end.

use std::collections::BTreeMap;

use fusion_core::algorithms::{
    node_width_thresholds, CandidatePath, RepairSeed, SelectedWidth, WidthReuse,
};
use fusion_core::{DemandId, QuantumNetwork};
use fusion_graph::{CertEntry, EdgeId, Metric, NodeId, Path};
use fusion_telemetry::{Counter, Histogram, Registry};

/// Telemetry handles of the incremental admission cache, registered under
/// `serve.cache.*`; `serve replay --stats` reports them from the
/// registry snapshot.
///
/// Deliberately *not* part of [`ReplayStats`](crate::replay::ReplayStats)
/// or the state digest: the oracles byte-compare those across strategies,
/// and cache behavior is exactly the thing that differs.
#[derive(Debug, Clone, Default)]
pub struct CacheCounters {
    /// Incremental admissions that consulted the cache
    /// (`serve.cache.admissions`).
    pub admissions: Counter,
    /// Admissions served entirely from cached widths — no search ran
    /// (`serve.cache.full_hits`).
    pub full_hits: Counter,
    /// Admissions that reused at least one width and recomputed at least
    /// one (`serve.cache.partial_hits`).
    pub partial_hits: Counter,
    /// Admissions that recomputed every width (`serve.cache.misses`).
    pub misses: Counter,
    /// Width slices served from cache, across all admissions
    /// (`serve.cache.widths_reused`).
    pub widths_reused: Counter,
    /// Width slices recomputed by the engine, across all admissions
    /// (`serve.cache.widths_recomputed`).
    pub widths_recomputed: Counter,
    /// Slots dropped because a residual delta flipped a feasibility
    /// answer on their footprint (`serve.cache.invalidated_by_node`).
    pub invalidated_by_node: Counter,
    /// Slots dropped because a cached candidate crossed a failed link
    /// (`serve.cache.invalidated_by_edge`).
    pub invalidated_by_edge: Counter,
    /// Whole pair entries evicted by the entry cap
    /// (`serve.cache.entries_evicted`).
    pub entries_evicted: Counter,
    /// Slots *damaged* by a residual delta — demoted to repairable
    /// instead of dropped, because the flipped node was first read after
    /// search ordinal 0 (`serve.cache.damaged`).
    pub damaged: Counter,
    /// Repaired slices stored: admissions that replayed a damaged slot's
    /// intact search prefix instead of starting over
    /// (`serve.cache.repairs`).
    pub repairs: Counter,
    /// Distribution of replayed-prefix lengths (searches served from the
    /// log) across repairs (`serve.cache.repair_depth`).
    pub repair_depth: Histogram,
    /// Distribution of *raw* read-set sizes per stored slice, in nodes —
    /// the pre-certificate footprint cardinality, kept for comparability
    /// across versions (`serve.cache.footprint_nodes`).
    pub footprint_nodes: Histogram,
    /// Distribution of stored certificate sizes, in entries
    /// (`serve.cache.cert_size`).
    pub cert_size: Histogram,
    /// Slot retentions the certificate bought: a delta flipped an answer
    /// the slot *read* but never depended on, so the slot survived where
    /// the raw footprint would have dropped it (`serve.cache.cert_saves`).
    pub cert_saves: Counter,
    /// Distribution of the damage/kill ordinals of certificate-matched
    /// flips (`serve.cache.flip_ordinal`): mass at bucket 0 means flips
    /// still kill; mass past it means the repair lattice carries churn.
    pub flip_ordinal: Histogram,
    /// Distribution of slots killed per applied ledger delta
    /// (`serve.cache.killed_per_delta`).
    pub killed_per_delta: Histogram,
}

impl CacheCounters {
    /// Creates the `serve.cache.*` handles in `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return CacheCounters::default();
        }
        CacheCounters {
            admissions: registry.counter("serve.cache.admissions"),
            full_hits: registry.counter("serve.cache.full_hits"),
            partial_hits: registry.counter("serve.cache.partial_hits"),
            misses: registry.counter("serve.cache.misses"),
            widths_reused: registry.counter("serve.cache.widths_reused"),
            widths_recomputed: registry.counter("serve.cache.widths_recomputed"),
            invalidated_by_node: registry.counter("serve.cache.invalidated_by_node"),
            invalidated_by_edge: registry.counter("serve.cache.invalidated_by_edge"),
            entries_evicted: registry.counter("serve.cache.entries_evicted"),
            damaged: registry.counter("serve.cache.damaged"),
            repairs: registry.counter("serve.cache.repairs"),
            footprint_nodes: registry.histogram("serve.cache.footprint_nodes"),
            cert_size: registry.histogram("serve.cache.cert_size"),
            cert_saves: registry.counter("serve.cache.cert_saves"),
            flip_ordinal: registry.histogram("serve.cache.flip_ordinal"),
            killed_per_delta: registry.histogram("serve.cache.killed_per_delta"),
            repair_depth: registry.histogram("serve.cache.repair_depth"),
        }
    }
}

/// One inverted-index posting: slot `(key, width)` stored at generation
/// `gen` depends on (node index) / crosses (edge index) the list this
/// posting lives in. Valid only while the live slot still has `gen`.
///
/// Node postings carry the certificate entry's per-kind first-dependent
/// ordinals inline, so the delta scan classifies a flip without touching
/// the slot at all — the entry map is only consulted (for the staleness
/// check) once a flip actually lands on the posting's width. The
/// ordinals are frozen per generation: any store that changes the
/// certificate bumps `gen` and pushes fresh postings, and the old ones
/// die on the staleness check. Edge postings carry `None`s (fail-edge is
/// unconditional).
#[derive(Debug, Clone, Copy)]
struct Posting {
    key: (NodeId, NodeId),
    width: u32,
    gen: u64,
    relay_ord: Option<u32>,
    endpoint_ord: Option<u32>,
}

/// One cached width slice of a pair's descent — a point on the repair
/// lattice (see `docs/ARCHITECTURE.md`): **live** (`damage == None`,
/// candidates servable byte-for-byte), **repairable** (`damage ==
/// Some(k)`, `k > 0`: the first `k` entries of `log` are still exactly
/// reproducible, the candidates are not), or **dead** (the slot is
/// dropped entirely).
#[derive(Debug, Clone)]
struct Slot {
    gen: u64,
    candidates: Vec<CandidatePath>,
    /// The slice's recorded search log (first path, then each Yen spur in
    /// issue order) — the deviation state a repair replays.
    log: Vec<Option<(Path, Metric)>>,
    /// The slice's validity certificate: per node, the per-kind
    /// first-dependent search ordinals, sorted by node.
    footprint: Vec<CertEntry>,
    /// `Some(k)`: a delta flipped a *tracked* feasibility answer whose
    /// first-dependent ordinal is `k > 0`; log entries `0..k` remain
    /// valid (searches before `k` never depended on the answer). Flips
    /// at ordinal 0 kill the slot instead.
    damage: Option<u32>,
}

/// All cached widths of one ordered `(source, dest)` pair.
#[derive(Debug, Clone, Default)]
struct Entry {
    /// `slots[w - 1]` holds width `w`.
    slots: Vec<Option<Slot>>,
    last_touch: u64,
}

/// The footprint-invalidated candidate cache (see the module docs).
#[derive(Debug, Clone)]
pub(crate) struct CandidateCache {
    entries: BTreeMap<(NodeId, NodeId), Entry>,
    /// Footprint postings per node index.
    node_postings: Vec<Vec<Posting>>,
    /// Path-crossing postings per canonical edge index.
    edge_postings: Vec<Vec<Posting>>,
    next_gen: u64,
    clock: u64,
    max_entries: usize,
    postings_since_sweep: usize,
    sweep_threshold: usize,
    counters: CacheCounters,
}

impl CandidateCache {
    /// An empty cache sized for `net`, keeping at most `max_entries`
    /// pair entries (least-recently-stored evicted first), recording its
    /// `serve.cache.*` telemetry into `registry`.
    pub(crate) fn new(net: &QuantumNetwork, max_entries: usize, registry: &Registry) -> Self {
        assert!(max_entries > 0, "cache needs room for at least one pair");
        let nodes = net.node_count();
        let edges = net.graph().edge_count();
        CandidateCache {
            entries: BTreeMap::new(),
            node_postings: vec![Vec::new(); nodes],
            edge_postings: vec![Vec::new(); edges],
            next_gen: 0,
            clock: 0,
            max_entries,
            postings_since_sweep: 0,
            // Fixed at construction *intentionally*: the sweep bound is
            // sized to the network's structure, and the structure never
            // mutates — `fail_link` is a routing-layer freshness event
            // (the graph keeps the fiber; no admission may route over
            // it), not an edge removal, so the posting-list universe the
            // threshold amortizes over is constant for the cache's
            // lifetime. Pinned by `sweep_threshold_is_construction_fixed`.
            sweep_threshold: (8 * (nodes + edges)).max(4096),
            counters: CacheCounters::from_registry(registry),
        }
    }

    /// The reuse verdict for `(key, width)`: a live slot's candidates
    /// re-stamped with the current `demand` id (cached bytes carry the id
    /// they were computed under; the id is the only demand-dependent
    /// field and every admission gets a fresh one), a damaged slot's
    /// repair seed, or a miss.
    ///
    /// `width == 0` is rejected outright (a degenerate demand or future
    /// N-party caller could ask; slots are indexed `width - 1`).
    pub(crate) fn reuse(&self, key: (NodeId, NodeId), width: u32, demand: DemandId) -> WidthReuse {
        let slot = (width as usize)
            .checked_sub(1)
            .and_then(|wi| self.entries.get(&key)?.slots.get(wi)?.as_ref());
        let Some(slot) = slot else {
            return WidthReuse::Miss;
        };
        match slot.damage {
            None => {
                let mut candidates = slot.candidates.clone();
                for c in &mut candidates {
                    c.demand = demand;
                }
                WidthReuse::Full(candidates)
            }
            Some(intact) => WidthReuse::Repair(RepairSeed {
                log: slot.log.clone(),
                intact,
            }),
        }
    }

    /// Records one admission's engine output: stores every recomputed
    /// width slice with its footprint indexed, bumps the hit/miss
    /// counters, and enforces the entry cap.
    pub(crate) fn store(
        &mut self,
        net: &QuantumNetwork,
        key: (NodeId, NodeId),
        selected: &[SelectedWidth],
    ) {
        self.clock += 1;
        self.counters.admissions.inc();
        let reused = selected.iter().filter(|s| s.footprint.is_none()).count() as u64;
        let recomputed = selected.len() as u64 - reused;
        self.counters.widths_reused.add(reused);
        self.counters.widths_recomputed.add(recomputed);
        if recomputed == 0 {
            self.counters.full_hits.inc();
            // Nothing new to store; cached slots stay as they are.
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.last_touch = self.clock;
            }
            return;
        } else if reused > 0 {
            self.counters.partial_hits.inc();
        } else {
            self.counters.misses.inc();
        }

        let clock = self.clock;
        let mut added = 0usize;
        let mut edge_scratch: Vec<EdgeId> = Vec::new();
        let entry = self.entries.entry(key).or_default();
        entry.last_touch = clock;
        for sel in selected {
            let Some(footprint) = &sel.footprint else {
                continue;
            };
            // Slots are indexed `width - 1`; reject degenerate width-0
            // slices instead of underflowing.
            let Some(wi) = (sel.width as usize).checked_sub(1) else {
                continue;
            };
            if entry.slots.len() <= wi {
                entry.slots.resize_with(wi + 1, || None);
            }
            let footprint = if sel.served > 0 {
                // Repaired slice: the served prefix issued no live reads,
                // so its dependencies carry over from the damaged slot's
                // sub-`served` strata and merge with the live tail's.
                self.counters.repairs.inc();
                self.counters.repair_depth.record(u64::from(sel.served));
                let prior = entry.slots[wi]
                    .as_ref()
                    .map_or(&[][..], |s| s.footprint.as_slice());
                merge_repair_footprint(prior, sel.served, footprint)
            } else {
                footprint.clone()
            };
            self.counters
                .footprint_nodes
                .record(u64::from(sel.raw_reads));
            self.counters.cert_size.record(footprint.len() as u64);
            self.next_gen += 1;
            let gen = self.next_gen;
            entry.slots[wi] = Some(Slot {
                gen,
                candidates: sel.candidates.clone(),
                log: sel.log.clone().unwrap_or_default(),
                footprint: footprint.clone(),
                damage: None,
            });
            for e in &footprint {
                self.node_postings[e.node.index()].push(Posting {
                    key,
                    width: sel.width,
                    gen,
                    relay_ord: e.relay,
                    endpoint_ord: e.endpoint,
                });
                added += 1;
            }
            // Edge postings: every link some cached candidate crosses,
            // canonicalized through `find_edge` so parallel fibers share
            // one bucket (fail_link victims are matched by endpoint pair
            // for the same reason).
            edge_scratch.clear();
            for c in &sel.candidates {
                for hop in c.path.nodes().windows(2) {
                    if let Some(e) = net.graph().find_edge(hop[0], hop[1]) {
                        edge_scratch.push(e);
                    }
                }
            }
            edge_scratch.sort_unstable();
            edge_scratch.dedup();
            for &e in &edge_scratch {
                self.edge_postings[e.index()].push(Posting {
                    key,
                    width: sel.width,
                    gen,
                    relay_ord: None,
                    endpoint_ord: None,
                });
                added += 1;
            }
        }

        if self.entries.len() > self.max_entries {
            // Evict the least-recently-stored pair (never the one just
            // written). Its postings die lazily via generation mismatch.
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(k, _)| *k);
            if let Some(k) = victim {
                self.entries.remove(&k);
                self.counters.entries_evicted.inc();
            }
        }

        self.postings_since_sweep += added;
        if self.postings_since_sweep >= self.sweep_threshold {
            self.sweep();
        }
    }

    /// Applies one residual-capacity delta `old -> new` at `node`.
    ///
    /// Slots whose certificate *tracks a kind the delta flips* at their
    /// width move down the repair lattice: a flip whose first-dependent
    /// search ordinal is 0 kills the slot (nothing of its construction
    /// survives), while one first depended on at ordinal `k > 0`
    /// *damages* it to `min(damage, k)` — searches before `k` never
    /// depended on the answer, so the log prefix `0..k` stays exactly
    /// reproducible and seeds a later repair. Widths outside the flip
    /// bands, and slots that read the node without ever depending on the
    /// flipped kind (`cert_saves`), keep byte-exact candidates.
    pub(crate) fn apply_node_delta(
        &mut self,
        net: &QuantumNetwork,
        node: NodeId,
        old: u32,
        new: u32,
    ) {
        if old == new {
            return;
        }
        let (relay_old, endpoint_old) = node_width_thresholds(net, node, old);
        let (relay_new, endpoint_new) = node_width_thresholds(net, node, new);
        let mut postings = std::mem::take(&mut self.node_postings[node.index()]);
        let mut killed = 0u64;
        let mut damaged = 0u64;
        let mut saved = 0u64;
        postings.retain(|p| {
            let relay_flip = flips(p.width, relay_old, relay_new);
            let endpoint_flip = flips(p.width, endpoint_old, endpoint_new);
            if !relay_flip && !endpoint_flip {
                // Nothing to classify — keep the posting without touching
                // the entry map. A stale posting retained here is
                // harmless: it never reaches a counter, and the periodic
                // sweep reclaims it.
                return true;
            }
            if self.slot_gen(p.key, p.width) != Some(p.gen) {
                return false; // stale: slot replaced, dropped, or evicted
            }
            // The damage point is the first search that depended on any
            // *flipped, tracked* answer. A flip of an untracked kind is
            // exactly what certificates exist to survive.
            let k = match (
                relay_flip.then_some(p.relay_ord).flatten(),
                endpoint_flip.then_some(p.endpoint_ord).flatten(),
            ) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let Some(k) = k else {
                saved += 1;
                return true;
            };
            self.counters.flip_ordinal.record(u64::from(k));
            if k > 0 {
                self.damage_slot(p.key, p.width, k);
                damaged += 1;
                // Keep the posting: the slot lives on (damaged) and a
                // deeper flip must still be able to reach it. Re-damaging
                // at the same ordinal is a no-op.
                true
            } else {
                self.kill_slot(p.key, p.width);
                killed += 1;
                false
            }
        });
        self.counters.invalidated_by_node.add(killed);
        self.counters.damaged.add(damaged);
        self.counters.cert_saves.add(saved);
        self.counters.killed_per_delta.record(killed);
        self.node_postings[node.index()] = postings;
    }

    /// Drops every slot with a cached candidate crossing `edge` (see the
    /// module docs for why this is a freshness policy).
    pub(crate) fn fail_edge(&mut self, net: &QuantumNetwork, edge: EdgeId) {
        let (u, v) = net.graph().endpoints(edge);
        let canon = net.graph().find_edge(u, v).unwrap_or(edge);
        let mut postings = std::mem::take(&mut self.edge_postings[canon.index()]);
        for p in postings.drain(..) {
            if self.slot_gen(p.key, p.width) == Some(p.gen) {
                self.kill_slot(p.key, p.width);
                self.counters.invalidated_by_edge.inc();
            }
        }
        self.edge_postings[canon.index()] = postings;
    }

    /// The live generation of slot `(key, width)`, if present. Width 0
    /// never has a slot (slots index `width - 1`).
    fn slot_gen(&self, key: (NodeId, NodeId), width: u32) -> Option<u64> {
        self.entries
            .get(&key)?
            .slots
            .get((width as usize).checked_sub(1)?)?
            .as_ref()
            .map(|s| s.gen)
    }

    fn kill_slot(&mut self, key: (NodeId, NodeId), width: u32) {
        let Some(wi) = (width as usize).checked_sub(1) else {
            return;
        };
        if let Some(entry) = self.entries.get_mut(&key) {
            if let Some(slot) = entry.slots.get_mut(wi) {
                *slot = None;
            }
        }
    }

    /// Demotes slot `(key, width)` to repairable at ordinal `k` (or
    /// deepens existing damage to `min(damage, k)`).
    fn damage_slot(&mut self, key: (NodeId, NodeId), width: u32, k: u32) {
        let Some(wi) = (width as usize).checked_sub(1) else {
            return;
        };
        if let Some(slot) = self
            .entries
            .get_mut(&key)
            .and_then(|e| e.slots.get_mut(wi))
            .and_then(|s| s.as_mut())
        {
            slot.damage = Some(slot.damage.map_or(k, |d| d.min(k)));
        }
    }

    /// Drops every stale posting; runs once per ~`sweep_threshold` new
    /// postings so hygiene cost stays amortized-constant per store.
    fn sweep(&mut self) {
        self.postings_since_sweep = 0;
        for i in 0..self.node_postings.len() {
            let mut list = std::mem::take(&mut self.node_postings[i]);
            list.retain(|p| self.slot_gen(p.key, p.width) == Some(p.gen));
            self.node_postings[i] = list;
        }
        for i in 0..self.edge_postings.len() {
            let mut list = std::mem::take(&mut self.edge_postings[i]);
            list.retain(|p| self.slot_gen(p.key, p.width) == Some(p.gen));
            self.edge_postings[i] = list;
        }
    }
}

/// `true` if moving a feasibility threshold from `a` to `b` changes the
/// answer `threshold >= width`: exactly the widths in `(min, max]`.
#[inline]
fn flips(width: u32, a: u32, b: u32) -> bool {
    let (lo, hi) = (a.min(b), a.max(b));
    lo < width && width <= hi
}

/// Merges a repaired slice's dependency set: the damaged slot's
/// certificate strata first depended on *before* the replayed prefix
/// ended (`ordinal < served` per kind — the only strata the served
/// results depend on) together with the live tail's certificate, keeping
/// the smaller first-dependent ordinal per kind for nodes in both.
/// Entries whose every kind falls at or past `served` drop out entirely.
/// Inputs and output are sorted by node.
fn merge_repair_footprint(prior: &[CertEntry], served: u32, live: &[CertEntry]) -> Vec<CertEntry> {
    let keep = |o: Option<u32>| o.filter(|&k| k < served);
    let min_kind = |a: Option<u32>, b: Option<u32>| match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    };
    let mut out: Vec<CertEntry> = Vec::with_capacity(prior.len() + live.len());
    let mut prior = prior
        .iter()
        .filter_map(|e| {
            let relay = keep(e.relay);
            let endpoint = keep(e.endpoint);
            (relay.is_some() || endpoint.is_some()).then_some(CertEntry {
                node: e.node,
                relay,
                endpoint,
            })
        })
        .peekable();
    let mut live = live.iter().copied().peekable();
    loop {
        match (prior.peek().copied(), live.peek().copied()) {
            (Some(p), Some(l)) => match p.node.cmp(&l.node) {
                std::cmp::Ordering::Less => {
                    out.push(p);
                    prior.next();
                }
                std::cmp::Ordering::Greater => {
                    out.push(l);
                    live.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(CertEntry {
                        node: p.node,
                        relay: min_kind(p.relay, l.relay),
                        endpoint: min_kind(p.endpoint, l.endpoint),
                    });
                    prior.next();
                    live.next();
                }
            },
            (Some(p), None) => {
                out.push(p);
                prior.next();
            }
            (None, Some(l)) => {
                out.push(l);
                live.next();
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::algorithms::{SelectionEngine, SelectionQuery};
    use fusion_core::{Demand, NetworkParams, SwapMode};
    use fusion_topology::TopologyConfig;

    fn world() -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 20,
            num_user_pairs: 3,
            avg_degree: 5.0,
            ..TopologyConfig::default()
        }
        .generate(13);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        (net, demands)
    }

    fn select_and_store(
        cache: &mut CandidateCache,
        engine: &mut SelectionEngine,
        net: &QuantumNetwork,
        demand: &Demand,
        caps: &[u32],
        max_width: u32,
    ) -> Vec<CandidatePath> {
        let key = (demand.source, demand.dest);
        let selected = engine.select_demand(
            net,
            demand,
            caps,
            SelectionQuery {
                h: 3,
                max_width,
                mode: SwapMode::NFusion,
            },
            |w| cache.reuse(key, w, demand.id),
        );
        cache.store(net, key, &selected);
        selected.into_iter().flat_map(|s| s.candidates).collect()
    }

    #[test]
    fn unchanged_capacity_is_a_full_hit_with_identical_bytes() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        let first = select_and_store(&mut cache, &mut engine, &net, &demands[0], &caps, 4);
        let second = select_and_store(&mut cache, &mut engine, &net, &demands[0], &caps, 4);
        assert_eq!(first, second);
        assert_eq!(cache.counters.admissions.value(), 2);
        assert_eq!(cache.counters.misses.value(), 1);
        assert_eq!(cache.counters.full_hits.value(), 1);
        assert_eq!(cache.counters.widths_reused.value(), 4);
    }

    #[test]
    fn flip_bands_are_exact() {
        // relay threshold c/2: 10 -> 8 moves relay 5 -> 4 (flips width 5
        // only) and endpoint 10 -> 8 (flips widths 9, 10).
        assert!(flips(5, 5, 4));
        assert!(!flips(4, 5, 4));
        assert!(!flips(6, 5, 4));
        assert!(flips(9, 10, 8) && flips(10, 10, 8));
        assert!(!flips(8, 10, 8));
        // Symmetric: capacity increases flip the same band.
        assert!(flips(5, 4, 5));
        assert!(!flips(5, 5, 5));
    }

    #[test]
    fn node_delta_outside_band_keeps_slots() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        select_and_store(&mut cache, &mut engine, &net, &demands[0], &caps, 2);
        // A switch losing 2 of its 10 qubits flips relay 5 -> 4 and
        // endpoint 10 -> 8: no width in 1..=2 is affected.
        let sw = net
            .graph()
            .node_ids()
            .find(|&v| net.is_switch(v) && caps[v.index()] == 10)
            .expect("default params give switches 10 qubits");
        cache.apply_node_delta(&net, sw, 10, 8);
        assert_eq!(cache.counters.invalidated_by_node.value(), 0);
        select_and_store(&mut cache, &mut engine, &net, &demands[0], &caps, 2);
        assert_eq!(
            cache.counters.full_hits.value(),
            1,
            "slots must have survived"
        );
    }

    #[test]
    fn node_delta_in_band_drops_only_affected_widths() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        let d = &demands[0];
        select_and_store(&mut cache, &mut engine, &net, d, &caps, 3);
        // Dropping the source user's capacity to 0 flips its endpoint
        // feasibility at every width; the source is in every footprint.
        cache.apply_node_delta(&net, d.source, caps[d.source.index()], 0);
        assert_eq!(cache.counters.invalidated_by_node.value(), 3);
        assert!(matches!(
            cache.reuse((d.source, d.dest), 1, d.id),
            WidthReuse::Miss
        ));
    }

    #[test]
    fn fail_edge_drops_slots_whose_candidates_cross_it() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        let d = &demands[0];
        let flat = select_and_store(&mut cache, &mut engine, &net, d, &caps, 2);
        let crossed = flat
            .iter()
            .flat_map(|c| c.path.nodes().windows(2))
            .next()
            .map(|hop| net.graph().find_edge(hop[0], hop[1]).unwrap());
        let Some(edge) = crossed else {
            return; // nothing routed on this world; nothing to test
        };
        cache.fail_edge(&net, edge);
        assert!(cache.counters.invalidated_by_edge.value() > 0);
        // An edge no candidate crosses must not invalidate anything.
        let before = cache.counters.invalidated_by_edge.value();
        let unused = net.graph().edge_ids().find(|&e| {
            let (u, v) = net.graph().endpoints(e);
            !flat.iter().any(|c| {
                c.path
                    .nodes()
                    .windows(2)
                    .any(|hop| (hop[0] == u && hop[1] == v) || (hop[0] == v && hop[1] == u))
            })
        });
        if let Some(e) = unused {
            cache.fail_edge(&net, e);
            assert_eq!(cache.counters.invalidated_by_edge.value(), before);
        }
    }

    #[test]
    fn entry_cap_evicts_oldest_pair() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 2, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        for d in demands.iter().take(3) {
            select_and_store(&mut cache, &mut engine, &net, d, &caps, 2);
        }
        assert_eq!(cache.counters.entries_evicted.value(), 1);
        assert_eq!(cache.entries.len(), 2);
        // The first-stored pair is gone; the last two remain.
        let d0 = &demands[0];
        assert!(matches!(
            cache.reuse((d0.source, d0.dest), 1, d0.id),
            WidthReuse::Miss
        ));
    }

    #[test]
    fn width_zero_is_rejected_not_underflowed() {
        // Regression: `width as usize - 1` underflowed (debug panic) for
        // a width-0 query from a degenerate demand or future N-party
        // caller; every slot-indexing path now rejects width 0.
        let (net, demands) = world();
        let d = &demands[0];
        let key = (d.source, d.dest);
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        assert!(matches!(cache.reuse(key, 0, d.id), WidthReuse::Miss));
        let degenerate = SelectedWidth {
            width: 0,
            candidates: Vec::new(),
            footprint: Some(Vec::new()),
            raw_reads: 0,
            log: Some(Vec::new()),
            served: 0,
        };
        cache.store(&net, key, &[degenerate]);
        assert!(matches!(cache.reuse(key, 0, d.id), WidthReuse::Miss));
        assert!(matches!(cache.reuse(key, 1, d.id), WidthReuse::Miss));
        // Internal helpers take the same guard.
        assert_eq!(cache.slot_gen(key, 0), None);
        cache.kill_slot(key, 0);
        cache.damage_slot(key, 0, 1);
    }

    #[test]
    fn damaged_slot_repairs_byte_identically() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let mut engine = SelectionEngine::new();
        let d = &demands[0];
        let key = (d.source, d.dest);
        select_and_store(&mut cache, &mut engine, &net, d, &caps, 4);
        // Pick a certificate entry whose *applicable* tracked kinds under
        // the delta `old -> 0` all sit past ordinal 0: the flip must
        // damage (not kill) its slot. Applicability follows the flip
        // bands: dropping to 0 flips the relay answer at widths
        // `<= old / 2` (switches) and the endpoint answer at widths
        // `<= old`.
        let entry = cache.entries.get(&key).expect("pair was stored");
        let picked = entry.slots.iter().enumerate().find_map(|(wi, slot)| {
            let s = slot.as_ref()?;
            let w = wi as u32 + 1;
            s.footprint.iter().find_map(|e| {
                let old = caps[e.node.index()];
                let relay_old = if net.is_switch(e.node) { old / 2 } else { 0 };
                let k = match (
                    (w <= relay_old).then_some(e.relay).flatten(),
                    (w <= old).then_some(e.endpoint).flatten(),
                ) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }?;
                (k > 0).then_some((e.node, k, w))
            })
        });
        let Some((v, o, w)) = picked else {
            panic!("fixture produced no damageable certificate entry past ordinal 0");
        };
        let mut caps2 = caps.clone();
        let old = caps2[v.index()];
        caps2[v.index()] = 0;
        cache.apply_node_delta(&net, v, old, 0);
        assert!(cache.counters.damaged.value() > 0, "slot must be damaged");
        match cache.reuse(key, w, d.id) {
            WidthReuse::Repair(seed) => assert_eq!(seed.intact, o),
            other => panic!("expected a repair seed, got {other:?}"),
        }
        // The repaired admission must equal a from-scratch engine run
        // under the post-delta capacities, byte for byte.
        let repaired = select_and_store(&mut cache, &mut engine, &net, d, &caps2, 4);
        assert!(cache.counters.repairs.value() > 0, "repair must be stored");
        let mut fresh = SelectionEngine::new();
        let scratch: Vec<CandidatePath> = fresh
            .select_demand(
                &net,
                d,
                &caps2,
                SelectionQuery {
                    h: 3,
                    max_width: 4,
                    mode: SwapMode::NFusion,
                },
                |_| WidthReuse::Miss,
            )
            .into_iter()
            .flat_map(|s| s.candidates)
            .collect();
        assert_eq!(repaired, scratch);
        // The repaired slot is live again and serves full hits.
        let again = select_and_store(&mut cache, &mut engine, &net, d, &caps2, 4);
        assert_eq!(again, scratch);
    }

    #[test]
    fn cap_eviction_counts_as_eviction_not_invalidation() {
        // Counter-semantics pin for `--stats` honesty: slots displaced by
        // the entry cap increment `entries_evicted` only; their stale
        // postings must die silently on the next delta, not masquerade as
        // footprint invalidations.
        let (net, demands) = world();
        let x = net
            .graph()
            .node_ids()
            .find(|&v| net.is_switch(v))
            .expect("world has switches");
        let slice = |o| SelectedWidth {
            width: 1,
            candidates: Vec::new(),
            footprint: Some(vec![CertEntry {
                node: x,
                relay: Some(o),
                endpoint: Some(o),
            }]),
            raw_reads: 1,
            log: Some(vec![None]),
            served: 0,
        };
        let key_a = (demands[0].source, demands[0].dest);
        let key_b = (demands[1].source, demands[1].dest);
        let mut cache = CandidateCache::new(&net, 1, &Registry::enabled());
        cache.store(&net, key_a, &[slice(0)]);
        cache.store(&net, key_b, &[slice(0)]); // cap 1: evicts pair A
        assert_eq!(cache.counters.entries_evicted.value(), 1);
        assert_eq!(cache.counters.invalidated_by_node.value(), 0);
        cache.apply_node_delta(&net, x, 10, 0);
        // Only B's live slot counts; A's posting is generation-stale.
        assert_eq!(cache.counters.invalidated_by_node.value(), 1);
        assert_eq!(cache.counters.entries_evicted.value(), 1);
        assert_eq!(cache.counters.damaged.value(), 0);
    }

    #[test]
    fn cap_eviction_of_repairable_slot_counts_as_eviction_not_kill() {
        // Regression for the repair lattice's counter semantics: a slot
        // sitting in the *repairable* state when the entry cap displaces
        // its pair must increment `entries_evicted` only — it is not a
        // new damage event, not a footprint kill, and its stale postings
        // must die silently on the next delta.
        let (net, demands) = world();
        let x = net
            .graph()
            .node_ids()
            .find(|&v| net.is_switch(v))
            .expect("world has switches");
        let slice = |o| SelectedWidth {
            width: 1,
            candidates: Vec::new(),
            footprint: Some(vec![CertEntry {
                node: x,
                relay: Some(o),
                endpoint: Some(o),
            }]),
            raw_reads: 1,
            log: Some(vec![None, None]),
            served: 0,
        };
        let key_a = (demands[0].source, demands[0].dest);
        let key_b = (demands[1].source, demands[1].dest);
        let mut cache = CandidateCache::new(&net, 1, &Registry::enabled());
        cache.store(&net, key_a, &[slice(1)]);
        // Damage A's slot: it is now repairable, with a live posting.
        cache.apply_node_delta(&net, x, 10, 0);
        assert_eq!(cache.counters.damaged.value(), 1);
        assert!(matches!(
            cache.reuse(key_a, 1, demands[0].id),
            WidthReuse::Repair(_)
        ));
        // Cap 1: storing pair B evicts the repairable pair A wholesale.
        cache.store(&net, key_b, &[slice(1)]);
        assert_eq!(cache.counters.entries_evicted.value(), 1);
        assert!(matches!(
            cache.reuse(key_a, 1, demands[0].id),
            WidthReuse::Miss
        ));
        // The eviction is not an invalidation, a kill, or more damage.
        assert_eq!(cache.counters.invalidated_by_node.value(), 0);
        assert_eq!(cache.counters.damaged.value(), 1);
        // A's stale posting dies silently; only B's live slot reacts
        // (damaged at ordinal 1 again — B's slot, not A's).
        cache.apply_node_delta(&net, x, 10, 0);
        assert_eq!(cache.counters.invalidated_by_node.value(), 0);
        assert_eq!(cache.counters.damaged.value(), 2);
        assert_eq!(cache.counters.entries_evicted.value(), 1);
    }

    #[test]
    fn untracked_kind_flip_is_a_cert_save() {
        // A delta that flips only a kind the certificate does not track
        // must retain the slot byte-for-byte and count a `cert_saves`.
        let (net, demands) = world();
        let x = net
            .graph()
            .node_ids()
            .find(|&v| net.is_switch(v))
            .expect("world has switches");
        let key = (demands[0].source, demands[0].dest);
        // Width-4 slice tracking only x's relay answer. Capacity 10 -> 8
        // flips the endpoint answer at widths 9..=10 and the relay answer
        // at width 5 only — width 4 tracks relay, which does not flip.
        let slice = SelectedWidth {
            width: 4,
            candidates: Vec::new(),
            footprint: Some(vec![CertEntry {
                node: x,
                relay: Some(0),
                endpoint: None,
            }]),
            raw_reads: 1,
            log: Some(vec![None]),
            served: 0,
        };
        let mut cache = CandidateCache::new(&net, 4, &Registry::enabled());
        cache.store(&net, key, &[slice]);
        cache.apply_node_delta(&net, x, 10, 8);
        assert_eq!(cache.counters.cert_saves.value(), 0, "no band flipped at width 4");
        // 10 -> 6 flips relay at widths 4..=5: the tracked kind dies.
        // But first: 10 -> 7 flips endpoint at 8..=10 and relay at 4..=5
        // — width 4 is in the relay band, tracked, ordinal 0: kill.
        // Use a fresh pair for the untracked case: endpoint-only flip.
        let key_b = (demands[1].source, demands[1].dest);
        let slice_b = SelectedWidth {
            width: 9,
            candidates: Vec::new(),
            footprint: Some(vec![CertEntry {
                node: x,
                relay: Some(0),
                endpoint: None,
            }]),
            raw_reads: 1,
            log: Some(vec![None]),
            served: 0,
        };
        cache.store(&net, key_b, &[slice_b]);
        // 10 -> 8 flips the endpoint answer at width 9; the certificate
        // tracks only relay (which moves 5 -> 4, not reaching width 9).
        cache.apply_node_delta(&net, x, 10, 8);
        assert_eq!(cache.counters.cert_saves.value(), 1);
        assert_eq!(cache.counters.invalidated_by_node.value(), 0);
        assert_eq!(cache.counters.damaged.value(), 0);
        assert!(
            matches!(cache.reuse(key_b, 9, demands[1].id), WidthReuse::Full(_)),
            "saved slot must still serve"
        );
    }

    #[test]
    fn sweep_threshold_is_construction_fixed() {
        // Pinned as intentional: the threshold amortizes posting hygiene
        // over the network's structural size, and the structure never
        // mutates — `fail_link` is a routing freshness event, not an
        // edge removal, so recomputing the bound after one would be
        // drift, not correction.
        let (net, _) = world();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        let expected = (8 * (net.node_count() + net.graph().edge_count())).max(4096);
        assert_eq!(cache.sweep_threshold, expected);
        let e = net.graph().edge_ids().next().expect("world has edges");
        cache.fail_edge(&net, e);
        cache.fail_edge(&net, e);
        assert_eq!(cache.sweep_threshold, expected);
    }

    #[test]
    fn sweep_discards_stale_postings() {
        let (net, demands) = world();
        let caps = net.capacities();
        let mut cache = CandidateCache::new(&net, 64, &Registry::enabled());
        cache.sweep_threshold = 1; // sweep after every store
        let mut engine = SelectionEngine::new();
        let d = &demands[0];
        select_and_store(&mut cache, &mut engine, &net, d, &caps, 2);
        // Invalidate everything, then store again: the sweep after the
        // second store must leave only live-generation postings.
        cache.apply_node_delta(&net, d.source, caps[d.source.index()], 0);
        select_and_store(&mut cache, &mut engine, &net, d, &caps, 2);
        for (i, list) in cache.node_postings.iter().enumerate() {
            for p in list {
                assert_eq!(
                    cache.slot_gen(p.key, p.width),
                    Some(p.gen),
                    "stale posting survived sweep at node {i}"
                );
            }
        }
    }
}

/// Test support for driving the repair path through the full admission
/// stack: organic churn traces reach damage-then-reuse only in a deep
/// tail (a delta batch must flip *only* spur-only reads of a slot that
/// is queried again before any other batch lands), so state-level tests
/// inflict the smallest such damage directly. Extra damage is always
/// conservative: the repaired widths are recomputed against the live
/// residuals, so byte-identity is unaffected.
#[cfg(test)]
impl CandidateCache {
    /// The lowest-width live slot a churn flip could damage without
    /// killing, as `(key, width, ordinal)`: prefers a slot with a
    /// spur-only read (a real flip there damages at that ordinal); falls
    /// back to any slot whose log ran past the first search, damaged at
    /// ordinal 1. The fallback matters under the shared SPT cache, whose
    /// monotonically-growing tree read-set is folded into every
    /// footprint at ordinal 0 and blankets most spur-only reads.
    pub(crate) fn first_repairable(&self) -> Option<((NodeId, NodeId), u32, u32)> {
        let spur_only = self.entries.iter().find_map(|(&key, entry)| {
            entry.slots.iter().enumerate().find_map(|(wi, slot)| {
                let s = slot.as_ref()?;
                let e = s.footprint.iter().find(|e| e.first_ordinal() > 0)?;
                Some((key, wi as u32 + 1, e.first_ordinal()))
            })
        });
        spur_only.or_else(|| {
            self.entries.iter().find_map(|(&key, entry)| {
                entry.slots.iter().enumerate().find_map(|(wi, slot)| {
                    let s = slot.as_ref()?;
                    (s.log.len() > 1).then_some((key, wi as u32 + 1, 1))
                })
            })
        })
    }

    /// Damage `(key, width)` from ordinal `k`, as a flip on a node first
    /// read at `k` would.
    pub(crate) fn damage_for_test(&mut self, key: (NodeId, NodeId), width: u32, k: u32) {
        self.damage_slot(key, width, k);
    }
}
