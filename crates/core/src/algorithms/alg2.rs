//! Algorithm 2 — Paths Selection: Yen's deviation structure driven by
//! Algorithm 1, producing up to `h` candidate paths per (demand, width)
//! for every width from `MAX_WIDTH` down to 1.
//!
//! Candidates are discovered with the n-fusion path metric (which is
//! decomposable and therefore Dijkstra-compatible) and scored with the
//! caller's [`SwapMode`]; capacity during selection is the *full* network
//! capacity — contention is resolved later by Algorithm 3.

use std::collections::HashSet;

use fusion_graph::{Metric, NodeId, Path, SearchScratch};

use crate::algorithms::alg1::{largest_rate_path_with, PathConstraints};
use crate::demand::{Demand, DemandId};
use crate::flow::WidthedPath;
use crate::metrics::path_rate;
use crate::network::QuantumNetwork;
use crate::plan::SwapMode;

/// One candidate route emitted by Algorithm 2.
#[derive(Debug, Clone)]
pub struct CandidatePath {
    /// The demand this candidate serves.
    pub demand: DemandId,
    /// The loopless route.
    pub path: Path,
    /// Uniform channel width.
    pub width: u32,
    /// Mode-dependent success score used for Algorithm 3's ordering.
    pub metric: Metric,
}

/// Runs Algorithm 2 for every demand: for each width from `max_width` down
/// to 1, finds up to `h` highest-rate loopless paths via Yen deviations
/// over Algorithm 1.
///
/// `capacity` is the per-node qubit budget used for feasibility during
/// selection (the paper uses the full capacity here; B1 passes its running
/// remainder).
///
/// # Panics
///
/// Panics if `h == 0` or `max_width == 0`.
#[must_use]
pub fn paths_selection(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
) -> Vec<CandidatePath> {
    assert!(h > 0, "need at least one candidate per width");
    assert!(max_width > 0, "max width must be positive");
    let mut scratch = SearchScratch::with_capacity(net.node_count());
    let per_demand: Vec<Vec<Vec<CandidatePath>>> = demands
        .iter()
        .map(|d| demand_candidates(net, d, capacity, h, max_width, mode, &mut scratch))
        .collect();
    assemble_width_major(per_demand, max_width)
}

/// Parallel variant of [`paths_selection`]: demands are sharded
/// round-robin over `threads` workers, each with its own search scratch.
/// Candidate construction evaluates every demand against the *full*
/// capacity (contention is resolved later by Algorithm 3), so demands are
/// independent and the output is bit-identical to the serial version.
///
/// # Panics
///
/// Panics if `h == 0`, `max_width == 0`, or `threads == 0`.
#[must_use]
pub fn paths_selection_parallel(
    net: &QuantumNetwork,
    demands: &[Demand],
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    threads: usize,
) -> Vec<CandidatePath> {
    assert!(threads > 0, "need at least one worker");
    if threads == 1 || demands.len() <= 1 {
        return paths_selection(net, demands, capacity, h, max_width, mode);
    }
    assert!(h > 0, "need at least one candidate per width");
    assert!(max_width > 0, "max width must be positive");

    let mut slots: Vec<Option<Vec<Vec<CandidatePath>>>> = vec![None; demands.len()];
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(demands.len()))
            .map(|t| {
                scope.spawn(move |_| {
                    let mut scratch = SearchScratch::with_capacity(net.node_count());
                    demands
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(di, d)| {
                            let cands = demand_candidates(
                                net,
                                d,
                                capacity,
                                h,
                                max_width,
                                mode,
                                &mut scratch,
                            );
                            (di, cands)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (di, cands) in handle.join().expect("selection workers must not panic") {
                slots[di] = Some(cands);
            }
        }
    })
    .expect("selection scope must not panic");

    let per_demand = slots
        .into_iter()
        .map(|s| s.expect("every demand was assigned to a worker"))
        .collect();
    assemble_width_major(per_demand, max_width)
}

/// One demand's candidates, grouped per width in descending-width order
/// (`out[i]` holds width `max_width - i`).
fn demand_candidates(
    net: &QuantumNetwork,
    demand: &Demand,
    capacity: &[u32],
    h: usize,
    max_width: u32,
    mode: SwapMode,
    scratch: &mut SearchScratch,
) -> Vec<Vec<CandidatePath>> {
    (1..=max_width)
        .rev()
        .map(|width| {
            k_best_paths(net, demand, capacity, h, width, scratch)
                .into_iter()
                .filter_map(|path| {
                    let wp = WidthedPath::uniform(path.clone(), width);
                    let metric = mode.score(net, &wp);
                    (metric > Metric::ZERO).then_some(CandidatePath {
                        demand: demand.id,
                        path,
                        width,
                        metric,
                    })
                })
                .collect()
        })
        .collect()
}

/// Flattens per-demand, per-width candidate groups into the pipeline's
/// canonical order: width-major (descending), demand order within a width.
fn assemble_width_major(
    per_demand: Vec<Vec<Vec<CandidatePath>>>,
    max_width: u32,
) -> Vec<CandidatePath> {
    let mut per_demand = per_demand;
    let mut out = Vec::new();
    for wi in 0..max_width as usize {
        for groups in &mut per_demand {
            out.append(&mut groups[wi]);
        }
    }
    out
}

/// Yen's algorithm over Algorithm 1 for one demand at one width.
fn k_best_paths(
    net: &QuantumNetwork,
    demand: &Demand,
    capacity: &[u32],
    h: usize,
    width: u32,
    scratch: &mut SearchScratch,
) -> Vec<Path> {
    let base = PathConstraints::default();
    let Some((first, metric)) = largest_rate_path_with(
        scratch,
        net,
        demand.source,
        demand.dest,
        width,
        capacity,
        &base,
    ) else {
        return Vec::new();
    };

    // Pending deviation: discovery metric, path, and the banned hops
    // inherited along its deviation branch — the paper's E'.
    type Pending = (Metric, Path, HashSet<(NodeId, NodeId)>);
    let mut accepted: Vec<(Path, Metric)> = Vec::new();
    let mut queue: Vec<Pending> = vec![(metric, first, HashSet::new())];
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();

    while accepted.len() < h {
        // Pop the best pending candidate (deterministic tie-break on the
        // node sequence).
        let Some(best_idx) = queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, path, banned) = queue.swap_remove(best_idx);
        if !seen.insert(path.nodes().to_vec()) {
            continue;
        }
        accepted.push((path.clone(), Metric::ZERO));
        if accepted.len() >= h {
            break;
        }

        // Deviations at every hop of the newly accepted path.
        for i in 0..path.hops() {
            let spur_node = path.nodes()[i];
            let root = path.prefix(i);

            // The paper's tuples carry E' and extend it with the deviated
            // edge e; the accepted-path bans below are recomputed per
            // deviation (classic Yen) and not inherited.
            let mut inherited = banned.clone();
            inherited.insert(PathConstraints::hop_key(
                path.nodes()[i],
                path.nodes()[i + 1],
            ));

            let mut cons = PathConstraints {
                banned_hops: inherited.clone(),
                ..Default::default()
            };
            // Classic Yen: also ban the next hop of every accepted path
            // sharing this root, so deviations cannot regenerate them.
            for (acc, _) in &accepted {
                if acc.len() > i + 1 && acc.nodes()[..=i] == *root.nodes() {
                    cons.ban_hop(acc.nodes()[i], acc.nodes()[i + 1]);
                }
            }
            for &n in &root.nodes()[..i] {
                cons.ban_node(n);
            }

            let Some((spur, _)) = largest_rate_path_with(
                scratch,
                net,
                spur_node,
                demand.dest,
                width,
                capacity,
                &cons,
            ) else {
                continue;
            };
            let combined = root.join(&spur);
            if seen.contains(combined.nodes()) {
                continue;
            }
            if queue.iter().any(|(_, p, _)| p == &combined) {
                continue;
            }
            // Score the whole deviation with the discovery metric.
            let m = path_rate(net, &combined, width);
            if m == Metric::ZERO {
                continue;
            }
            queue.push((m, combined, inherited));
        }

        // Paper line 14: bound the frontier to h outstanding paths.
        while queue.len() + accepted.len() > h {
            let Some(worst_idx) = queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.cmp(&b.0).then_with(|| b.1.nodes().cmp(a.1.nodes())))
                .map(|(i, _)| i)
            else {
                break;
            };
            queue.swap_remove(worst_idx);
        }
    }
    accepted.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandId;

    /// Three disjoint routes of increasing length between one user pair.
    fn triple_route() -> (QuantumNetwork, Demand, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(10.0, 0.0);
        let a = b.switch(1.0, 1.0, 10);
        let x1 = b.switch(1.0, 0.0, 10);
        let x2 = b.switch(2.0, 0.0, 10);
        let y1 = b.switch(1.0, -1.0, 10);
        let y2 = b.switch(2.0, -1.0, 10);
        let y3 = b.switch(3.0, -1.0, 10);
        for (u, v, len) in [
            // Route A: 2 hops through `a`.
            (s, a, 1_000.0),
            (a, d, 1_000.0),
            // Route B: 3 hops.
            (s, x1, 1_000.0),
            (x1, x2, 1_000.0),
            (x2, d, 1_000.0),
            // Route C: 4 hops.
            (s, y1, 1_000.0),
            (y1, y2, 1_000.0),
            (y2, y3, 1_000.0),
            (y3, d, 1_000.0),
        ] {
            b.link_with_length(u, v, len).unwrap();
        }
        let mut net = b.build();
        net.set_swap_success(0.9);
        let demand = Demand::new(DemandId::new(0), s, d);
        (net, demand, vec![s, d, a, x1, x2, y1, y2, y3])
    }

    #[test]
    fn finds_k_paths_in_rate_order() {
        let (net, demand, n) = triple_route();
        let caps = net.capacities();
        let paths = k_best_paths(&net, &demand, &caps, 3, 1, &mut SearchScratch::new());
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes(), &[n[0], n[2], n[1]], "2-hop route first");
        assert_eq!(paths[1].hops(), 3);
        assert_eq!(paths[2].hops(), 4);
        // Rates must be non-increasing.
        let rates: Vec<f64> = paths
            .iter()
            .map(|p| path_rate(&net, p, 1).value())
            .collect();
        assert!(rates.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn h_bounds_output() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let mut scratch = SearchScratch::new();
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 1, 1, &mut scratch).len(),
            1
        );
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 2, 1, &mut scratch).len(),
            2
        );
        // Only 3 loopless routes exist.
        assert_eq!(
            k_best_paths(&net, &demand, &caps, 10, 1, &mut scratch).len(),
            3
        );
    }

    #[test]
    fn paths_are_distinct_and_loopless() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let paths = k_best_paths(&net, &demand, &caps, 10, 2, &mut SearchScratch::new());
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes().to_vec()), "duplicate path {p}");
        }
    }

    #[test]
    fn selection_covers_all_widths_and_demands() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let candidates = paths_selection(&net, &[demand], &caps, 2, 3, SwapMode::NFusion);
        // Every returned width is in 1..=3 and has at most h = 2 entries.
        for w in 1..=3u32 {
            let count = candidates.iter().filter(|c| c.width == w).count();
            assert!(count <= 2, "width {w} produced {count} candidates");
            assert!(count >= 1, "width {w} missing");
        }
        // Widths above capacity/2 yield nothing.
        let too_wide = paths_selection(&net, &[demand], &caps, 2, 10, SwapMode::NFusion);
        assert!(too_wide.iter().all(|c| c.width <= 5));
    }

    #[test]
    fn candidate_metrics_match_mode() {
        let (net, demand, _) = triple_route();
        let caps = net.capacities();
        let nf = paths_selection(&net, &[demand], &caps, 1, 1, SwapMode::NFusion);
        let cl = paths_selection(&net, &[demand], &caps, 1, 1, SwapMode::Classic);
        assert_eq!(nf[0].path, cl[0].path);
        let wp = WidthedPath::uniform(nf[0].path.clone(), 1);
        assert_eq!(nf[0].metric, SwapMode::NFusion.score(&net, &wp));
        assert_eq!(cl[0].metric, SwapMode::Classic.score(&net, &wp));
    }

    #[test]
    fn parallel_selection_matches_serial_exactly() {
        use crate::network::NetworkParams;
        use fusion_topology::TopologyConfig;

        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 7,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(17);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let caps = net.capacities();
        let serial = paths_selection(&net, &demands, &caps, 3, 4, SwapMode::NFusion);
        for threads in [2, 3, 8, 32] {
            let parallel =
                paths_selection_parallel(&net, &demands, &caps, 3, 4, SwapMode::NFusion, threads);
            assert_eq!(serial.len(), parallel.len(), "threads={threads}");
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.demand, p.demand, "threads={threads}");
                assert_eq!(s.path, p.path, "threads={threads}");
                assert_eq!(s.width, p.width, "threads={threads}");
                assert_eq!(s.metric, p.metric, "threads={threads}");
            }
        }
    }

    #[test]
    fn no_candidates_for_disconnected_demand() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(1.0, 0.0);
        let _sw = b.switch(0.5, 0.0, 10);
        let net = b.build();
        let demand = Demand::new(DemandId::new(0), s, d);
        let caps = net.capacities();
        assert!(paths_selection(&net, &[demand], &caps, 3, 2, SwapMode::NFusion).is_empty());
    }
}
