use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point in the network's Euclidean deployment area.
///
/// The paper deploys nodes in a 10 000 × 10 000 unit square; distances feed
/// the per-link entanglement success probability `p = exp(-α·L)`.
///
/// # Examples
///
/// ```
/// use fusion_topology::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Horizontal coordinate in network units.
    pub x: f64,
    /// Vertical coordinate in network units.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Samples a uniform position inside `[0, side] × [0, side]`.
    pub fn sample(rng: &mut impl Rng, side: f64) -> Self {
        Position {
            x: rng.gen_range(0.0..side),
            y: rng.gen_range(0.0..side),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(1.0, 1.0);
        let b = Position::new(4.0, 5.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(2.0, 7.0);
        let b = Position::new(-3.0, 0.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn sample_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = Position::sample(&mut rng, 100.0);
            assert!((0.0..100.0).contains(&p.x));
            assert!((0.0..100.0).contains(&p.y));
        }
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            Position::sample(&mut a, 10.0),
            Position::sample(&mut b, 10.0)
        );
    }
}
