//! Graph search primitives: Dijkstra (min-sum and max-product), BFS, and
//! connected components.
//!
//! The max-product variant is the skeleton of the paper's Algorithm 1: the
//! entanglement rate of a path is a product of per-channel success
//! probabilities and per-switch swap probabilities, all in `(0, 1]`, so the
//! greedy frontier argument of Dijkstra applies with `max`/`*` in place of
//! `min`/`+`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fusion_telemetry::{Counter, Registry};

use crate::graph::{EdgeRef, NodeId, UnGraph};
use crate::metric::Metric;
use crate::path::Path;

const NO_PREV: usize = usize::MAX;

/// Counter handles for the Dijkstra hot paths. Default handles are
/// no-ops; wire real ones with [`SearchCounters::from_registry`] and
/// assign to [`SearchScratch::counters`]. Counts are a pure function of
/// the searches performed, so they live in the deterministic plane.
#[derive(Debug, Clone, Default)]
pub struct SearchCounters {
    /// Heap pops that settled a node (stale entries excluded).
    pub pops: Counter,
    /// Distance-label writes: initial labels plus relaxations.
    pub relaxations: Counter,
    /// `run_to` calls that exhausted the frontier without settling the
    /// target — the searches that prove unreachability.
    pub exhaustions: Counter,
}

impl SearchCounters {
    /// Creates handles named `<prefix>.pops`, `<prefix>.relaxations`,
    /// and `<prefix>.exhaustions` in `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry, prefix: &str) -> Self {
        if !registry.is_enabled() {
            return SearchCounters::default();
        }
        SearchCounters {
            pops: registry.counter(&format!("{prefix}.pops")),
            relaxations: registry.counter(&format!("{prefix}.relaxations")),
            exhaustions: registry.counter(&format!("{prefix}.exhaustions")),
        }
    }
}

/// Reusable scratch arenas for [`dijkstra_with`] and
/// [`max_product_dijkstra_with`].
///
/// A fresh Dijkstra run needs a distance array, a predecessor array, and a
/// frontier heap — three allocations that dominate the cost of short
/// queries on large graphs (Yen's algorithm issues hundreds of them per
/// demand). A `SearchScratch` owns those buffers and resets them
/// *generationally*: each run bumps a generation counter and entries are
/// considered unset until stamped with the current generation, so reset is
/// O(1) instead of O(nodes).
///
/// One scratch serves graphs of any size (buffers grow monotonically) but
/// must not be shared across threads; give each worker its own.
///
/// # Examples
///
/// ```
/// use fusion_graph::{search::SearchScratch, search, UnGraph};
///
/// let mut g: UnGraph<(), f64> = UnGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, 2.0);
///
/// let mut scratch = SearchScratch::new();
/// for _ in 0..3 {
///     let run = search::dijkstra_with(&mut scratch, &g, a, |_, w| *w);
///     assert_eq!(run.distance(b), Some(2.0));
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    dist: Vec<f64>,
    prev: Vec<usize>,
    stamps: crate::stamps::GenerationStamps,
    settled: crate::stamps::StampedSet,
    min_heap: BinaryHeap<Reverse<(Metric, NodeId)>>,
    max_heap: BinaryHeap<(Metric, NodeId)>,
    /// Telemetry handles; disabled (free) by default.
    pub counters: SearchCounters,
}

impl SearchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for graphs of up to `nodes` nodes.
    #[must_use]
    pub fn with_capacity(nodes: usize) -> Self {
        let mut scratch = SearchScratch {
            dist: vec![0.0; nodes],
            prev: vec![NO_PREV; nodes],
            stamps: crate::stamps::GenerationStamps::with_capacity(nodes),
            settled: crate::stamps::StampedSet::default(),
            min_heap: BinaryHeap::new(),
            max_heap: BinaryHeap::new(),
            counters: SearchCounters::default(),
        };
        scratch.settled.clear(nodes);
        scratch
    }

    /// Starts a new run over a graph with `n` nodes: grows buffers if
    /// needed and invalidates every entry of the previous run in O(1).
    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.dist.resize(n, 0.0);
            self.prev.resize(n, NO_PREV);
        }
        self.stamps.advance(n);
        self.settled.clear(n);
        self.min_heap.clear();
        self.max_heap.clear();
    }

    /// `true` if `i` has been written during the current run.
    #[inline]
    fn is_set(&self, i: usize) -> bool {
        self.stamps.is_current(i)
    }

    /// `true` if `i` was popped with its final distance during the current
    /// run — its `(dist, prev)` entry can no longer change.
    #[inline]
    fn is_settled(&self, i: usize) -> bool {
        self.settled.contains(i)
    }

    /// Writes `(dist, prev)` for node `i` in the current generation.
    #[inline]
    fn set(&mut self, i: usize, dist: f64, prev: usize) {
        self.counters.relaxations.inc();
        self.dist[i] = dist;
        self.prev[i] = prev;
        self.stamps.mark(i);
    }
}

/// Borrowed result of a scratch-backed min-sum Dijkstra run.
#[derive(Debug)]
pub struct MinSumRun<'a> {
    source: NodeId,
    scratch: &'a SearchScratch,
}

impl MinSumRun<'_> {
    /// Distance from the source to `node`, or `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.scratch
            .is_set(node.index())
            .then(|| self.scratch.dist[node.index()])
    }

    /// Reconstructs the shortest path from the source to `node`.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        if !self.scratch.is_set(node.index()) {
            return None;
        }
        walk_back(self.source, node, &self.scratch.prev)
    }

    /// The source node of this run.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }
}

/// Borrowed result of a scratch-backed max-product Dijkstra run.
#[derive(Debug)]
pub struct MaxProductRun<'a> {
    source: NodeId,
    scratch: &'a SearchScratch,
}

impl MaxProductRun<'_> {
    /// Best (largest) product metric from the source to `node`; `0.0`
    /// means unreachable.
    #[must_use]
    pub fn metric(&self, node: NodeId) -> Metric {
        if self.scratch.is_set(node.index()) {
            Metric::new(self.scratch.dist[node.index()])
        } else {
            Metric::ZERO
        }
    }

    /// Reconstructs the best path to `node` together with its metric;
    /// `None` if unreachable.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<(Path, Metric)> {
        let m = self.metric(node);
        if m <= Metric::ZERO && node != self.source {
            return None;
        }
        let path = walk_back(self.source, node, &self.scratch.prev)?;
        Some((path, m))
    }
}

/// Follows predecessor links from `node` back to `source`.
fn walk_back(source: NodeId, node: NodeId, prev: &[usize]) -> Option<Path> {
    let mut nodes = vec![node];
    let mut cur = node;
    while cur != source {
        let p = prev[cur.index()];
        if p == NO_PREV {
            return None;
        }
        cur = NodeId::new(p);
        nodes.push(cur);
    }
    nodes.reverse();
    Some(Path::new(nodes))
}

/// Result of a min-sum Dijkstra run from a single source.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<f64>>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Distance from the source to `node`, or `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.dist[node.index()]
    }

    /// Reconstructs the shortest path from the source to `node`.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        self.dist[node.index()]?;
        let mut nodes = vec![node];
        let mut cur = node;
        while cur != self.source {
            cur = self.prev[cur.index()]?;
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path::new(nodes))
    }

    /// The source node of this run.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }
}

/// Classic min-sum Dijkstra with a per-edge cost closure.
///
/// Edges for which `cost` returns a negative value are treated as unusable.
///
/// # Panics
///
/// Panics if `source` is out of bounds or if a cost is NaN.
pub fn dijkstra<N, E>(
    graph: &UnGraph<N, E>,
    source: NodeId,
    cost: impl FnMut(EdgeRef<'_, E>, &E) -> f64,
) -> ShortestPaths {
    let mut scratch = SearchScratch::with_capacity(graph.node_count());
    dijkstra_with(&mut scratch, graph, source, cost);
    let n = graph.node_count();
    let dist = (0..n)
        .map(|i| scratch.is_set(i).then(|| scratch.dist[i]))
        .collect();
    let prev = (0..n)
        .map(|i| {
            (scratch.is_set(i) && scratch.prev[i] != NO_PREV).then(|| NodeId::new(scratch.prev[i]))
        })
        .collect();
    ShortestPaths { source, dist, prev }
}

/// Scratch-backed min-sum Dijkstra: identical semantics to [`dijkstra`],
/// but all working memory comes from the caller-provided `scratch`, so a
/// loop of queries performs no per-query allocation.
///
/// # Panics
///
/// Panics if `source` is out of bounds or if a cost is NaN.
pub fn dijkstra_with<'s, N, E>(
    scratch: &'s mut SearchScratch,
    graph: &UnGraph<N, E>,
    source: NodeId,
    cost: impl FnMut(EdgeRef<'_, E>, &E) -> f64,
) -> MinSumRun<'s> {
    dijkstra_resume(scratch, graph, source, cost).finish()
}

/// A paused, goal-directed min-sum Dijkstra run (see [`dijkstra_resume`]).
#[derive(Debug)]
pub struct MinSumResume<'s, 'g, N, E, F> {
    scratch: &'s mut SearchScratch,
    graph: &'g UnGraph<N, E>,
    source: NodeId,
    cost: F,
}

/// Starts a *resumable* min-sum Dijkstra run: the search settles nodes
/// lazily, one [`MinSumResume::run_to`] target at a time, instead of
/// exhausting the whole graph up front.
///
/// The settle order, tie-breaking, and relaxation arithmetic are exactly
/// those of [`dijkstra_with`] — a paused run is the same computation
/// stopped early, so `run_to(t)` returns byte-for-byte the path that
/// `dijkstra_with(..).path_to(t)` would, while touching only the nodes
/// whose distance does not exceed `t`'s. Hot goal-directed callers (Yen
/// spur searches, Algorithm 2's width descent) use this to avoid settling
/// the far side of a large graph they will never read.
///
/// # Examples
///
/// ```
/// use fusion_graph::{search, UnGraph};
///
/// let mut g: UnGraph<(), f64> = UnGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 3.0);
///
/// let mut scratch = search::SearchScratch::new();
/// let mut run = search::dijkstra_resume(&mut scratch, &g, a, |_, w| *w);
/// let to_b = run.run_to(b).expect("b is reachable");
/// assert_eq!(to_b.nodes(), &[a, b]);
/// // Resuming the same run reuses everything settled so far.
/// let to_c = run.run_to(c).expect("c is reachable");
/// assert_eq!(to_c.nodes(), &[a, b, c]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of bounds; `run_to` panics if a cost is NaN.
pub fn dijkstra_resume<'s, 'g, N, E, F>(
    scratch: &'s mut SearchScratch,
    graph: &'g UnGraph<N, E>,
    source: NodeId,
    cost: F,
) -> MinSumResume<'s, 'g, N, E, F>
where
    F: FnMut(EdgeRef<'_, E>, &E) -> f64,
{
    scratch.begin(graph.node_count());
    scratch.set(source.index(), 0.0, NO_PREV);
    scratch.min_heap.push(Reverse((Metric::ZERO, source)));
    MinSumResume {
        scratch,
        graph,
        source,
        cost,
    }
}

impl<'s, N, E, F> MinSumResume<'s, '_, N, E, F>
where
    F: FnMut(EdgeRef<'_, E>, &E) -> f64,
{
    /// Pops and expands frontier nodes until `target` settles (when
    /// `Some`) or the frontier is exhausted.
    fn run_until(&mut self, target: Option<NodeId>) {
        while let Some(Reverse((d, u))) = self.scratch.min_heap.pop() {
            if self.scratch.dist[u.index()] != d.value() {
                continue; // stale entry
            }
            self.scratch.counters.pops.inc();
            self.scratch.settled.insert(u.index());
            for e in self.graph.incident_edges(u) {
                let w = (self.cost)(e, e.weight);
                if w < 0.0 {
                    continue;
                }
                assert!(!w.is_nan(), "edge cost must not be NaN");
                let v = e.other(u);
                let nd = d.value() + w;
                if !self.scratch.is_set(v.index()) || nd < self.scratch.dist[v.index()] {
                    self.scratch.set(v.index(), nd, u.index());
                    self.scratch.min_heap.push(Reverse((Metric::new(nd), v)));
                }
            }
            if target == Some(u) {
                return;
            }
        }
    }

    /// Settles nodes until `target` is final and returns its shortest
    /// path, or `None` when it is unreachable. Already-settled targets
    /// (from earlier `run_to` calls on this run) return without popping
    /// anything.
    pub fn run_to(&mut self, target: NodeId) -> Option<Path> {
        if !self.scratch.is_settled(target.index()) {
            self.run_until(Some(target));
        }
        if !self.scratch.is_settled(target.index()) {
            self.scratch.counters.exhaustions.inc();
            return None; // frontier exhausted: unreachable
        }
        walk_back(self.source, target, &self.scratch.prev)
    }

    /// Runs the remainder of the search to exhaustion, yielding the same
    /// borrowed result a plain [`dijkstra_with`] call produces.
    pub fn finish(mut self) -> MinSumRun<'s> {
        self.run_until(None);
        MinSumRun {
            source: self.source,
            scratch: self.scratch,
        }
    }
}

/// Result of a max-product Dijkstra run from a single source.
#[derive(Debug, Clone)]
pub struct BestRates {
    source: NodeId,
    metric: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl BestRates {
    /// Best (largest) product metric from the source to `node`; `0.0` means
    /// unreachable.
    #[must_use]
    pub fn metric(&self, node: NodeId) -> Metric {
        Metric::new(self.metric[node.index()])
    }

    /// Reconstructs the best path to `node`, together with its metric.
    /// Returns `None` if `node` is unreachable.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<(Path, Metric)> {
        if self.metric[node.index()] <= 0.0 && node != self.source {
            return None;
        }
        let mut nodes = vec![node];
        let mut cur = node;
        while cur != self.source {
            cur = self.prev[cur.index()]?;
            nodes.push(cur);
        }
        nodes.reverse();
        Some((Path::new(nodes), Metric::new(self.metric[node.index()])))
    }
}

/// Max-product Dijkstra: finds, for every node, the path from `source`
/// maximizing the product of edge factors and transit factors.
///
/// * `edge_factor(from, e)` — multiplicative success factor in `(0, 1]` for
///   traversing edge `e` out of node `from`; return `None` to forbid the
///   traversal (e.g. the far endpoint lacks capacity).
/// * `transit_factor(u)` — factor charged when a path passes *through*
///   non-source node `u` (i.e. when an edge leaves `u` after one entered);
///   return `None` to forbid transit through `u` (it may still be a path
///   endpoint).
///
/// The greedy argument requires all factors to lie in `(0, 1]`, which holds
/// for probabilities; factors outside that range panic.
///
/// # Panics
///
/// Panics if `source` is out of bounds or a factor is outside `(0, 1]`.
pub fn max_product_dijkstra<N, E>(
    graph: &UnGraph<N, E>,
    source: NodeId,
    edge_factor: impl FnMut(NodeId, EdgeRef<'_, E>) -> Option<f64>,
    transit_factor: impl FnMut(NodeId) -> Option<f64>,
) -> BestRates {
    let mut scratch = SearchScratch::with_capacity(graph.node_count());
    max_product_dijkstra_with(&mut scratch, graph, source, edge_factor, transit_factor);
    let n = graph.node_count();
    let metric = (0..n)
        .map(|i| {
            if scratch.is_set(i) {
                scratch.dist[i]
            } else {
                0.0
            }
        })
        .collect();
    let prev = (0..n)
        .map(|i| {
            (scratch.is_set(i) && scratch.prev[i] != NO_PREV).then(|| NodeId::new(scratch.prev[i]))
        })
        .collect();
    BestRates {
        source,
        metric,
        prev,
    }
}

/// Scratch-backed max-product Dijkstra: identical semantics to
/// [`max_product_dijkstra`], but all working memory comes from the
/// caller-provided `scratch` (Algorithm 2's Yen deviations issue hundreds
/// of these per demand).
///
/// # Panics
///
/// Panics if `source` is out of bounds or a factor is outside `(0, 1]`.
pub fn max_product_dijkstra_with<'s, N, E, FE, FT>(
    scratch: &'s mut SearchScratch,
    graph: &UnGraph<N, E>,
    source: NodeId,
    edge_factor: FE,
    transit_factor: FT,
) -> MaxProductRun<'s>
where
    FE: FnMut(NodeId, EdgeRef<'_, E>) -> Option<f64>,
    FT: FnMut(NodeId) -> Option<f64>,
{
    max_product_resume(scratch, graph, source, edge_factor, transit_factor).finish()
}

/// A paused, goal-directed max-product Dijkstra run (see
/// [`max_product_resume`]).
#[derive(Debug)]
pub struct MaxProductResume<'s, 'g, N, E, FE, FT> {
    scratch: &'s mut SearchScratch,
    graph: &'g UnGraph<N, E>,
    source: NodeId,
    edge_factor: FE,
    transit_factor: FT,
}

/// Starts a *resumable* max-product Dijkstra run: the metric counterpart
/// of [`dijkstra_resume`], settling nodes in non-increasing metric order
/// only as far as each [`MaxProductResume::run_to`] target requires.
///
/// A paused run is [`max_product_dijkstra_with`] stopped early — same
/// factor evaluations in the same order, same tie-breaking, same `f64`
/// products — so the returned `(path, metric)` for a target is identical
/// to the full run's `path_to`, at a fraction of the settle work when the
/// target's metric is far above the graph's floor.
///
/// # Panics
///
/// Panics if `source` is out of bounds; `run_to` panics if a factor is
/// outside `(0, 1]`.
pub fn max_product_resume<'s, 'g, N, E, FE, FT>(
    scratch: &'s mut SearchScratch,
    graph: &'g UnGraph<N, E>,
    source: NodeId,
    edge_factor: FE,
    transit_factor: FT,
) -> MaxProductResume<'s, 'g, N, E, FE, FT>
where
    FE: FnMut(NodeId, EdgeRef<'_, E>) -> Option<f64>,
    FT: FnMut(NodeId) -> Option<f64>,
{
    scratch.begin(graph.node_count());
    scratch.set(source.index(), 1.0, NO_PREV);
    scratch.max_heap.push((Metric::ONE, source));
    MaxProductResume {
        scratch,
        graph,
        source,
        edge_factor,
        transit_factor,
    }
}

impl<'s, N, E, FE, FT> MaxProductResume<'s, '_, N, E, FE, FT>
where
    FE: FnMut(NodeId, EdgeRef<'_, E>) -> Option<f64>,
    FT: FnMut(NodeId) -> Option<f64>,
{
    /// Pops and expands frontier nodes until `target` settles (when
    /// `Some`) or the frontier is exhausted.
    fn run_until(&mut self, target: Option<NodeId>) {
        while let Some((_, u)) = self.settle_one() {
            if target == Some(u) {
                return;
            }
        }
    }

    /// Settles and expands exactly one frontier node, returning its final
    /// metric, or `None` when the frontier is exhausted. Stepping a run
    /// with `settle_one` visits the same nodes in the same order as
    /// [`run_to`](MaxProductResume::run_to)/[`finish`](MaxProductResume::finish);
    /// it exists so callers that maintain per-settle state (e.g. a shared
    /// shortest-path-tree overlay) can interleave their bookkeeping with
    /// the search.
    pub fn settle_one(&mut self) -> Option<(Metric, NodeId)> {
        while let Some((m, u)) = self.scratch.max_heap.pop() {
            if self.scratch.dist[u.index()] != m.value() {
                continue; // stale entry
            }
            self.scratch.counters.pops.inc();
            self.scratch.settled.insert(u.index());
            // Transit factor applies when the path continues through u;
            // a forbidden transit settles u without expanding it.
            let through = if u == self.source {
                Some(1.0)
            } else {
                (self.transit_factor)(u).inspect(|&t| {
                    assert!(
                        t > 0.0 && t <= 1.0,
                        "transit factor must be in (0,1], got {t}"
                    );
                })
            };
            if let Some(through) = through {
                for e in self.graph.incident_edges(u) {
                    let Some(f) = (self.edge_factor)(u, e) else {
                        continue;
                    };
                    assert!(f > 0.0 && f <= 1.0, "edge factor must be in (0,1], got {f}");
                    let v = e.other(u);
                    let nm = m.value() * through * f;
                    if !self.scratch.is_set(v.index()) || nm > self.scratch.dist[v.index()] {
                        self.scratch.set(v.index(), nm, u.index());
                        self.scratch.max_heap.push((Metric::new(nm), v));
                    }
                }
            }
            return Some((m, u));
        }
        None
    }

    /// The next node the run would settle and its final metric, without
    /// settling it; `None` when the frontier is exhausted. Stale heap
    /// entries encountered on the way are discarded, so the call is
    /// amortized O(log frontier).
    pub fn peek_next(&mut self) -> Option<(Metric, NodeId)> {
        while let Some(&(m, u)) = self.scratch.max_heap.peek() {
            if self.scratch.dist[u.index()] == m.value() {
                return Some((m, u));
            }
            self.scratch.max_heap.pop();
        }
        None
    }

    /// `true` if `node` has settled (its label is final).
    #[must_use]
    pub fn is_settled(&self, node: NodeId) -> bool {
        self.scratch.is_settled(node.index())
    }

    /// The current (possibly not yet final) label of `node`, or `None`
    /// if the run has not relaxed it.
    #[must_use]
    pub fn label(&self, node: NodeId) -> Option<f64> {
        self.scratch
            .is_set(node.index())
            .then(|| self.scratch.dist[node.index()])
    }

    /// The best known path from the source to `node`, following the
    /// current predecessor chain. Final once `node` has settled.
    #[must_use]
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        if !self.scratch.is_set(node.index()) {
            return None;
        }
        walk_back(self.source, node, &self.scratch.prev)
    }

    /// Captures the run's full state — every settled label plus the live
    /// frontier — into an owned [`ResumeSnapshot`] that can later be
    /// rebuilt with [`max_product_restore`].
    ///
    /// The caller supplies the settle order (the sequence of nodes
    /// returned by [`settle_one`](MaxProductResume::settle_one)), because
    /// the scratch tracks settledness as a set; the order matters for the
    /// restored run to relax in the original sequence.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `settled_in_order` disagrees with the
    /// scratch's settled set.
    #[must_use]
    pub fn capture(&self, settled_in_order: &[NodeId]) -> ResumeSnapshot {
        let prev_of = |i: usize| {
            let p = self.scratch.prev[i];
            (p != NO_PREV).then(|| NodeId::new(p))
        };
        let settled: Vec<_> = settled_in_order
            .iter()
            .map(|&u| {
                debug_assert!(self.scratch.is_settled(u.index()));
                (u, self.scratch.dist[u.index()], prev_of(u.index()))
            })
            .collect();
        debug_assert_eq!(
            settled.len(),
            (0..self.graph.node_count())
                .filter(|&i| self.scratch.is_settled(i))
                .count(),
            "settled_in_order must list every settled node exactly once"
        );
        let frontier = (0..self.graph.node_count())
            .filter(|&i| self.scratch.is_set(i) && !self.scratch.is_settled(i))
            .map(|i| (NodeId::new(i), self.scratch.dist[i], prev_of(i)))
            .collect();
        ResumeSnapshot {
            source: self.source,
            settled,
            frontier,
        }
    }

    /// Settles nodes until `target` is final and returns its best path
    /// and metric, or `None` when it is unreachable. Already-settled
    /// targets return without popping anything.
    pub fn run_to(&mut self, target: NodeId) -> Option<(Path, Metric)> {
        if !self.scratch.is_settled(target.index()) {
            self.run_until(Some(target));
        }
        if !self.scratch.is_settled(target.index()) {
            self.scratch.counters.exhaustions.inc();
            return None; // frontier exhausted: unreachable
        }
        let m = Metric::new(self.scratch.dist[target.index()]);
        if m <= Metric::ZERO && target != self.source {
            return None;
        }
        let path = walk_back(self.source, target, &self.scratch.prev)?;
        Some((path, m))
    }

    /// Runs the remainder of the search to exhaustion, yielding the same
    /// borrowed result a plain [`max_product_dijkstra_with`] call
    /// produces.
    pub fn finish(mut self) -> MaxProductRun<'s> {
        self.run_until(None);
        MaxProductRun {
            source: self.source,
            scratch: self.scratch,
        }
    }
}

/// An owned snapshot of a paused [`max_product_resume`] run: the settled
/// prefix in settle order plus the live frontier, each entry carrying its
/// `(node, label, predecessor)` triple.
///
/// Restoring a snapshot with [`max_product_restore`] and continuing
/// produces byte-identical labels, predecessors, and settle order to the
/// original run continuing in place — the heap holds one live entry per
/// frontier node and `(Metric, NodeId)` pairs are totally ordered, so the
/// pop sequence is a function of the entry *set*, not of heap layout.
/// This is what lets a per-source shortest-path tree be parked between
/// queries and resumed for a deeper target later (the serve layer's SPT
/// cache).
#[derive(Debug, Clone)]
pub struct ResumeSnapshot {
    /// Root of the run.
    pub source: NodeId,
    /// Settled nodes in settle order; labels are final.
    pub settled: Vec<(NodeId, f64, Option<NodeId>)>,
    /// Relaxed-but-unsettled nodes (scan order); labels may improve.
    pub frontier: Vec<(NodeId, f64, Option<NodeId>)>,
}

/// Rebuilds a paused max-product run from a [`ResumeSnapshot`] so it can
/// continue where [`MaxProductResume::capture`] left off.
///
/// The factor closures must be *observationally identical* to the ones
/// the captured run used (same `Some`/`None` decisions and values for
/// every node and edge) — the snapshot stores no factor state, so a
/// divergent closure silently yields a tree that matches neither run.
/// Callers enforce this with validity stamps on everything the closures
/// read.
///
/// # Panics
///
/// Panics if any snapshot node is out of bounds for `graph`.
pub fn max_product_restore<'s, 'g, N, E, FE, FT>(
    scratch: &'s mut SearchScratch,
    graph: &'g UnGraph<N, E>,
    snapshot: &ResumeSnapshot,
    edge_factor: FE,
    transit_factor: FT,
) -> MaxProductResume<'s, 'g, N, E, FE, FT>
where
    FE: FnMut(NodeId, EdgeRef<'_, E>) -> Option<f64>,
    FT: FnMut(NodeId) -> Option<f64>,
{
    scratch.begin(graph.node_count());
    let raw = |p: Option<NodeId>| p.map_or(NO_PREV, NodeId::index);
    for &(u, d, p) in &snapshot.settled {
        scratch.set(u.index(), d, raw(p));
        scratch.settled.insert(u.index());
    }
    for &(u, d, p) in &snapshot.frontier {
        scratch.set(u.index(), d, raw(p));
        scratch.max_heap.push((Metric::new(d), u));
    }
    MaxProductResume {
        scratch,
        graph,
        source: snapshot.source,
        edge_factor,
        transit_factor,
    }
}

/// Hop distances from `source` by breadth-first search; `None` = unreachable.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
#[must_use]
pub fn bfs_hops<N, E>(graph: &UnGraph<N, E>, source: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].expect("queued nodes have distances");
        for v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Labels every node with a connected-component index in `0..k` and returns
/// `(labels, k)`.
#[must_use]
pub fn connected_components<N, E>(graph: &UnGraph<N, E>) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0;
    for start in graph.node_ids() {
        if labels[start.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        labels[start.index()] = next;
        while let Some(u) = stack.pop() {
            for v in graph.neighbors(u) {
                if labels[v.index()] == usize::MAX {
                    labels[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// `true` if the graph is non-empty and every node is reachable from node 0.
#[must_use]
pub fn is_connected<N, E>(graph: &UnGraph<N, E>) -> bool {
    if graph.is_empty() {
        return false;
    }
    let (_, k) = connected_components(graph);
    k == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds the weighted graph
    /// `a --1-- b --1-- d`, `a --4-- c --1-- d`.
    fn diamond() -> (UnGraph<(), f64>, [NodeId; 4]) {
        let mut g = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(a, c, 4.0);
        g.add_edge(c, d, 1.0);
        (g, [a, b, c, d])
    }

    #[test]
    fn dijkstra_finds_min_sum() {
        let (g, [a, b, _c, d]) = diamond();
        let sp = dijkstra(&g, a, |_, w| *w);
        assert_eq!(sp.distance(d), Some(2.0));
        let p = sp.path_to(d).unwrap();
        assert_eq!(p.nodes(), &[a, b, d]);
        assert_eq!(sp.source(), a);
    }

    #[test]
    fn dijkstra_negative_cost_bans_edge() {
        let (g, [a, b, c, d]) = diamond();
        // Ban the a-b edge: the only route is via c.
        let sp = dijkstra(&g, a, |e, w| {
            if (e.source, e.target) == (a, b) || (e.source, e.target) == (b, a) {
                -1.0
            } else {
                *w
            }
        });
        assert_eq!(sp.distance(d), Some(5.0));
        assert_eq!(sp.path_to(d).unwrap().nodes(), &[a, c, d]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let sp = dijkstra(&g, a, |_, w| *w);
        assert_eq!(sp.distance(b), None);
        assert!(sp.path_to(b).is_none());
        assert_eq!(sp.distance(a), Some(0.0));
        assert_eq!(sp.path_to(a).unwrap().nodes(), &[a]);
    }

    #[test]
    fn max_product_prefers_fewer_lossy_hops() {
        // a-b-d: 0.9 * 0.9 = 0.81 through one transit (0.5) = 0.405
        // a-d direct: 0.5
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0.9);
        g.add_edge(b, d, 0.9);
        g.add_edge(a, d, 0.5);
        let best = max_product_dijkstra(&g, a, |_, e| Some(*e.weight), |_| Some(0.5));
        assert!((best.metric(d).value() - 0.5).abs() < 1e-12);
        assert_eq!(best.path_to(d).unwrap().0.nodes(), &[a, d]);
    }

    #[test]
    fn max_product_uses_transit_when_better() {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0.9);
        g.add_edge(b, d, 0.9);
        g.add_edge(a, d, 0.5);
        // With q = 0.9 the two-hop route wins: 0.9^3 = 0.729 > 0.5.
        let best = max_product_dijkstra(&g, a, |_, e| Some(*e.weight), |_| Some(0.9));
        assert!((best.metric(d).value() - 0.729).abs() < 1e-12);
        assert_eq!(best.path_to(d).unwrap().0.nodes(), &[a, b, d]);
    }

    #[test]
    fn max_product_forbidden_transit() {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0.9);
        g.add_edge(b, d, 0.9);
        let best = max_product_dijkstra(&g, a, |_, e| Some(*e.weight), |_| None);
        // b is reachable as an endpoint but cannot be transited.
        assert!(best.path_to(b).is_some());
        assert!(best.path_to(d).is_none());
    }

    #[test]
    fn max_product_forbidden_edge() {
        let (g, [a, b, _c, d]) = diamond();
        let best = max_product_dijkstra(
            &g,
            a,
            |_, e| {
                let banned = (e.source == a && e.target == b) || (e.source == b && e.target == a);
                (!banned).then_some(0.9)
            },
            |_| Some(1.0),
        );
        assert_eq!(best.path_to(d).unwrap().0.nodes(), &[a, _c, d]);
    }

    #[test]
    fn bfs_hops_counts() {
        let (g, [a, b, c, d]) = diamond();
        let hops = bfs_hops(&g, a);
        assert_eq!(hops[a.index()], Some(0));
        assert_eq!(hops[b.index()], Some(1));
        assert_eq!(hops[c.index()], Some(1));
        assert_eq!(hops[d.index()], Some(2));
    }

    #[test]
    fn scratch_runs_match_fresh_runs() {
        let (g, [a, b, c, d]) = diamond();
        let mut scratch = SearchScratch::new();
        // Interleave min-sum and max-product queries on one scratch: each
        // run must be independent of whatever the previous one left behind.
        for source in [a, d, b, a, c] {
            let run = dijkstra_with(&mut scratch, &g, source, |_, w| *w);
            let fresh = dijkstra(&g, source, |_, w| *w);
            for node in [a, b, c, d] {
                assert_eq!(run.distance(node), fresh.distance(node));
                assert_eq!(run.path_to(node), fresh.path_to(node));
            }
            assert_eq!(run.source(), source);
            let run = max_product_dijkstra_with(
                &mut scratch,
                &g,
                source,
                |_, _| Some(0.9),
                |_| Some(0.5),
            );
            let fresh = max_product_dijkstra(&g, source, |_, _| Some(0.9), |_| Some(0.5));
            for node in [a, b, c, d] {
                assert_eq!(run.metric(node), fresh.metric(node));
                assert_eq!(run.path_to(node), fresh.path_to(node));
            }
        }
    }

    proptest! {
        /// A dirty reused scratch must behave exactly like a fresh
        /// allocation for every query in a random sequence.
        #[test]
        fn scratch_reuse_matches_fresh_on_random_graphs(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 1u32..9), 1..24),
            sources in proptest::collection::vec(0usize..8, 1..6),
        ) {
            let mut g: UnGraph<(), f64> = UnGraph::new();
            for _ in 0..8 {
                g.add_node(());
            }
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), f64::from(w));
                }
            }
            let mut scratch = SearchScratch::new();
            for s in sources {
                let s = NodeId::new(s);
                let run = dijkstra_with(&mut scratch, &g, s, |_, w| *w);
                let fresh = dijkstra(&g, s, |_, w| *w);
                for node in g.node_ids() {
                    prop_assert_eq!(run.distance(node), fresh.distance(node));
                    prop_assert_eq!(run.path_to(node), fresh.path_to(node));
                }
            }
        }
    }

    #[test]
    fn goal_directed_min_sum_matches_full_run() {
        let (g, [a, b, c, d]) = diamond();
        let mut scratch = SearchScratch::new();
        for (source, target) in [(a, d), (d, a), (b, c), (a, a)] {
            let fresh = dijkstra(&g, source, |_, w| *w);
            let mut run = dijkstra_resume(&mut scratch, &g, source, |_, w| *w);
            assert_eq!(run.run_to(target), fresh.path_to(target));
            // A second call for the same target is answered from the
            // settled state.
            assert_eq!(run.run_to(target), fresh.path_to(target));
        }
    }

    #[test]
    fn goal_directed_stops_before_far_nodes() {
        // a --1-- b --1-- c --1-- d: running to b must not settle d.
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(c, d, 1.0);
        let mut scratch = SearchScratch::new();
        let mut run = dijkstra_resume(&mut scratch, &g, a, |_, w| *w);
        assert!(run.run_to(b).is_some());
        assert!(run.scratch.is_settled(b.index()));
        assert!(
            !run.scratch.is_settled(d.index()),
            "running to b must leave d unsettled"
        );
        // Resuming to d settles the remainder and matches a fresh run.
        assert_eq!(run.run_to(d), dijkstra(&g, a, |_, w| *w).path_to(d));
    }

    #[test]
    fn goal_directed_unreachable_is_none_and_resumable() {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        let mut scratch = SearchScratch::new();
        let mut run = dijkstra_resume(&mut scratch, &g, a, |_, w| *w);
        assert!(run.run_to(c).is_none(), "c is disconnected");
        // The exhausted run still answers reachable targets.
        assert_eq!(run.run_to(b).unwrap().nodes(), &[a, b]);
    }

    #[test]
    fn goal_directed_max_product_matches_full_run() {
        let (g, [a, b, c, d]) = diamond();
        let mut scratch = SearchScratch::new();
        for (source, target) in [(a, d), (d, a), (b, c)] {
            let fresh = max_product_dijkstra(&g, source, |_, _| Some(0.9), |_| Some(0.5));
            let mut run =
                max_product_resume(&mut scratch, &g, source, |_, _| Some(0.9), |_| Some(0.5));
            assert_eq!(run.run_to(target), fresh.path_to(target));
            assert_eq!(run.run_to(target), fresh.path_to(target));
        }
    }

    #[test]
    fn goal_directed_max_product_forbidden_transit_target() {
        // The target itself may be transit-forbidden: it still settles and
        // returns a path, exactly like the full run.
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0.9);
        g.add_edge(b, d, 0.9);
        let fresh = max_product_dijkstra(&g, a, |_, _| Some(0.9), |_| None);
        let mut scratch = SearchScratch::new();
        let mut run = max_product_resume(&mut scratch, &g, a, |_, _| Some(0.9), |_| None);
        assert_eq!(run.run_to(b), fresh.path_to(b));
        assert_eq!(run.run_to(d), fresh.path_to(d));
        assert!(run.run_to(d).is_none(), "b cannot be transited");
    }

    proptest! {
        /// On random graphs, pausing at an arbitrary sequence of targets
        /// and resuming must return exactly what a fresh exhaustive run
        /// returns for every target — min-sum and max-product alike.
        #[test]
        fn resume_matches_exhaustive_on_random_graphs(
            edges in proptest::collection::vec((0usize..9, 0usize..9, 1u32..9), 1..28),
            source in 0usize..9,
            targets in proptest::collection::vec(0usize..9, 1..5),
        ) {
            let mut g: UnGraph<(), f64> = UnGraph::new();
            for _ in 0..9 {
                g.add_node(());
            }
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), f64::from(w));
                }
            }
            let source = NodeId::new(source);
            let mut scratch = SearchScratch::new();

            let fresh = dijkstra(&g, source, |_, w| *w);
            let mut run = dijkstra_resume(&mut scratch, &g, source, |_, w| *w);
            for &t in &targets {
                prop_assert_eq!(run.run_to(NodeId::new(t)), fresh.path_to(NodeId::new(t)));
            }

            let fresh = max_product_dijkstra(
                &g,
                source,
                |_, e| Some(*e.weight / 10.0),
                |_| Some(0.7),
            );
            let mut run = max_product_resume(
                &mut scratch,
                &g,
                source,
                |_, e| Some(*e.weight / 10.0),
                |_| Some(0.7),
            );
            for &t in &targets {
                prop_assert_eq!(run.run_to(NodeId::new(t)), fresh.path_to(NodeId::new(t)));
            }
        }
    }

    proptest! {
        /// Stepping a run with `settle_one`, capturing it at an arbitrary
        /// pause point, restoring the snapshot into a *different* scratch,
        /// and finishing must agree with a fresh exhaustive run on every
        /// node's path — and the restored run's next settle must match the
        /// paused run's `peek_next`.
        #[test]
        fn capture_restore_matches_paused_run(
            edges in proptest::collection::vec((0usize..9, 0usize..9, 1u32..9), 1..28),
            source in 0usize..9,
            pause_after in 0usize..9,
        ) {
            let mut g: UnGraph<(), f64> = UnGraph::new();
            for _ in 0..9 {
                g.add_node(());
            }
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), f64::from(w));
                }
            }
            let source = NodeId::new(source);
            let ef = |_: NodeId, e: EdgeRef<'_, f64>| Some(*e.weight / 10.0);
            let tf = |_: NodeId| Some(0.7);
            let fresh = max_product_dijkstra(&g, source, ef, tf);

            let mut scratch = SearchScratch::new();
            let mut run = max_product_resume(&mut scratch, &g, source, ef, tf);
            let mut order = Vec::new();
            for _ in 0..=pause_after {
                match run.settle_one() {
                    Some((_, u)) => order.push(u),
                    None => break,
                }
            }
            let snapshot = run.capture(&order);
            let expected_next = run.peek_next();

            let mut scratch2 = SearchScratch::new();
            let mut restored = max_product_restore(&mut scratch2, &g, &snapshot, ef, tf);
            prop_assert_eq!(restored.peek_next(), expected_next);
            for &(u, d, _) in &snapshot.settled {
                prop_assert!(restored.is_settled(u));
                prop_assert_eq!(restored.label(u), Some(d));
            }
            let done = restored.finish();
            for i in 0..9 {
                let t = NodeId::new(i);
                prop_assert_eq!(done.path_to(t), fresh.path_to(t));
                prop_assert_eq!(done.metric(t), fresh.metric(t));
            }
        }
    }

    #[test]
    fn scratch_grows_across_graph_sizes() {
        let mut scratch = SearchScratch::with_capacity(2);
        let (big, [a, _, _, d]) = diamond();
        let run = dijkstra_with(&mut scratch, &big, a, |_, w| *w);
        assert_eq!(run.distance(d), Some(2.0));
        // A smaller graph afterwards must not see the big graph's entries.
        let mut small: UnGraph<(), f64> = UnGraph::new();
        let x = small.add_node(());
        let y = small.add_node(());
        let run = dijkstra_with(&mut scratch, &small, x, |_, w| *w);
        assert_eq!(run.distance(y), None);
    }

    #[test]
    fn components_and_connectivity() {
        let (g, _) = diamond();
        assert!(is_connected(&g));
        let mut g2: UnGraph<(), f64> = UnGraph::new();
        let a = g2.add_node(());
        let _b = g2.add_node(());
        let c = g2.add_node(());
        g2.add_edge(a, c, 1.0);
        let (labels, k) = connected_components(&g2);
        assert_eq!(k, 2);
        assert_eq!(labels[a.index()], labels[c.index()]);
        assert!(!is_connected(&g2));
        let empty: UnGraph<(), ()> = UnGraph::new();
        assert!(!is_connected(&empty));
    }
}
