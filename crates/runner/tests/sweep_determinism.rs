//! End-to-end guarantees of the sweep subsystem: a campaign's aggregated
//! output is byte-identical across worker-thread counts and across
//! kill-and-resume boundaries, and the smoke path (spec text → run →
//! aggregate) works in tier-1 time.

use std::path::PathBuf;

use fusion_runner::campaign::{aggregate_campaign, run_campaign, RunOptions};
use fusion_runner::spec::SweepSpec;
use fusion_runner::store::CampaignStore;
use fusion_runner::summary_json;
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fusion-runner-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 6-cell campaign that routes in well under a second per cell.
fn tiny_spec(campaign_seed: u64) -> SweepSpec {
    SweepSpec {
        name: "determinism".to_string(),
        campaign_seed,
        presets: vec!["quick".to_string()],
        seeds: 3,
        loads: vec![3],
        algorithms: vec!["ALG-N-FUSION".to_string(), "Q-CAST-N".to_string()],
        mc_rounds: Some(30),
        ..SweepSpec::default()
    }
}

/// Runs the campaign to completion with `threads` workers, optionally
/// interrupting it after `kill_after` cells first, and returns the bytes
/// of the aggregated summary.
fn summary_bytes(spec: &SweepSpec, tag: &str, threads: usize, kill_after: Option<usize>) -> String {
    let dir = tmp_dir(tag);
    if let Some(k) = kill_after {
        let partial = run_campaign(
            spec,
            &dir,
            &RunOptions {
                threads,
                max_cells: Some(k),
                progress: false,
            },
        )
        .unwrap();
        assert_eq!(partial.executed_cells, k.min(spec.cells().len()));
    }
    let out = run_campaign(
        spec,
        &dir,
        &RunOptions {
            threads,
            max_cells: None,
            progress: false,
        },
    )
    .unwrap();
    assert!(out.complete, "campaign must finish");
    let summaries = aggregate_campaign(&dir).unwrap();
    let text = std::fs::read_to_string(dir.join("summary.json")).unwrap();
    assert_eq!(text, summary_json(&summaries), "file matches return value");
    let _ = std::fs::remove_dir_all(&dir);
    text
}

#[test]
fn two_seed_smoke_sweep_from_spec_text() {
    // The tier-1 smoke path: parse a TOML spec, run the campaign through
    // the scheduler + store, aggregate, and sanity-check the output.
    let spec = SweepSpec::parse(
        r#"
name = "smoke"
campaign_seed = 11
presets = ["quick"]
seeds = 2
loads = [3]
algorithms = ["ALG-N-FUSION"]
mc_rounds = 25
"#,
    )
    .unwrap();
    let dir = tmp_dir("smoke");
    let out = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
    assert_eq!(out.total_cells, 2);
    assert!(out.complete);

    let store = CampaignStore::open(&dir).unwrap();
    let loaded = store.load_rows().unwrap();
    assert_eq!(loaded.rows.len(), 2);
    for row in &loaded.rows {
        assert!(row.str_field("cell").is_some());
        assert_eq!(row.str_field("preset"), Some("quick"));
        assert!(row.num_field("rate").is_some_and(|r| r >= 0.0));
        assert!(row.num_field("wall_ms").is_some());
        // Every cell runs under an enabled registry: its deterministic
        // counters land in the row as `m_<counter>` columns.
        assert!(
            row.int_field("m_mc.rounds").is_some_and(|r| r > 0),
            "cell row is missing telemetry columns"
        );
    }
    let manifest = store.load_manifest().unwrap().unwrap();
    assert!(manifest.done);
    assert_eq!(manifest.completed_cells, 2);

    let summaries = aggregate_campaign(&dir).unwrap();
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].seeds, 2);
    assert!(summaries[0].mean_rate > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_reuses_rows_instead_of_recomputing() {
    // Interrupt after one cell, then resume and check the first cell's
    // row bytes survived untouched (resume skips, never re-runs).
    let spec = tiny_spec(21);
    let dir = tmp_dir("reuse");
    run_campaign(
        &spec,
        &dir,
        &RunOptions {
            max_cells: Some(1),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let first_rows = std::fs::read_to_string(dir.join("rows.jsonl")).unwrap();
    run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
    let all_rows = std::fs::read_to_string(dir.join("rows.jsonl")).unwrap();
    assert!(
        all_rows.starts_with(&first_rows),
        "resume must append, not rewrite"
    );
    assert_eq!(all_rows.lines().count(), spec.cells().len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn figures_scale_rows_aggregate_through_the_same_tooling() {
    // Satellite guarantee: `figures scale` emits rows the runner's
    // aggregator consumes directly.
    let mut config = fusion_bench::workloads::ExperimentConfig::quick();
    config.networks = 2;
    config.mc_rounds = 25;
    let rows = fusion_bench::figures::scale_rows(&config, "quick");
    let summaries = fusion_runner::aggregate_rows(&rows);
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].preset, "quick");
    assert_eq!(summaries[0].seeds, 2);
    assert!(summaries[0].mean_rate > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline determinism contract: for arbitrary campaign seeds
    /// and kill points, the aggregated summary's bytes are identical for
    /// 1 vs 4 worker threads and for uninterrupted vs killed-and-resumed
    /// campaigns.
    #[test]
    fn aggregated_output_is_byte_identical(
        campaign_seed in 0u64..1_000,
        kill_after in 1usize..5,
    ) {
        let spec = tiny_spec(campaign_seed);
        let serial = summary_bytes(&spec, "serial", 1, None);
        let threaded = summary_bytes(&spec, "threaded", 4, None);
        prop_assert_eq!(&serial, &threaded, "threads must not change results");
        let resumed = summary_bytes(&spec, "resumed", 4, Some(kill_after));
        prop_assert_eq!(&serial, &resumed, "kill+resume must not change results");
        // The byte-comparison above now includes the telemetry metric
        // columns; make sure they are actually there to be compared.
        prop_assert!(
            serial.contains("\"mean_m_mc.rounds\""),
            "summary is missing telemetry metric columns: {}",
            serial
        );
    }
}
