//! Deterministic grid preset for the large-scale workloads.
//!
//! Complex-topology GHZ-routing studies (Chen et al., Tian et al.)
//! evaluate on regular lattices alongside random graphs; a grid is also
//! the cheapest topology to generate at 10k switches (no O(n²) pair
//! scan), which makes it the reference shape for the scale benchmarks.

use fusion_graph::{NodeId, UnGraph};

use crate::config::TopologyConfig;
use crate::geometry::Position;
use crate::model::{Link, Site};

/// Generates `cfg.num_switches` switches on a near-square lattice filling
/// the deployment area, 4-connected; a partial last row keeps the exact
/// switch count (its nodes still connect upward, so the graph stays
/// connected).
///
/// Unlike the random families, the layout ignores `avg_degree` (interior
/// degree is 4) and draws nothing from an RNG: the same config always
/// yields the same lattice. Users are attached by the common pipeline
/// afterwards and remain randomly placed.
pub(crate) fn grid(cfg: &TopologyConfig) -> UnGraph<Site, Link> {
    let n = cfg.num_switches;
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    // Span the full area so fiber lengths (and thus link successes) stay
    // comparable with the random families at the same switch count.
    let spacing = cfg.side / cols.max(2) as f64;
    let mut graph = UnGraph::with_capacity(n, 2 * n);
    for i in 0..n {
        let (r, c) = (i / cols, i % cols);
        graph.add_node(Site::switch(Position::new(
            c as f64 * spacing,
            r as f64 * spacing,
        )));
    }
    let id = NodeId::new;
    for i in 0..n {
        let (r, c) = (i / cols, i % cols);
        if c + 1 < cols && i + 1 < n {
            graph.add_edge(id(i), id(i + 1), Link::new(spacing));
        }
        if r + 1 < rows && i + cols < n {
            graph.add_edge(id(i), id(i + cols), Link::new(spacing));
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_graph::search;

    fn cfg(n: usize) -> TopologyConfig {
        TopologyConfig {
            num_switches: n,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn exact_switch_count_and_connected() {
        for n in [1usize, 2, 5, 9, 10, 100, 1000] {
            let g = grid(&cfg(n));
            assert_eq!(g.node_count(), n, "n={n}");
            assert!(search::is_connected(&g), "n={n} disconnected");
            assert!(g.node_weights().all(|s| !s.is_user()));
        }
    }

    #[test]
    fn interior_degree_is_four() {
        let g = grid(&cfg(100));
        let max_degree = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(max_degree, 4);
        // 10x10 grid: 2 * 10 * 9 = 180 edges.
        assert_eq!(g.edge_count(), 180);
    }

    #[test]
    fn edge_lengths_match_positions() {
        let g = grid(&cfg(37));
        for e in g.edges() {
            let d = g
                .node(e.source)
                .position
                .distance(g.node(e.target).position);
            assert!((d - e.weight.length).abs() < 1e-9);
        }
    }

    #[test]
    fn positions_stay_inside_the_area() {
        let c = cfg(1000);
        let g = grid(&c);
        for s in g.node_weights() {
            assert!(s.position.x >= 0.0 && s.position.x <= c.side);
            assert!(s.position.y >= 0.0 && s.position.y <= c.side);
        }
    }
}
