//! B1 baseline (§V-B): Patil et al.'s percolation-style GHZ protocol \[21\]
//! extended from a single pair to multiple pairs.
//!
//! For each pair in demand order, B1 carves out a multi-path region (the
//! union of the `h` best unit-width paths under the *current* residual
//! capacity), pins one qubit per region-edge end, and lets every switch in
//! the region fuse all of its successful links for that pair. The consumed
//! qubits are removed before the next pair is served — exactly "for each
//! pair, we run the algorithm once and remove the occupied resources".
//!
//! Differences from `ALG-N-FUSION` that the evaluation isolates: widths are
//! fixed at 1, pairs are served in arrival order rather than metric order,
//! and no Algorithm 4 widening happens afterwards. See DESIGN.md §3 for the
//! substitution rationale (the original is defined on lattices only).

use crate::algorithms::alg2::paths_selection;
use crate::demand::Demand;
use crate::network::QuantumNetwork;
use crate::plan::{NetworkPlan, SwapMode};

/// Number of unit-width paths whose union forms a pair's percolation
/// region. On the lattices Patil et al. evaluate, the region between two
/// endpoints decomposes into two edge-disjoint geodesic corridors (the two
/// sides of the bounding rectangle), so the general-topology analogue
/// takes the two best unit-width paths.
pub const DEFAULT_REGION_PATHS: usize = 2;

/// Routes all demands with the B1 strategy.
///
/// `region_paths` controls how many unit-width paths form each pair's
/// region (default [`DEFAULT_REGION_PATHS`]).
#[must_use]
pub fn route_b1(net: &QuantumNetwork, demands: &[Demand], region_paths: usize) -> NetworkPlan {
    let mut remaining = net.capacities();
    let mut plans = Vec::with_capacity(demands.len());
    for &demand in demands {
        // Region discovery at width 1 under the residual capacity.
        let candidates = paths_selection(
            net,
            std::slice::from_ref(&demand),
            &remaining,
            region_paths.max(1),
            1,
            SwapMode::NFusion,
        );
        // Merge the region paths for this single pair; sharing is the
        // essence of the protocol (every region edge is used once).
        let outcome = paths_merge_with_budget(net, &demand, &candidates, &remaining);
        remaining = outcome.1;
        plans.push(outcome.0);
    }
    NetworkPlan {
        mode: SwapMode::NFusion,
        plans,
        leftover: remaining,
        alg4_links: 0,
    }
}

/// Runs the shared merge logic against an explicit budget instead of the
/// full network capacity.
fn paths_merge_with_budget(
    _net: &QuantumNetwork,
    demand: &Demand,
    candidates: &[crate::algorithms::alg2::CandidatePath],
    budget: &[u32],
) -> (crate::plan::DemandPlan, Vec<u32>) {
    // Reuse Algorithm 3 by temporarily presenting the budget as the
    // network capacity: paths_merge only reads capacities from the
    // network, so emulate it by filtering candidates through a local
    // merge. The logic is small enough to inline here with the budget.
    let mut remaining = budget.to_vec();
    let mut plan = crate::plan::DemandPlan::empty(*demand);
    let mut assigned: std::collections::HashSet<(fusion_graph::NodeId, fusion_graph::NodeId)> =
        std::collections::HashSet::new();

    let mut sorted: Vec<_> = candidates.iter().collect();
    sorted.sort_by(|a, b| {
        b.metric
            .cmp(&a.metric)
            .then_with(|| a.path.nodes().cmp(b.path.nodes()))
    });
    for cand in sorted {
        let mut need: std::collections::BTreeMap<fusion_graph::NodeId, u32> =
            std::collections::BTreeMap::new();
        let mut new_hops = 0;
        for (u, v) in cand.path.hops_iter() {
            let key = crate::algorithms::alg1::PathConstraints::hop_key(u, v);
            if !assigned.contains(&key) {
                *need.entry(u).or_insert(0) += 1;
                *need.entry(v).or_insert(0) += 1;
                new_hops += 1;
            }
        }
        if new_hops == 0 {
            continue;
        }
        if need.iter().any(|(&n, &a)| remaining[n.index()] < a) {
            continue;
        }
        for (&n, &a) in &need {
            remaining[n.index()] -= a;
        }
        for (u, v) in cand.path.hops_iter() {
            assigned.insert(crate::algorithms::alg1::PathConstraints::hop_key(u, v));
        }
        plan.flow.add_path(&cand.path, 1);
        plan.paths
            .push(crate::flow::WidthedPath::uniform(cand.path.clone(), 1));
    }
    (plan, remaining)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::alg_n_fusion;
    use crate::network::NetworkParams;
    use fusion_topology::TopologyConfig;

    fn setup(pairs: usize, seed: u64) -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: pairs,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(seed);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        (net, Demand::from_topology(&topo))
    }

    #[test]
    fn unit_widths_only() {
        let (net, demands) = setup(4, 9);
        let plan = route_b1(&net, &demands, DEFAULT_REGION_PATHS);
        for dp in &plan.plans {
            for (_, _, w) in dp.flow.edges() {
                assert_eq!(w, 1, "B1 never widens channels");
            }
        }
    }

    #[test]
    fn resources_deplete_in_demand_order() {
        let (net, demands) = setup(8, 10);
        let plan = route_b1(&net, &demands, DEFAULT_REGION_PATHS);
        // Feasibility: no switch oversubscribed.
        for node in net.graph().node_ids().filter(|&v| net.is_switch(v)) {
            let spent: u32 = plan.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert!(spent <= net.capacity(node));
            assert_eq!(spent + plan.leftover[node.index()], net.capacity(node));
        }
        // Earlier demands are at least as likely to be served: the first
        // served demand index must not follow an unserved one with a
        // feasible region... weak proxy: demand 0 is served whenever
        // anything is.
        if plan.served_demands() > 0 {
            assert!(!plan.plans[0].is_unserved(), "B1 serves pairs in order");
        }
    }

    #[test]
    fn alg_n_fusion_dominates_b1() {
        // §V-C1: ALG-N-FUSION improves on B1 (up to 293% in the paper).
        let mut wins = 0;
        for seed in [11, 12, 13] {
            let (mut net, demands) = setup(6, seed);
            net.set_uniform_link_success(Some(0.25));
            let ours = alg_n_fusion(&net, &demands).total_rate(&net);
            let b1 = route_b1(&net, &demands, DEFAULT_REGION_PATHS).total_rate(&net);
            if ours >= b1 - 1e-9 {
                wins += 1;
            }
        }
        assert!(wins >= 2, "ALG-N-FUSION should dominate B1 on most seeds");
    }

    #[test]
    fn region_paths_parameter_bounds_paths() {
        let (net, demands) = setup(2, 14);
        let plan = route_b1(&net, &demands, 2);
        for dp in &plan.plans {
            assert!(dp.paths.len() <= 2);
        }
    }
}
