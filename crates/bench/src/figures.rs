//! Parameter sweeps reproducing every figure of the paper's evaluation
//! (§V), plus the ablations called out in DESIGN.md.

use std::fmt::Write as _;

use fusion_core::algorithms::{route, RoutingConfig};
use fusion_core::metrics;
use fusion_sim::evaluate::estimate_plan;
use fusion_sim::exact;
use fusion_topology::GeneratorKind;

use crate::workloads::{mean_rate, Algorithm, ExperimentConfig};

/// One algorithm's values across the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name.
    pub label: String,
    /// One value per x tick.
    pub values: Vec<f64>,
}

/// A rendered figure: x ticks plus one series per algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Figure identifier (e.g. `fig8a`).
    pub id: &'static str,
    /// Human-readable description.
    pub title: String,
    /// x-axis caption.
    pub x_label: &'static str,
    /// x-axis tick labels.
    pub ticks: Vec<String>,
    /// One series per algorithm.
    pub series: Vec<Series>,
}

impl FigureTable {
    /// Formats the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let width = 14usize;
        let _ = write!(out, "{:<16}", self.x_label);
        for t in &self.ticks {
            let _ = write!(out, "{t:>width$}");
        }
        let _ = writeln!(out);
        for s in &self.series {
            let _ = write!(out, "{:<16}", s.label);
            for v in &s.values {
                let _ = write!(out, "{v:>width$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Formats the table as CSV (`x,<series...>` rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(' ', "_"));
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        for (i, t) in self.ticks.iter().enumerate() {
            let _ = write!(out, "{t}");
            for s in &self.series {
                let _ = write!(out, ",{:.6}", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// One sweep point: tick label, configuration, and a network mutation
/// applied after generation (e.g. the uniform-p override).
type SweepPoint = (
    String,
    ExperimentConfig,
    Box<dyn Fn(&mut fusion_core::QuantumNetwork)>,
);

fn sweep(
    id: &'static str,
    title: &str,
    x_label: &'static str,
    algorithms: &[Algorithm],
    points: Vec<SweepPoint>,
) -> FigureTable {
    let mut series: Vec<Series> = algorithms
        .iter()
        .map(|a| Series {
            label: a.name().to_string(),
            values: Vec::new(),
        })
        .collect();
    let mut ticks = Vec::new();
    for (tick, config, mutate) in &points {
        ticks.push(tick.clone());
        for (si, algo) in algorithms.iter().enumerate() {
            series[si]
                .values
                .push(mean_rate(config, *algo, mutate.as_ref()));
        }
    }
    FigureTable {
        id,
        title: title.to_string(),
        x_label,
        ticks,
        series,
    }
}

fn no_mutation() -> Box<dyn Fn(&mut fusion_core::QuantumNetwork)> {
    Box::new(|_| {})
}

/// Fig. 7: entanglement rate vs. network generation method, including the
/// Alg-3 (no Algorithm 4) ablation series.
#[must_use]
pub fn fig7(config: &ExperimentConfig) -> FigureTable {
    let kinds = [
        ("Waxman", GeneratorKind::Waxman { alpha: 0.4 }),
        ("Watts-S", GeneratorKind::WattsStrogatz { rewire: 0.1 }),
        ("Aiello", GeneratorKind::Aiello { gamma: 2.5 }),
    ];
    let points = kinds
        .iter()
        .map(|(name, kind)| {
            let mut c = config.clone();
            c.topology.kind = *kind;
            ((*name).to_string(), c, no_mutation())
        })
        .collect();
    sweep(
        "fig7",
        "entanglement rate vs. graph generation method",
        "method",
        &Algorithm::ALL,
        points,
    )
}

/// Fig. 8a: entanglement rate vs. uniform link success probability `p`.
#[must_use]
pub fn fig8a(config: &ExperimentConfig) -> FigureTable {
    let points = [0.1, 0.2, 0.3, 0.4]
        .iter()
        .map(|&p| {
            let mutate: Box<dyn Fn(&mut fusion_core::QuantumNetwork)> =
                Box::new(move |net| net.set_uniform_link_success(Some(p)));
            (format!("{p}"), config.clone(), mutate)
        })
        .collect();
    sweep(
        "fig8a",
        "entanglement rate vs. average link success probability p",
        "p",
        &Algorithm::MAIN,
        points,
    )
}

/// Fig. 8b: entanglement rate vs. swap success probability `q`.
#[must_use]
pub fn fig8b(config: &ExperimentConfig) -> FigureTable {
    let points = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&q| {
            let mutate: Box<dyn Fn(&mut fusion_core::QuantumNetwork)> =
                Box::new(move |net| net.set_swap_success(q));
            (format!("{q}"), config.clone(), mutate)
        })
        .collect();
    sweep(
        "fig8b",
        "entanglement rate vs. swapping success probability q",
        "q",
        &Algorithm::MAIN,
        points,
    )
}

/// Fig. 9a: entanglement rate vs. qubits per switch.
#[must_use]
pub fn fig9a(config: &ExperimentConfig) -> FigureTable {
    let points = [6u32, 8, 10, 12]
        .iter()
        .map(|&cap| {
            let mut c = config.clone();
            c.network.switch_capacity = cap;
            (format!("{cap}"), c, no_mutation())
        })
        .collect();
    sweep(
        "fig9a",
        "entanglement rate vs. number of qubits per switch",
        "qubits",
        &Algorithm::MAIN,
        points,
    )
}

/// Fig. 9b: entanglement rate vs. number of switches.
#[must_use]
pub fn fig9b(config: &ExperimentConfig) -> FigureTable {
    let points = [50usize, 100, 200, 400]
        .iter()
        .map(|&n| {
            let mut c = config.clone();
            c.topology.num_switches = n;
            (format!("{n}"), c, no_mutation())
        })
        .collect();
    sweep(
        "fig9b",
        "entanglement rate vs. number of switches",
        "switches",
        &Algorithm::MAIN,
        points,
    )
}

/// Fig. 9c: entanglement rate vs. number of demanded states.
#[must_use]
pub fn fig9c(config: &ExperimentConfig) -> FigureTable {
    let points = [10usize, 20, 30, 40]
        .iter()
        .map(|&n| {
            let mut c = config.clone();
            c.topology.num_user_pairs = n;
            (format!("{n}"), c, no_mutation())
        })
        .collect();
    sweep(
        "fig9c",
        "entanglement rate vs. number of demanded states",
        "states",
        &Algorithm::MAIN,
        points,
    )
}

/// Fig. 9d: entanglement rate vs. average switch degree.
#[must_use]
pub fn fig9d(config: &ExperimentConfig) -> FigureTable {
    let points = [5.0f64, 10.0, 15.0, 20.0]
        .iter()
        .map(|&d| {
            let mut c = config.clone();
            c.topology.avg_degree = d;
            (format!("{d}"), c, no_mutation())
        })
        .collect();
    sweep(
        "fig9d",
        "entanglement rate vs. average switch degree",
        "degree",
        &Algorithm::MAIN,
        points,
    )
}

/// Ablation: Equation 1 vs. exact reliability vs. Monte Carlo on the flow
/// graphs routed by ALG-N-FUSION. Reports mean per-demand rates under the
/// three evaluators (exact enumeration is skipped for flows with more than
/// 22 random elements).
#[must_use]
pub fn ablation_eq1(config: &ExperimentConfig) -> FigureTable {
    let mut eq1_vals = Vec::new();
    let mut exact_vals = Vec::new();
    let mut mc_vals = Vec::new();
    let mut covered = 0usize;
    let mut total = 0usize;
    for i in 0..config.networks {
        let (net, demands) = config.instance(i);
        let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
        let mc = estimate_plan(&net, &plan, config.mc_rounds.max(500), config.seed);
        for (di, dp) in plan.plans.iter().enumerate() {
            total += 1;
            let elements = dp.flow.edge_count()
                + dp.flow
                    .nodes()
                    .iter()
                    .filter(|&&n| net.is_switch(n))
                    .count();
            if dp.flow.is_empty() || elements > 22 {
                continue;
            }
            covered += 1;
            eq1_vals.push(metrics::flow_rate(&net, &dp.flow).value());
            exact_vals.push(exact::flow_reliability(&net, &dp.flow));
            mc_vals.push(mc.per_demand[di].mean);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let max_gap = eq1_vals
        .iter()
        .zip(&exact_vals)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    FigureTable {
        id: "ablation-eq1",
        title: format!(
            "Eq. 1 vs exact reliability vs Monte Carlo ({covered}/{total} flows enumerable)"
        ),
        x_label: "evaluator",
        ticks: vec![
            "eq1".into(),
            "exact".into(),
            "monte-carlo".into(),
            "max|eq1-exact|".into(),
        ],
        series: vec![Series {
            label: "mean demand rate".into(),
            values: vec![mean(&eq1_vals), mean(&exact_vals), mean(&mc_vals), max_gap],
        }],
    }
}

/// Ablation: sensitivity of ALG-N-FUSION to the candidate-path budget `h`.
#[must_use]
pub fn ablation_h(config: &ExperimentConfig) -> FigureTable {
    let points = [1usize, 2, 5, 8]
        .iter()
        .map(|&h| {
            let mut c = config.clone();
            c.h = h;
            (format!("{h}"), c, no_mutation())
        })
        .collect();
    sweep(
        "ablation-h",
        "ALG-N-FUSION rate vs. candidate paths per width (h)",
        "h",
        &[Algorithm::AlgNFusion],
        points,
    )
}

/// Ablation: flow-like-graph merging on vs. off (§IV-B idea 1).
#[must_use]
pub fn ablation_merge(config: &ExperimentConfig) -> FigureTable {
    let mut with_merge = Vec::new();
    let mut without_merge = Vec::new();
    for i in 0..config.networks {
        let (net, demands) = config.instance(i);
        let base = RoutingConfig {
            h: config.h,
            ..RoutingConfig::n_fusion()
        };
        let no_merge = RoutingConfig {
            merge_paths: false,
            ..base
        };
        for (cfg, out) in [(base, &mut with_merge), (no_merge, &mut without_merge)] {
            let plan = route(&net, &demands, &cfg);
            let rate = if config.mc_rounds == 0 {
                plan.total_rate(&net)
            } else {
                estimate_plan(&net, &plan, config.mc_rounds, config.seed).total_rate()
            };
            out.push(rate);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    FigureTable {
        id: "ablation-merge",
        title: "flow-like-graph merging on vs off".into(),
        x_label: "variant",
        ticks: vec!["merged".into(), "unmerged".into()],
        series: vec![Series {
            label: "ALG-N-FUSION".into(),
            values: vec![mean(&with_merge), mean(&without_merge)],
        }],
    }
}

/// Ablation: merge order — gain-per-qubit (default) vs the paper's
/// literal width-major order (pseudocode correction 3 in DESIGN.md).
#[must_use]
pub fn ablation_merge_order(config: &ExperimentConfig) -> FigureTable {
    use fusion_core::algorithms::MergeOrder;
    let mut greedy = Vec::new();
    let mut width_major = Vec::new();
    for i in 0..config.networks {
        let (net, demands) = config.instance(i);
        for (order, out) in [
            (MergeOrder::GainPerQubit, &mut greedy),
            (MergeOrder::WidthMajor, &mut width_major),
        ] {
            let cfg = RoutingConfig {
                h: config.h,
                merge_order: order,
                ..RoutingConfig::n_fusion()
            };
            let plan = route(&net, &demands, &cfg);
            let rate = if config.mc_rounds == 0 {
                plan.total_rate(&net)
            } else {
                estimate_plan(&net, &plan, config.mc_rounds, config.seed).total_rate()
            };
            out.push(rate);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    FigureTable {
        id: "ablation-merge-order",
        title: "Algorithm 3 consumption order: gain-per-qubit vs width-major".into(),
        x_label: "order",
        ticks: vec!["gain-per-qubit".into(), "width-major".into()],
        series: vec![Series {
            label: "ALG-N-FUSION".into(),
            values: vec![mean(&greedy), mean(&width_major)],
        }],
    }
}

/// Ablation: the three classic-swapping models (DESIGN.md §2) evaluated on
/// the same Q-CAST-N routes (width-w single paths): single pre-committed
/// lane (the paper's model), multi-lane fixed pairing, and Q-CAST's
/// adaptive re-pairing.
#[must_use]
pub fn ablation_classic(config: &ExperimentConfig) -> FigureTable {
    type Evaluator = fn(&fusion_core::QuantumNetwork, &fusion_core::WidthedPath) -> f64;
    let evaluators: [(&str, Evaluator); 3] = [
        ("single-lane", metrics::classic::success_probability),
        (
            "multi-lane",
            metrics::classic::success_probability_multilane,
        ),
        ("adaptive", metrics::classic::success_probability_adaptive),
    ];
    let mut totals = vec![Vec::new(); evaluators.len()];
    for i in 0..config.networks {
        let (net, demands) = config.instance(i);
        // Width-carrying single paths: the Q-CAST-N routes.
        let plan = Algorithm::QCastN.route(&net, &demands, config.h);
        for (ei, (_, eval)) in evaluators.iter().enumerate() {
            let mut total = 0.0;
            for dp in &plan.plans {
                let fail: f64 = dp.paths.iter().map(|wp| 1.0 - eval(&net, wp)).product();
                total += 1.0 - fail;
            }
            totals[ei].push(total);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    FigureTable {
        id: "ablation-classic",
        title: "classic swapping models on identical width-w routes".into(),
        x_label: "model",
        ticks: evaluators.iter().map(|(n, _)| (*n).to_string()).collect(),
        series: vec![Series {
            label: "rate".into(),
            values: totals.iter().map(|v| mean(v)).collect(),
        }],
    }
}

/// Extension figure: k-party GHZ distribution rate vs. party count
/// (`fusion_core::multiparty`), averaged over the configured networks.
#[must_use]
pub fn extension_multiparty(config: &ExperimentConfig) -> FigureTable {
    use fusion_core::multiparty::{route_multiparty, MultipartyConfig, MultipartyDemand};
    use fusion_core::DemandId;

    let arities = [2usize, 3, 4, 5];
    let mut series = Series {
        label: "hub fusion".into(),
        values: Vec::new(),
    };
    for &k in &arities {
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..config.networks {
            let (net, _) = config.instance(i);
            let users: Vec<_> = net.graph().node_ids().filter(|&n| net.is_user(n)).collect();
            if users.len() < k {
                continue;
            }
            let demand = MultipartyDemand::new(DemandId::new(0), users[..k].to_vec());
            let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
            total += out.total_rate(&net);
            counted += 1;
        }
        series.values.push(if counted == 0 {
            0.0
        } else {
            total / counted as f64
        });
    }
    FigureTable {
        id: "extension-multiparty",
        title: "k-party GHZ establishment probability vs. party count".into(),
        x_label: "parties k",
        ticks: arities.iter().map(|k| k.to_string()).collect(),
        series: vec![series],
    }
}

/// Ablation: robustness of the routed plan under failure injection.
#[must_use]
pub fn ablation_failures(config: &ExperimentConfig) -> FigureTable {
    use fusion_sim::failure::FailureModel;
    let models = [
        ("healthy", FailureModel::none()),
        (
            "outage-10%",
            FailureModel {
                switch_outage: 0.1,
                link_decay: 0.0,
            },
        ),
        (
            "decay-10%",
            FailureModel {
                switch_outage: 0.0,
                link_decay: 0.1,
            },
        ),
        (
            "both-10%",
            FailureModel {
                switch_outage: 0.1,
                link_decay: 0.1,
            },
        ),
    ];
    let mut series = Series {
        label: "ALG-N-FUSION".into(),
        values: Vec::new(),
    };
    let mut ticks = Vec::new();
    for (name, model) in models {
        ticks.push(name.to_string());
        let mut total = 0.0;
        for i in 0..config.networks {
            let (net, demands) = config.instance(i);
            let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
            let degraded = model.degrade(&net);
            total += plan.total_rate(&degraded);
        }
        series.values.push(total / config.networks as f64);
    }
    FigureTable {
        id: "ablation-failures",
        title: "plan rate under failure injection".into(),
        x_label: "failure model",
        ticks,
        series: vec![series],
    }
}

/// One per-instance measurement row for the scale probe, in the schema
/// consumed by the `fusion-runner` aggregator (same field names as the
/// sweep engine's JSONL results store, so one set of tooling parses both).
#[must_use]
pub fn scale_row(
    config: &ExperimentConfig,
    preset: &str,
    algorithm: Algorithm,
    instance: usize,
) -> crate::report::Row {
    scale_row_with(
        config,
        preset,
        algorithm,
        instance,
        &fusion_telemetry::Registry::disabled(),
    )
}

/// [`scale_row`] with routing/MC telemetry recorded into `registry` and
/// appended to the row as `m_<counter>` integer columns (sorted by
/// counter name, after the fixed measurement columns). With a disabled
/// registry the row is byte-identical to the historical schema. Counter
/// columns hold only deterministic-plane values, so they are
/// byte-identical across `--threads` settings that divide `mc_rounds`
/// and across kill/resume boundaries — wall-time stays confined to the
/// `route_ms`/`mc_ms` columns. Callers wanting per-row metrics must pass
/// a fresh registry per call; a reused one accumulates across rows.
#[must_use]
pub fn scale_row_with(
    config: &ExperimentConfig,
    preset: &str,
    algorithm: Algorithm,
    instance: usize,
    registry: &fusion_telemetry::Registry,
) -> crate::report::Row {
    use std::time::Instant;
    let threads = config.resolved_threads();
    let (net, demands) = config.instance(instance);
    let t0 = Instant::now();
    let plan = algorithm.route_threads_counted(&net, &demands, config.h, threads, registry);
    let route_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let (rate, stderr) = if config.mc_rounds == 0 {
        (plan.total_rate(&net), 0.0)
    } else {
        let mc = fusion_sim::evaluate::McCounters::from_registry(registry);
        let est = if threads > 1 {
            fusion_sim::evaluate::estimate_plan_parallel_counted(
                &net,
                &plan,
                config.mc_rounds,
                config.seed,
                threads,
                &mc,
            )
        } else {
            fusion_sim::evaluate::estimate_plan_counted(
                &net,
                &plan,
                config.mc_rounds,
                config.seed,
                &mc,
            )
        };
        (est.total_rate(), est.total_stderr())
    };
    let mc_ms = t1.elapsed().as_secs_f64() * 1e3;

    let mut row = crate::report::Row::new();
    row.push_str("preset", preset)
        .push_str("generator", config.topology.kind.name())
        .push_int("switches", config.topology.num_switches as i64)
        .push_int("load", config.topology.num_user_pairs as i64)
        .push_str("algorithm", algorithm.name())
        .push_int("seed", config.seed.wrapping_add(instance as u64) as i64)
        .push_num("rate", rate)
        .push_num("stderr", stderr)
        .push_int("rounds", config.mc_rounds as i64)
        .push_int("demands", demands.len() as i64)
        .push_int("nodes", net.node_count() as i64)
        .push_int("edges", net.graph().edge_count() as i64)
        .push_num("route_ms", route_ms)
        .push_num("mc_ms", mc_ms);
    if registry.is_enabled() {
        for (name, value) in registry.snapshot().iter() {
            if name == fusion_telemetry::VERSION_KEY {
                continue;
            }
            #[allow(clippy::cast_possible_wrap)]
            row.push_int(&format!("m_{name}"), value as i64);
        }
    }
    row
}

/// The per-instance rows behind the `scale` figure: ALG-N-FUSION on every
/// configured network instance.
#[must_use]
pub fn scale_rows(config: &ExperimentConfig, preset: &str) -> Vec<crate::report::Row> {
    (0..config.networks)
        .map(|i| scale_row(config, preset, Algorithm::AlgNFusion, i))
        .collect()
}

/// Scale probe: routes and estimates ALG-N-FUSION on the configured
/// topology (typically a `--preset large-*` one), reporting instance
/// shape, served rate, and wall time per pipeline stage. This is the
/// figure that makes the 1k–10k-switch presets an exercisable scenario:
/// `figures scale --preset large-1k`. The underlying per-run JSON rows
/// ([`scale_rows`]) are what the binary writes as `scale.jsonl`.
#[must_use]
pub fn fig_scale(config: &ExperimentConfig) -> FigureTable {
    fig_scale_from_rows(config, &scale_rows(config, "scale"))
}

/// Renders the scale figure table from already-measured rows.
#[must_use]
pub fn fig_scale_from_rows(config: &ExperimentConfig, rows: &[crate::report::Row]) -> FigureTable {
    let mean = |key: &str| {
        let vals: Vec<f64> = rows.iter().filter_map(|r| r.num_field(key)).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    // Switch counts are exact per instance (generators always emit the
    // configured number of switches), so the mean equals the config value.
    FigureTable {
        id: "scale",
        title: format!(
            "ALG-N-FUSION at scale ({} switches, {} threads)",
            config.topology.num_switches,
            config.resolved_threads()
        ),
        x_label: "measure",
        ticks: vec![
            "switches".into(),
            "edges".into(),
            "rate".into(),
            "route_ms".into(),
            "mc_ms".into(),
        ],
        series: vec![Series {
            label: "ALG-N-FUSION".into(),
            values: vec![
                mean("switches"),
                mean("edges"),
                mean("rate"),
                mean("route_ms"),
                mean("mc_ms"),
            ],
        }],
    }
}

/// Runs a figure by id; `None` for unknown ids.
#[must_use]
pub fn run(id: &str, config: &ExperimentConfig) -> Option<FigureTable> {
    Some(match id {
        "fig7" => fig7(config),
        "fig8a" => fig8a(config),
        "fig8b" => fig8b(config),
        "fig9a" => fig9a(config),
        "fig9b" => fig9b(config),
        "fig9c" => fig9c(config),
        "fig9d" => fig9d(config),
        "ablation-eq1" => ablation_eq1(config),
        "ablation-h" => ablation_h(config),
        "ablation-merge" => ablation_merge(config),
        "ablation-merge-order" => ablation_merge_order(config),
        "ablation-classic" => ablation_classic(config),
        "extension-multiparty" => extension_multiparty(config),
        "ablation-failures" => ablation_failures(config),
        "scale" => fig_scale(config),
        _ => return None,
    })
}

/// Every figure id, in paper order then ablations.
pub const ALL_FIGURES: [&str; 15] = [
    "fig7",
    "fig8a",
    "fig8b",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "ablation-eq1",
    "ablation-h",
    "ablation-merge",
    "ablation-merge-order",
    "ablation-classic",
    "ablation-failures",
    "extension-multiparty",
    "scale",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.networks = 1;
        c.mc_rounds = 0; // analytic: fast and deterministic
        c
    }

    #[test]
    fn fig8a_has_expected_shape() {
        let t = fig8a(&tiny());
        assert_eq!(t.ticks, vec!["0.1", "0.2", "0.3", "0.4"]);
        assert_eq!(t.series.len(), 4);
        // Rates grow with p for our algorithm.
        let ours = &t.series[0];
        assert_eq!(ours.label, "ALG-N-FUSION");
        assert!(
            ours.values.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "rate must rise with p: {:?}",
            ours.values
        );
    }

    #[test]
    fn fig7_includes_alg3_ablation() {
        let t = fig7(&tiny());
        assert_eq!(t.series.len(), 5);
        assert!(t.series.iter().any(|s| s.label == "Alg-3"));
        assert_eq!(t.ticks.len(), 3);
    }

    #[test]
    fn render_and_csv_are_aligned() {
        let t = fig8b(&tiny());
        let text = t.render();
        assert!(text.contains("fig8b"));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + t.ticks.len());
        assert_eq!(lines[0].split(',').count(), 1 + t.series.len());
    }

    #[test]
    fn run_dispatches_every_id() {
        let c = tiny();
        for id in ["fig9c", "ablation-h"] {
            assert!(run(id, &c).is_some(), "{id} must dispatch");
        }
        assert!(run("nope", &c).is_none());
    }

    #[test]
    fn scale_figure_reports_shape_and_timing() {
        let t = fig_scale(&tiny());
        assert_eq!(t.ticks.len(), 5);
        let v = &t.series[0].values;
        assert_eq!(v[0], 30.0, "quick config has 30 switches");
        assert!(v[1] > 30.0, "edges outnumber switches");
        assert!(v[2] > 0.0, "must route something");
        assert!(v[3] >= 0.0 && v[4] >= 0.0, "timings are non-negative");
    }

    #[test]
    fn scale_rows_follow_runner_schema() {
        let c = tiny();
        let rows = scale_rows(&c, "quick");
        assert_eq!(rows.len(), c.networks);
        for (i, row) in rows.iter().enumerate() {
            // The aggregation keys and folded metric of the sweep engine.
            assert_eq!(row.str_field("preset"), Some("quick"));
            assert_eq!(row.str_field("algorithm"), Some("ALG-N-FUSION"));
            assert_eq!(row.int_field("switches"), Some(30));
            assert_eq!(row.int_field("load"), Some(6));
            assert_eq!(row.int_field("seed"), Some((c.seed + i as u64) as i64));
            assert!(row.num_field("rate").is_some_and(|r| r > 0.0));
            assert!(row.num_field("route_ms").is_some());
            // Rows must round-trip through the shared JSONL codec.
            let line = row.to_json();
            assert_eq!(&crate::report::Row::parse_json(&line).unwrap(), row);
        }
    }

    #[test]
    fn merge_ablation_is_close_and_positive() {
        let t = ablation_merge(&tiny());
        let (merged, unmerged) = (t.series[0].values[0], t.series[0].values[1]);
        // Merging saves qubits; the greedy heuristic may trade a sliver of
        // rate either way on tiny instances, but both variants must route
        // and stay close.
        assert!(merged > 0.0 && unmerged > 0.0);
        assert!(
            merged >= unmerged - 0.25,
            "merging regressed sharply: {merged} vs {unmerged}"
        );
    }
}
