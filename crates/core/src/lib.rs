//! Entanglement routing over quantum networks using GHZ measurements.
//!
//! This crate is the core of a reproduction of Zeng et al.,
//! *"Entanglement Routing over Quantum Networks Using
//! Greenberger-Horne-Zeilinger Measurements"* (ICDCS 2023): routing
//! algorithms that maximize the expected number of quantum states shared
//! between user pairs when switches can fuse **n ≥ 2** entanglement links
//! at once via joint GHZ-basis measurements (*n-fusion*), instead of the
//! classic two-link Bell-state-measurement swap.
//!
//! # Layout
//!
//! * [`QuantumNetwork`] — switches, users, qubit capacities, fiber links,
//!   and the physical success model (§III).
//! * [`Demand`] — the quantum states requested by user pairs.
//! * [`metrics`] — entanglement rates of channels, paths, and flow-like
//!   graphs (Equation 1), plus the classic-swapping DP used by Q-CAST.
//! * [`algorithms`] — Algorithms 1-4 and the composed
//!   [`algorithms::alg_n_fusion`] pipeline.
//! * [`baselines`] — Q-CAST, Q-CAST-N, and B1 from the evaluation.
//! * [`multiparty`] — extension: k-user GHZ-state distribution via hub
//!   fusion (the paper's stated future direction).
//! * [`FlowGraph`] / [`NetworkPlan`] — routed structures and their rates.
//!
//! # Quickstart
//!
//! ```
//! use fusion_core::{algorithms, Demand, NetworkParams, QuantumNetwork};
//! use fusion_topology::TopologyConfig;
//!
//! // A 30-switch Waxman network with 4 demanded states.
//! let topo = TopologyConfig {
//!     num_switches: 30,
//!     num_user_pairs: 4,
//!     ..TopologyConfig::default()
//! }
//! .generate(7);
//! let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
//! let demands = Demand::from_topology(&topo);
//!
//! let plan = algorithms::alg_n_fusion(&net, &demands);
//! println!("network entanglement rate: {:.3}", plan.total_rate(&net));
//! assert!(plan.total_rate(&net) >= 0.0);
//! ```
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demand;
mod flow;
mod network;
mod plan;

pub mod algorithms;
pub mod baselines;
pub mod metrics;
pub mod multiparty;

pub use demand::{Demand, DemandId};
pub use flow::{FlowGraph, WidthedPath};
pub use network::{
    NetworkBuilder, NetworkError, NetworkParams, NodeProps, PhysicsParams, QuantumNetwork,
    USER_CAPACITY,
};
pub use plan::{DemandPlan, NetworkPlan, ResourceUsage, SwapMode};
