//! Monte Carlo sampling for the multiparty GHZ extension
//! (`fusion_core::multiparty`).
//!
//! One round of a star plan: every branch must deliver its member's qubit
//! to the hub (per-hop channel sampling, per-intermediate-switch fusion
//! sampling), then the hub's single k-way GHZ fusion must succeed.

use fusion_core::multiparty::StarPlan;
use fusion_core::QuantumNetwork;
use rand::Rng;

use crate::stats::RateEstimate;

/// Samples one protocol round for a star plan. Returns `true` when the
/// k-party GHZ state is established.
pub fn sample_star_round(net: &QuantumNetwork, star: &StarPlan, rng: &mut impl Rng) -> bool {
    if !star.is_complete() {
        return false;
    }
    let q = net.swap_success();
    for wp in &star.branches {
        // Every hop channel of the branch must come up...
        for (u, v, w) in wp.hops() {
            let Some((edge, _)) = net.hop(u, v) else {
                return false;
            };
            if !rng.gen_bool(net.channel_success(edge, w)) {
                return false;
            }
        }
        // ...and every intermediate switch must fuse its two sides.
        for &mid in wp.path.intermediates() {
            if net.is_switch(mid) && !rng.gen_bool(q) {
                return false;
            }
        }
    }
    // The hub stitches all k branches with one GHZ measurement.
    rng.gen_bool(q)
}

/// Estimates the establishment probability of a star over `rounds` rounds.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn estimate_star(
    net: &QuantumNetwork,
    star: &StarPlan,
    rounds: usize,
    rng: &mut impl Rng,
) -> RateEstimate {
    assert!(rounds > 0, "need at least one round");
    let mut hits = 0;
    for _ in 0..rounds {
        if sample_star_round(net, star, rng) {
            hits += 1;
        }
    }
    RateEstimate::from_successes(hits, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::multiparty::{route_multiparty, MultipartyConfig, MultipartyDemand};
    use fusion_core::{DemandId, NetworkParams};
    use fusion_graph::NodeId;
    use fusion_topology::TopologyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn routed_star() -> (fusion_core::QuantumNetwork, StarPlan) {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 3,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(9);
        let net = fusion_core::QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let members: Vec<NodeId> = net
            .graph()
            .node_ids()
            .filter(|&n| net.is_user(n))
            .take(3)
            .collect();
        let demand = MultipartyDemand::new(DemandId::new(0), members);
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let star = out.stars.into_iter().next().expect("one star");
        assert!(star.is_complete());
        (net, star)
    }

    #[test]
    fn sampling_matches_analytic_star_rate() {
        let (net, star) = routed_star();
        let mut rng = StdRng::seed_from_u64(5);
        let est = estimate_star(&net, &star, 30_000, &mut rng);
        let analytic = star.rate(&net);
        assert!(
            est.is_consistent_with(analytic, 0.01),
            "star: analytic {analytic} vs sampled {} ± {}",
            est.mean,
            est.stderr
        );
    }

    #[test]
    fn incomplete_star_never_establishes() {
        let (net, mut star) = routed_star();
        star.hub = None;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!sample_star_round(&net, &star, &mut rng));
    }

    #[test]
    fn perfect_network_always_establishes() {
        let (mut net, star) = routed_star();
        net.set_uniform_link_success(Some(1.0));
        net.set_swap_success(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(sample_star_round(&net, &star, &mut rng));
        }
    }
}
