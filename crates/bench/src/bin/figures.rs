//! Regenerates the paper's evaluation figures as text tables and CSV
//! files.
//!
//! ```text
//! figures [IDS...] [--quick] [--preset NAME] [--analytic] [--seeds N]
//!         [--rounds N] [--threads N] [--out DIR]
//!
//!   IDS          figure ids (default: all) — fig7 fig8a fig8b fig9a fig9b
//!                fig9c fig9d ablation-eq1 ablation-h ablation-merge
//!                ablation-classic ablation-failures scale
//!   --quick      scaled-down config (30 switches, 6 states, 2 networks)
//!   --preset N   large-topology preset (large-1k, large-5k-grid, ...);
//!                see --calibrate for the full table
//!   --analytic   report analytic rates instead of Monte Carlo estimates
//!   --seeds N    networks per data point (default 5, paper's setting)
//!   --rounds N   Monte Carlo rounds per demand (default 1500)
//!   --threads N  worker threads (0 = all cores; default 1, presets 0)
//!   --out DIR    also write <DIR>/<id>.csv (default: results)
//!   --calibrate  print network calibration stats + large presets and exit
//! ```
//!
//! The `scale` figure additionally writes `<DIR>/scale.jsonl`: one JSON
//! row per network instance in the schema the `fusion-runner` sweep
//! aggregator consumes (`sweep aggregate` parses both).
//!
//! Large presets are guarded: sweep settings sized for the 100-switch
//! paper workload would run for hours at 10k switches, so `--seeds` /
//! `--rounds` beyond the preset's budget abort with a clear error instead
//! of silently grinding.

use std::path::PathBuf;

use fusion_bench::figures::{fig_scale_from_rows, run, scale_rows, ALL_FIGURES};
use fusion_bench::workloads::{instance_stats, scale_presets, ExperimentConfig};

/// Hard ceilings for configs at or beyond this many switches; chosen so a
/// full figure sweep stays in minutes on a laptop.
const LARGE_SWITCH_FLOOR: usize = 1_000;
const LARGE_MAX_SEEDS: usize = 2;
const LARGE_MAX_ROUNDS: usize = 1_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut calibrate = false;
    let mut quick = false;
    let mut preset: Option<String> = None;
    let mut analytic = false;
    let mut seeds: Option<usize> = None;
    let mut rounds: Option<usize> = None;
    let mut threads: Option<usize> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--preset" => {
                preset = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--preset needs a name; see --calibrate")),
                );
            }
            "--analytic" => analytic = true,
            "--seeds" => {
                seeds = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--seeds needs a positive integer")),
                );
            }
            "--rounds" => {
                rounds = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--rounds needs an integer")),
                );
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--threads needs an integer (0 = all cores)")),
                );
            }
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a directory"));
            }
            "--calibrate" => calibrate = true,
            "--help" | "-h" => {
                println!("usage: figures [IDS...] [--quick] [--preset NAME] [--analytic] [--seeds N] [--rounds N] [--threads N] [--out DIR] [--calibrate]");
                println!("figure ids: {}", ALL_FIGURES.join(" "));
                println!(
                    "presets: {}",
                    scale_presets()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                return;
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }

    // Resolve the base config first, then apply explicit overrides, so
    // flag order never matters (`--seeds 10 --quick` == `--quick --seeds 10`).
    if analytic && rounds.is_some_and(|n| n > 0) {
        die("--analytic conflicts with --rounds: analytic mode runs no Monte Carlo rounds");
    }
    if quick && preset.is_some() {
        die("--quick conflicts with --preset: pick one base configuration");
    }
    let mut config = match &preset {
        Some(name) => scale_presets()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .unwrap_or_else(|| {
                die(&format!(
                    "unknown preset {name}; known: {}",
                    scale_presets()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                ))
            }),
        None if quick => ExperimentConfig::quick(),
        None => ExperimentConfig::default(),
    };
    if let Some(n) = seeds {
        config.networks = n;
    }
    if let Some(n) = rounds {
        config.mc_rounds = n;
    }
    if let Some(n) = threads {
        config.threads = n;
    }
    if analytic {
        config.mc_rounds = 0;
    }
    validate_scale_budget(&config, preset.as_deref());

    if calibrate {
        println!("large-topology presets (select with --preset NAME):");
        for (name, c) in scale_presets() {
            println!(
                "  {name:<14} {:>6} switches  {:>3} states  kind={:?}  seeds={} rounds={} threads={}",
                c.topology.num_switches,
                c.topology.num_user_pairs,
                c.topology.kind,
                c.networks,
                c.mc_rounds,
                c.resolved_threads(),
            );
        }
        println!();
        for i in 0..config.networks {
            let (net, demands) = config.instance(i);
            let stats = instance_stats(&net);
            println!(
                "instance {i}: nodes={} edges={} avg_degree={:.2} mean_p={:.3} demands={}",
                stats.nodes,
                stats.edges,
                stats.avg_degree,
                stats.mean_link_success,
                demands.len()
            );
        }
        return;
    }

    if ids.is_empty() {
        if config.topology.num_switches >= LARGE_SWITCH_FLOOR {
            // Running every paper sweep at 1k+ switches would grind for
            // hours — the very thing the budget guard exists to prevent.
            // Default large runs to the scale probe; ask for specific
            // figure ids to sweep more.
            eprintln!(
                "note: large topology and no figure ids given — running `scale` only \
                 (name figure ids explicitly to run paper sweeps at this scale)"
            );
            ids.push("scale".to_string());
        } else {
            ids = ALL_FIGURES.iter().map(|s| (*s).to_string()).collect();
        }
    }

    let _ = std::fs::create_dir_all(&out_dir);
    for id in &ids {
        // The scale probe also emits its per-run JSON rows (the schema the
        // fusion-runner aggregator consumes) so one set of tooling parses
        // single-shot probes and sweep campaigns alike.
        let table = if id == "scale" {
            let label = preset
                .as_deref()
                .unwrap_or(if quick { "quick" } else { "default" });
            let rows = scale_rows(&config, label);
            let jsonl: String = rows.iter().map(|r| r.to_json() + "\n").collect();
            let rows_path = out_dir.join("scale.jsonl");
            if let Err(e) = std::fs::write(&rows_path, jsonl) {
                eprintln!("warning: could not write {}: {e}", rows_path.display());
            }
            fig_scale_from_rows(&config, &rows)
        } else {
            let Some(table) = run(id, &config) else {
                die(&format!(
                    "unknown figure id {id}; known: {}",
                    ALL_FIGURES.join(" ")
                ));
            };
            table
        };
        println!("{}", table.render());
        let csv_path = out_dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&csv_path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", csv_path.display());
        }
    }
}

/// Refuses sweep settings that would silently run for hours on a
/// 1k+-switch topology; the error spells out the accepted budget.
fn validate_scale_budget(config: &ExperimentConfig, preset: Option<&str>) {
    if config.topology.num_switches < LARGE_SWITCH_FLOOR {
        return;
    }
    let origin = preset.map_or_else(
        || format!("{}-switch topology", config.topology.num_switches),
        |p| format!("preset {p}"),
    );
    if config.networks > LARGE_MAX_SEEDS {
        die(&format!(
            "--seeds {} exceeds the large-topology budget of {LARGE_MAX_SEEDS} for {origin}; \
             each network at this scale takes minutes to route — lower --seeds, or run a \
             smaller topology for multi-seed sweeps",
            config.networks
        ));
    }
    if config.mc_rounds > LARGE_MAX_ROUNDS {
        die(&format!(
            "--rounds {} exceeds the large-topology budget of {LARGE_MAX_ROUNDS} for {origin}; \
             lower --rounds or pass --analytic (Eq. 1 rates, no Monte Carlo)",
            config.mc_rounds
        ));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
