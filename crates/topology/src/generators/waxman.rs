use fusion_graph::{NodeId, UnGraph};
use rand::Rng;

use super::{place_switches, span};
use crate::config::TopologyConfig;
use crate::model::{Link, Site};

/// Generates the switch layer with the Waxman model \[31\].
///
/// Pairs closer than the configured maximum edge length are connected with
/// probability `β·exp(-d / (alpha·L_max))`. The scale `β` is calibrated
/// analytically so the expected number of edges matches the target average
/// degree, which is how the paper controls degree while keeping Waxman's
/// distance bias.
pub(crate) fn waxman(cfg: &TopologyConfig, alpha: f64, rng: &mut impl Rng) -> UnGraph<Site, Link> {
    assert!(alpha > 0.0, "waxman alpha must be positive");
    let n = cfg.num_switches;
    let mut graph = place_switches(n, cfg.side, rng);
    let d_cap = cfg.max_edge_length();

    // Pass 1: sum the locality weights of candidate pairs. Recomputing
    // distances in pass 2 instead of storing every candidate keeps memory
    // O(n) — at 10k switches the candidate list would hold millions of
    // pairs. The RNG is only consumed in pass 2, in the same pair order as
    // the original single-pass formulation, so generated topologies are
    // unchanged for a fixed seed.
    let mut weight_sum = 0.0;
    for u in 0..n {
        for v in (u + 1)..n {
            let d = span(&graph, u, v);
            if d <= d_cap {
                weight_sum += (-d / (alpha * d_cap)).exp();
            }
        }
    }

    let target_edges = cfg.avg_degree * n as f64 / 2.0;
    let beta = if weight_sum > 0.0 {
        target_edges / weight_sum
    } else {
        0.0
    };
    // Pass 2: sample each candidate pair.
    for u in 0..n {
        for v in (u + 1)..n {
            let d = span(&graph, u, v);
            if d > d_cap {
                continue;
            }
            let w = (-d / (alpha * d_cap)).exp();
            let p = (beta * w).min(1.0);
            if rng.gen_bool(p) {
                graph.add_edge(NodeId::new(u), NodeId::new(v), Link::new(d));
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(n: usize, degree: f64) -> TopologyConfig {
        TopologyConfig {
            num_switches: n,
            avg_degree: degree,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn hits_target_degree_approximately() {
        let c = cfg(100, 10.0);
        let mut total = 0.0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = waxman(&c, 0.4, &mut rng);
            total += g.average_degree();
        }
        let avg = total / 5.0;
        assert!(
            (avg - 10.0).abs() < 2.0,
            "average degree {avg} too far from target 10"
        );
    }

    #[test]
    fn respects_edge_length_cap() {
        let c = cfg(80, 8.0);
        let mut rng = StdRng::seed_from_u64(2);
        let g = waxman(&c, 0.4, &mut rng);
        let cap = c.max_edge_length();
        for e in g.edges() {
            assert!(e.weight.length <= cap + 1e-9);
        }
    }

    #[test]
    fn edge_lengths_match_positions() {
        let c = cfg(40, 6.0);
        let mut rng = StdRng::seed_from_u64(3);
        let g = waxman(&c, 0.4, &mut rng);
        for e in g.edges() {
            let d = g
                .node(e.source)
                .position
                .distance(g.node(e.target).position);
            assert!((d - e.weight.length).abs() < 1e-9);
        }
    }

    #[test]
    fn all_nodes_are_switches() {
        let c = cfg(30, 6.0);
        let mut rng = StdRng::seed_from_u64(4);
        let g = waxman(&c, 0.4, &mut rng);
        assert_eq!(g.node_count(), 30);
        assert!(g.node_weights().all(|s| !s.is_user()));
    }

    #[test]
    fn higher_alpha_means_longer_edges() {
        // Larger alpha weakens the distance penalty, so mean edge length
        // should grow (averaged over seeds).
        let c = cfg(80, 8.0);
        let mean_len = |alpha: f64| {
            let mut total = 0.0;
            let mut count = 0usize;
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = waxman(&c, alpha, &mut rng);
                total += g.edges().map(|e| e.weight.length).sum::<f64>();
                count += g.edge_count();
            }
            total / count as f64
        };
        assert!(mean_len(2.0) > mean_len(0.1));
    }
}
