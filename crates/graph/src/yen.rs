//! Yen's k-shortest loopless paths.
//!
//! The paper's Algorithm 2 reuses Yen's deviation structure with the
//! entanglement-rate metric of Algorithm 1; this module provides the classic
//! min-sum formulation used by the topology tooling and the B1 baseline's
//! region construction, plus it documents and tests the deviation machinery
//! in its simplest setting.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::graph::{NodeId, UnGraph};
use crate::metric::Metric;
use crate::path::Path;
use crate::search::{dijkstra_resume, SearchScratch};

/// A path together with its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedPath {
    /// The loopless path.
    pub path: Path,
    /// Sum of edge costs along the path.
    pub cost: f64,
}

fn path_cost<N, E>(
    graph: &UnGraph<N, E>,
    path: &Path,
    cost: &mut impl FnMut(NodeId, NodeId, &E) -> f64,
) -> f64 {
    path.hops_iter()
        .map(|(u, v)| {
            let e = graph.find_edge(u, v).expect("validated path");
            let w = graph.edge(e);
            cost(u, v, w.weight)
        })
        .sum()
}

/// Spur search with root-node and next-hop bans, reusing `scratch`; returns
/// the shortest banned-aware path to `target`, if any. Goal-directed: the
/// underlying Dijkstra run pauses as soon as `target` settles, which is
/// byte-identical to an exhaustive run's `path_to(target)`.
fn spur_path<N, E>(
    scratch: &mut SearchScratch,
    graph: &UnGraph<N, E>,
    source: NodeId,
    target: NodeId,
    banned_nodes: &HashSet<NodeId>,
    banned_hops: &HashSet<(NodeId, NodeId)>,
    cost: &mut impl FnMut(NodeId, NodeId, &E) -> f64,
) -> Option<Path> {
    dijkstra_resume(scratch, graph, source, |e, w| {
        let (u, v) = (e.source, e.target);
        if banned_nodes.contains(&u) || banned_nodes.contains(&v) {
            return -1.0;
        }
        if banned_hops.contains(&(u, v)) || banned_hops.contains(&(v, u)) {
            return -1.0;
        }
        cost(u, v, w)
    })
    .run_to(target)
}

/// Finds up to `k` loopless minimum-cost paths from `source` to `target`,
/// in non-decreasing cost order.
///
/// `cost` is evaluated per hop `(u, v, edge payload)` and must be
/// non-negative; negative costs mark an edge unusable.
///
/// # Examples
///
/// ```
/// use fusion_graph::{yen::yen_k_shortest, UnGraph};
///
/// let mut g: UnGraph<(), f64> = UnGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1.0);
/// g.add_edge(b, c, 1.0);
/// g.add_edge(a, c, 3.0);
///
/// let paths = yen_k_shortest(&g, a, c, 2, |_, _, w| *w);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].cost, 2.0);
/// assert_eq!(paths[1].cost, 3.0);
/// ```
pub fn yen_k_shortest<N, E>(
    graph: &UnGraph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: impl FnMut(NodeId, NodeId, &E) -> f64,
) -> Vec<CostedPath> {
    let mut scratch = SearchScratch::with_capacity(graph.node_count());
    yen_k_shortest_with(&mut scratch, graph, source, target, k, cost)
}

/// [`yen_k_shortest`] with caller-provided search scratch: every spur
/// search reuses the same arenas, so batch callers (one scratch, many
/// `(source, target)` queries) avoid all per-query allocation of the
/// underlying Dijkstra runs.
pub fn yen_k_shortest_with<N, E>(
    scratch: &mut SearchScratch,
    graph: &UnGraph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    mut cost: impl FnMut(NodeId, NodeId, &E) -> f64,
) -> Vec<CostedPath> {
    let mut accepted: Vec<CostedPath> = Vec::new();
    if k == 0 || source == target {
        return accepted;
    }

    let first =
        dijkstra_resume(scratch, graph, source, |e, w| cost(e.source, e.target, w)).run_to(target);
    let Some(best) = first else {
        return accepted;
    };
    let best_cost = path_cost(graph, &best, &mut cost);
    accepted.push(CostedPath {
        path: best,
        cost: best_cost,
    });

    // Min-heap of candidate deviations keyed by cost; the node list is a
    // tiebreaker so ordering is deterministic. The ban sets are reused
    // (cleared) across spur iterations.
    let mut candidates: BinaryHeap<Reverse<(Metric, Vec<NodeId>)>> = BinaryHeap::new();
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    let mut banned_hops: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut banned_nodes: HashSet<NodeId> = HashSet::new();
    seen.insert(accepted[0].path.nodes().to_vec());

    while accepted.len() < k {
        let prev = accepted
            .last()
            .expect("at least one accepted path")
            .path
            .clone();
        for i in 0..prev.hops() {
            let spur_node = prev.nodes()[i];
            let root = prev.prefix(i);

            // Ban the next hop of every accepted path sharing this root, per
            // Yen: the spur path must deviate here.
            banned_hops.clear();
            for a in &accepted {
                if a.path.len() > i + 1 && a.path.nodes()[..=i] == *root.nodes() {
                    banned_hops.insert((a.path.nodes()[i], a.path.nodes()[i + 1]));
                }
            }
            // Root nodes other than the spur node must not reappear.
            banned_nodes.clear();
            banned_nodes.extend(root.nodes()[..i].iter().copied());

            let Some(spur) = spur_path(
                scratch,
                graph,
                spur_node,
                target,
                &banned_nodes,
                &banned_hops,
                &mut cost,
            ) else {
                continue;
            };
            let total = root.join(&spur);
            let nodes = total.nodes().to_vec();
            if seen.insert(nodes.clone()) {
                let c = path_cost(graph, &total, &mut cost);
                candidates.push(Reverse((Metric::new(c), nodes)));
            }
        }
        let Some(Reverse((c, nodes))) = candidates.pop() else {
            break;
        };
        accepted.push(CostedPath {
            path: Path::new(nodes),
            cost: c.value(),
        });
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The classic Yen example graph.
    fn yen_example() -> (UnGraph<(), f64>, [NodeId; 6]) {
        let mut g = UnGraph::new();
        let c = g.add_node(()); // 0
        let d = g.add_node(()); // 1
        let e = g.add_node(()); // 2
        let f = g.add_node(()); // 3
        let gg = g.add_node(()); // 4
        let h = g.add_node(()); // 5
        g.add_edge(c, d, 3.0);
        g.add_edge(c, e, 2.0);
        g.add_edge(d, f, 4.0);
        g.add_edge(e, d, 1.0);
        g.add_edge(e, f, 2.0);
        g.add_edge(e, gg, 3.0);
        g.add_edge(f, gg, 2.0);
        g.add_edge(f, h, 1.0);
        g.add_edge(gg, h, 2.0);
        (g, [c, d, e, f, gg, h])
    }

    #[test]
    fn finds_three_best_paths_in_order() {
        let (g, [c, _d, e, f, gg, h]) = yen_example();
        let paths = yen_k_shortest(&g, c, h, 3, |_, _, w| *w);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].path.nodes(), &[c, e, f, h]);
        assert_eq!(paths[0].cost, 5.0);
        // The undirected graph has two paths tied at cost 7:
        // c-e-g-h and c-d-e-f-h. Both ranks 2 and 3 must come from that tie.
        assert_eq!(paths[1].cost, 7.0);
        assert_eq!(paths[2].cost, 7.0);
        let tie: Vec<Vec<NodeId>> = vec![vec![c, e, gg, h], vec![c, _d, e, f, h]];
        assert!(tie.contains(&paths[1].path.nodes().to_vec()));
        assert!(tie.contains(&paths[2].path.nodes().to_vec()));
        assert_ne!(paths[1].path, paths[2].path);
    }

    #[test]
    fn paths_are_distinct_and_sorted() {
        let (g, [c, .., h]) = yen_example();
        let paths = yen_k_shortest(&g, c, h, 10, |_, _, w| *w);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert_ne!(w[0].path, w[1].path);
        }
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let (g, [c, .., h]) = yen_example();
        assert!(yen_k_shortest(&g, c, h, 0, |_, _, w| *w).is_empty());
        assert!(yen_k_shortest(&g, c, c, 3, |_, _, w| *w).is_empty());
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g: UnGraph<(), f64> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(yen_k_shortest(&g, a, b, 3, |_, _, w| *w).is_empty());
    }

    /// Enumerates every simple path between two nodes with DFS.
    fn all_simple_paths(g: &UnGraph<(), f64>, s: NodeId, t: NodeId) -> Vec<(Vec<NodeId>, f64)> {
        fn dfs(
            g: &UnGraph<(), f64>,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<NodeId>,
            cost: f64,
            out: &mut Vec<(Vec<NodeId>, f64)>,
        ) {
            if cur == t {
                out.push((visited.clone(), cost));
                return;
            }
            for e in g.incident_edges(cur) {
                let v = e.other(cur);
                if visited.contains(&v) {
                    continue;
                }
                visited.push(v);
                dfs(g, v, t, visited, cost + *e.weight, out);
                visited.pop();
            }
        }
        let mut out = Vec::new();
        let mut visited = vec![s];
        dfs(g, s, t, &mut visited, 0.0, &mut out);
        out
    }

    proptest! {
        /// On random graphs Yen must return exactly the k cheapest simple
        /// paths found by brute-force enumeration.
        #[test]
        fn matches_brute_force(
            edges in proptest::collection::vec((0usize..7, 0usize..7, 1u32..10), 1..16),
            k in 1usize..6,
        ) {
            let mut g: UnGraph<(), f64> = UnGraph::new();
            for _ in 0..7 {
                g.add_node(());
            }
            let mut used = HashSet::new();
            for (u, v, w) in edges {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if used.insert(key) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), f64::from(w));
                }
            }
            let s = NodeId::new(0);
            let t = NodeId::new(6);
            let yen = yen_k_shortest(&g, s, t, k, |_, _, w| *w);
            let mut brute = all_simple_paths(&g, s, t);
            brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            prop_assert_eq!(yen.len(), brute.len().min(k));
            for (got, want) in yen.iter().zip(brute.iter()) {
                // Costs must match the brute-force ranking (paths may tie).
                prop_assert!((got.cost - want.1).abs() < 1e-9,
                    "cost mismatch: got {} want {}", got.cost, want.1);
            }
        }

        /// Reusing one scratch across many queries must return exactly the
        /// same path sets as fresh per-call allocation.
        #[test]
        fn scratch_reuse_returns_identical_path_sets(
            edges in proptest::collection::vec((0usize..7, 0usize..7, 1u32..10), 1..16),
            queries in proptest::collection::vec((0usize..7, 0usize..7, 1usize..5), 1..5),
        ) {
            let mut g: UnGraph<(), f64> = UnGraph::new();
            for _ in 0..7 {
                g.add_node(());
            }
            let mut used = HashSet::new();
            for (u, v, w) in edges {
                if u == v {
                    continue;
                }
                if used.insert((u.min(v), u.max(v))) {
                    g.add_edge(NodeId::new(u), NodeId::new(v), f64::from(w));
                }
            }
            let mut scratch = crate::search::SearchScratch::new();
            for (s, t, k) in queries {
                let (s, t) = (NodeId::new(s), NodeId::new(t));
                let reused = yen_k_shortest_with(&mut scratch, &g, s, t, k, |_, _, w| *w);
                let fresh = yen_k_shortest(&g, s, t, k, |_, _, w| *w);
                prop_assert_eq!(reused, fresh);
            }
        }
    }
}
