//! Plan-level Monte Carlo rate estimation.
//!
//! Demands own disjoint qubits once routed, so their round outcomes are
//! independent: the network entanglement rate is estimated per demand and
//! summed. The parallel variant shards rounds across threads with
//! independent seeded RNGs, keeping results reproducible for a fixed
//! `(seed, threads)` pair.

use fusion_core::{DemandPlan, NetworkPlan, QuantumNetwork, SwapMode};
use fusion_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::connectivity::PlanSampler;
use crate::stats::RateEstimate;

/// Counter handles for the Monte Carlo layer. Default handles are
/// no-ops; wire real ones with [`McCounters::from_registry`]. Both
/// counts are pure functions of `(plan, rounds)` — fusion draws per
/// round are fixed by the plan — so they are deterministic and
/// independent of how rounds are sharded over threads.
#[derive(Debug, Clone, Default)]
pub struct McCounters {
    /// Monte Carlo rounds simulated (per demand plan).
    pub rounds: Counter,
    /// Fusion draws performed across those rounds.
    pub fusion_attempts: Counter,
}

impl McCounters {
    /// Creates handles named `mc.rounds` and `mc.fusion_attempts` in
    /// `registry`.
    #[must_use]
    pub fn from_registry(registry: &Registry) -> Self {
        if !registry.is_enabled() {
            return McCounters::default();
        }
        McCounters {
            rounds: registry.counter("mc.rounds"),
            fusion_attempts: registry.counter("mc.fusion_attempts"),
        }
    }

    /// Records `rounds` rounds of `sampler`.
    fn record(&self, sampler: &PlanSampler, rounds: usize) {
        self.rounds.add(rounds as u64);
        self.fusion_attempts
            .add(rounds as u64 * sampler.fusion_draws_per_round());
    }
}

/// Monte Carlo estimate of a routed network's entanglement rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanEstimate {
    /// Per-demand success-probability estimates, in demand order.
    pub per_demand: Vec<RateEstimate>,
    /// Number of rounds simulated.
    pub rounds: usize,
}

impl PlanEstimate {
    /// The estimated network entanglement rate (sum of demand means).
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.per_demand.iter().map(|e| e.mean).sum()
    }

    /// Standard error of the total rate (demands are independent).
    #[must_use]
    pub fn total_stderr(&self) -> f64 {
        self.per_demand
            .iter()
            .map(|e| e.stderr * e.stderr)
            .sum::<f64>()
            .sqrt()
    }
}

/// Estimates one demand plan's success probability over `rounds` Monte
/// Carlo rounds — the service layer's per-admission check: an online
/// engine evaluates each arrival's plan individually rather than
/// re-simulating the whole plan set.
///
/// Seeding is per call: the same `(plan, seed, rounds)` triple always
/// reproduces the same estimate, independent of what else was admitted.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn estimate_demand_plan(
    net: &QuantumNetwork,
    plan: &DemandPlan,
    mode: SwapMode,
    rounds: usize,
    seed: u64,
) -> RateEstimate {
    estimate_demand_plan_counted(net, plan, mode, rounds, seed, &McCounters::default())
}

/// [`estimate_demand_plan`] with telemetry counters. The counts are
/// recorded in bulk after the simulation loop, so instrumentation adds
/// no per-round cost.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn estimate_demand_plan_counted(
    net: &QuantumNetwork,
    plan: &DemandPlan,
    mode: SwapMode,
    rounds: usize,
    seed: u64,
    counters: &McCounters,
) -> RateEstimate {
    assert!(rounds > 0, "need at least one round");
    let mut sampler = PlanSampler::new(net, plan, mode);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..rounds {
        if sampler.sample(&mut rng) {
            hits += 1;
        }
    }
    counters.record(&sampler, rounds);
    RateEstimate::from_successes(hits, rounds)
}

/// Estimates the plan's entanglement rate over `rounds` Monte Carlo rounds.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn estimate_plan(
    net: &QuantumNetwork,
    plan: &NetworkPlan,
    rounds: usize,
    seed: u64,
) -> PlanEstimate {
    estimate_plan_counted(net, plan, rounds, seed, &McCounters::default())
}

/// [`estimate_plan`] with telemetry counters, recorded in bulk per
/// demand after its simulation loop.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn estimate_plan_counted(
    net: &QuantumNetwork,
    plan: &NetworkPlan,
    rounds: usize,
    seed: u64,
    counters: &McCounters,
) -> PlanEstimate {
    assert!(rounds > 0, "need at least one round");
    let per_demand = plan
        .plans
        .iter()
        .enumerate()
        .map(|(i, dp)| {
            let mut sampler = PlanSampler::new(net, dp, plan.mode);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let mut hits = 0usize;
            for _ in 0..rounds {
                if sampler.sample(&mut rng) {
                    hits += 1;
                }
            }
            counters.record(&sampler, rounds);
            RateEstimate::from_successes(hits, rounds)
        })
        .collect();
    PlanEstimate { per_demand, rounds }
}

/// Parallel variant of [`estimate_plan`]: rounds are split over `threads`
/// workers with derived seeds.
///
/// # Panics
///
/// Panics if `rounds == 0` or `threads == 0`.
#[must_use]
pub fn estimate_plan_parallel(
    net: &QuantumNetwork,
    plan: &NetworkPlan,
    rounds: usize,
    seed: u64,
    threads: usize,
) -> PlanEstimate {
    estimate_plan_parallel_counted(net, plan, rounds, seed, threads, &McCounters::default())
}

/// [`estimate_plan_parallel`] with telemetry counters.
///
/// Counts are recorded once per demand from the main thread using the
/// effective round count (`rounds` rounded up to a multiple of
/// `threads`, exactly what [`PlanEstimate::rounds`] reports), so
/// snapshots match the serial variant whenever `threads` divides
/// `rounds` and never depend on worker scheduling.
///
/// # Panics
///
/// Panics if `rounds == 0` or `threads == 0`.
#[must_use]
pub fn estimate_plan_parallel_counted(
    net: &QuantumNetwork,
    plan: &NetworkPlan,
    rounds: usize,
    seed: u64,
    threads: usize,
    counters: &McCounters,
) -> PlanEstimate {
    assert!(rounds > 0, "need at least one round");
    assert!(threads > 0, "need at least one thread");
    let per_thread = rounds.div_ceil(threads);
    let total_rounds = per_thread * threads;
    for dp in &plan.plans {
        counters.record(&PlanSampler::new(net, dp, plan.mode), total_rounds);
    }
    let hits: Vec<Mutex<usize>> = plan.plans.iter().map(|_| Mutex::new(0usize)).collect();

    crossbeam::scope(|scope| {
        for t in 0..threads {
            let hits = &hits;
            let plan = &plan;
            let net = &net;
            scope.spawn(move |_| {
                for (i, dp) in plan.plans.iter().enumerate() {
                    let mut sampler = PlanSampler::new(net, dp, plan.mode);
                    let mut rng = StdRng::seed_from_u64(
                        seed.wrapping_add((t * plan.plans.len() + i) as u64 ^ 0x9e37_79b9),
                    );
                    let mut local = 0usize;
                    for _ in 0..per_thread {
                        if sampler.sample(&mut rng) {
                            local += 1;
                        }
                    }
                    *hits[i].lock() += local;
                }
            });
        }
    })
    .expect("simulation workers must not panic");

    let per_demand = hits
        .into_iter()
        .map(|h| RateEstimate::from_successes(h.into_inner(), total_rounds))
        .collect();
    PlanEstimate {
        per_demand,
        rounds: total_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::algorithms::alg_n_fusion;
    use fusion_core::{Demand, NetworkParams};
    use fusion_topology::TopologyConfig;

    fn routed_world() -> (QuantumNetwork, NetworkPlan) {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 4,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(21);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        let demands = Demand::from_topology(&topo);
        let plan = alg_n_fusion(&net, &demands);
        (net, plan)
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let (net, plan) = routed_world();
        let est = estimate_plan(&net, &plan, 8_000, 3);
        let analytic = plan.total_rate(&net);
        // Eq. 1 is exact on series-parallel flows and optimistic on
        // reconvergent ones, so simulation may only undershoot — and by a
        // bounded amount per demand.
        assert!(
            est.total_rate() <= analytic + 4.0 * est.total_stderr(),
            "simulation exceeded the analytic bound: {} vs {analytic}",
            est.total_rate()
        );
        let max_gap = 0.12 * plan.plans.len() as f64 + 4.0 * est.total_stderr();
        assert!(
            analytic - est.total_rate() < max_gap,
            "Eq. 1 optimism too large: simulated {} vs analytic {analytic}",
            est.total_rate()
        );
    }

    #[test]
    fn parallel_matches_serial_statistics() {
        let (net, plan) = routed_world();
        let serial = estimate_plan(&net, &plan, 4_000, 9);
        let parallel = estimate_plan_parallel(&net, &plan, 4_000, 9, 4);
        assert!(
            (serial.total_rate() - parallel.total_rate()).abs()
                < 4.0 * (serial.total_stderr() + parallel.total_stderr()) + 0.05,
            "serial {} vs parallel {}",
            serial.total_rate(),
            parallel.total_rate()
        );
        assert!(parallel.rounds >= 4_000);
    }

    #[test]
    fn parallel_is_deterministic_per_seed_and_threads() {
        let (net, plan) = routed_world();
        let a = estimate_plan_parallel(&net, &plan, 2_000, 5, 3);
        let b = estimate_plan_parallel(&net, &plan, 2_000, 5, 3);
        assert_eq!(a.total_rate(), b.total_rate());
    }

    #[test]
    fn estimates_are_probabilities() {
        let (net, plan) = routed_world();
        let est = estimate_plan(&net, &plan, 500, 1);
        for d in &est.per_demand {
            assert!((0.0..=1.0).contains(&d.mean));
        }
        assert!(est.total_rate() <= plan.plans.len() as f64);
    }
}
