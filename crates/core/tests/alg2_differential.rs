//! Differential-testing harness for the Algorithm 2 width-descent engine.
//!
//! The width-descent candidate construction (`paths_selection`) must
//! produce a byte-identical candidate list — same paths, same order, same
//! widths, same `f64` metrics — to the retained per-width sweep oracle
//! (`paths_selection_reference`) on every input. Its reuse claims rest on
//! exact arguments (goal-directed runs are truncated full runs; the
//! monotone-feasibility view only skips provably-empty searches), and
//! this harness is what holds them to it, over random Waxman/grid
//! networks × demand loads × seeds × swap modes × `h` × `max_width`.
//!
//! A second property drives the *whole* pipeline end-to-end with each
//! engine and compares the merged plans, so an Algorithm 2 divergence
//! cannot hide behind an Algorithm 3 tie-break that happens to pick the
//! same routes: the plans, acceptance outcomes, leftover-qubit vectors,
//! and Algorithm 4 assignments must all match under both merge orders.
//!
//! The reduced grids below run in tier-1 CI on every push; the wide
//! grids (`--ignored`) cover more cases, larger networks, and harsher
//! p/q corners for release validation:
//!
//! ```text
//! cargo test --release -p fusion-core --test alg2_differential -- --ignored
//! ```

use fusion_core::algorithms::alg2::{paths_selection, paths_selection_reference};
use fusion_core::algorithms::{route, MergeOrder, PathSelection, RoutingConfig};
use fusion_core::{Demand, NetworkParams, QuantumNetwork, SwapMode};
use fusion_topology::{GeneratorKind, TopologyConfig};

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Builds one sampled network instance with its demands.
fn instance(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
) -> (QuantumNetwork, Vec<Demand>) {
    let topo = TopologyConfig {
        num_switches: switches,
        num_user_pairs: pairs,
        avg_degree: 6.0,
        kind: if grid {
            GeneratorKind::Grid
        } else {
            GeneratorKind::default() // Waxman, the paper's family
        },
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);
    let demands = Demand::from_topology(&topo);
    (net, demands)
}

/// One sampled selection case: descent == reference, exactly.
#[allow(clippy::too_many_arguments)]
fn check_selection_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    max_width: u32,
    mode: SwapMode,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (net, demands) = instance(switches, pairs, grid, seed, p, q);
    let caps = net.capacities();
    let descent = paths_selection(&net, &demands, &caps, h, max_width, mode);
    let reference = paths_selection_reference(&net, &demands, &caps, h, max_width, mode);
    prop_assert_eq!(
        descent.len(),
        reference.len(),
        "candidate count diverged (grid {}, h {}, max_width {}, mode {:?})",
        grid,
        h,
        max_width,
        mode
    );
    for (i, (d, r)) in descent.iter().zip(&reference).enumerate() {
        prop_assert_eq!(
            d,
            r,
            "candidate {} diverged (grid {}, h {}, max_width {}, mode {:?})",
            i,
            grid,
            h,
            max_width,
            mode
        );
    }
    Ok(())
}

/// One sampled end-to-end case: `route` under the width-descent engine
/// must emit the same plan as under the per-width sweep, for both merge
/// orders and both route-cap regimes.
#[allow(clippy::too_many_arguments)]
fn check_route_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    mode: SwapMode,
    merge_order: MergeOrder,
    max_paths_per_demand: Option<usize>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (net, demands) = instance(switches, pairs, grid, seed, p, q);
    let base = RoutingConfig {
        h,
        mode,
        merge_order,
        max_paths_per_demand,
        ..RoutingConfig::n_fusion()
    };
    let descent = route(
        &net,
        &demands,
        &RoutingConfig {
            path_selection: PathSelection::WidthDescent,
            ..base
        },
    );
    let sweep = route(
        &net,
        &demands,
        &RoutingConfig {
            path_selection: PathSelection::PerWidthSweep,
            ..base
        },
    );
    prop_assert_eq!(
        &descent.leftover,
        &sweep.leftover,
        "leftover qubits diverged (mode {:?}, order {:?}, cap {:?})",
        mode,
        merge_order,
        max_paths_per_demand
    );
    prop_assert_eq!(
        descent.alg4_links,
        sweep.alg4_links,
        "alg4 assignments diverged (mode {:?}, order {:?}, cap {:?})",
        mode,
        merge_order,
        max_paths_per_demand
    );
    prop_assert_eq!(descent.plans.len(), sweep.plans.len());
    for (i, (d, s)) in descent.plans.iter().zip(&sweep.plans).enumerate() {
        prop_assert_eq!(
            d == s,
            true,
            "demand {} plan diverged (mode {:?}, order {:?}, cap {:?})",
            i,
            mode,
            merge_order,
            max_paths_per_demand
        );
    }
    Ok(())
}

fn mode_of(classic: bool) -> SwapMode {
    if classic {
        SwapMode::Classic
    } else {
        SwapMode::NFusion
    }
}

fn order_of(width_major: bool) -> MergeOrder {
    if width_major {
        MergeOrder::WidthMajor
    } else {
        MergeOrder::GainPerQubit
    }
}

fn cap_of(cap: usize) -> Option<usize> {
    // 0 → unlimited; 1..3 → per-demand route cap (the classic pipeline
    // runs with Some(1)).
    if cap == 0 {
        None
    } else {
        Some(cap)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tier-1 reduced selection grid: small Waxman/grid networks,
    /// both swap modes, the h × max_width corners included.
    #[test]
    fn descent_selection_matches_reference_reduced(
        switches in 10usize..36,
        pairs in 2usize..7,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        p in 0.1f64..0.9,
        q in 0.6f64..1.0,
        h in 1usize..4,
        max_width in 1u32..6,
        classic in proptest::bool::ANY,
    ) {
        check_selection_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            max_width,
            mode_of(classic),
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tier-1 reduced end-to-end grid: the full pipeline under both
    /// engines must merge to identical plans.
    #[test]
    fn route_with_descent_matches_sweep_reduced(
        switches in 10usize..30,
        pairs in 2usize..6,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        p in 0.1f64..0.9,
        q in 0.6f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        width_major in proptest::bool::ANY,
        cap in 0usize..3,
    ) {
        check_route_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            mode_of(classic),
            order_of(width_major),
            cap_of(cap),
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wide selection grid: more cases, larger networks, wider
    /// channels, and the p/q corners. Run explicitly with `-- --ignored`.
    #[test]
    #[ignore = "wide differential grid; minutes of runtime, run with -- --ignored"]
    fn descent_selection_matches_reference_wide(
        switches in 10usize..120,
        pairs in 2usize..12,
        grid in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
        p in 0.01f64..0.999,
        q in 0.3f64..1.0,
        h in 1usize..6,
        max_width in 1u32..8,
        classic in proptest::bool::ANY,
    ) {
        check_selection_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            max_width,
            mode_of(classic),
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The wide end-to-end grid. Run explicitly with `-- --ignored`.
    #[test]
    #[ignore = "wide differential grid; minutes of runtime, run with -- --ignored"]
    fn route_with_descent_matches_sweep_wide(
        switches in 10usize..90,
        pairs in 2usize..10,
        grid in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
        p in 0.01f64..0.999,
        q in 0.3f64..1.0,
        h in 1usize..6,
        classic in proptest::bool::ANY,
        width_major in proptest::bool::ANY,
        cap in 0usize..4,
    ) {
        check_route_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            mode_of(classic),
            order_of(width_major),
            cap_of(cap),
        )?;
    }
}
