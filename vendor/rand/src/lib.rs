//! Offline stub of `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses — the
//! [`Rng`]/[`RngCore`] traits with `gen_bool` and `gen_range`,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — with the same
//! signatures as the real crate so it can be swapped back in unchanged.
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 (the
//! reference seeding procedure), not upstream's ChaCha12: seeded streams
//! are deterministic and high-quality but differ from real `rand`. The
//! workspace's tests assert statistical properties, never exact stream
//! values, so both implementations satisfy them. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing randomness methods, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        next_f64(self) < p
    }

    /// Samples a value uniformly from a half-open `low..high` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // < 2^-64 per draw, far below anything a test can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + next_f64(rng) * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` when `u`
        // is close to 1; keep the documented half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (next_f64(rng) as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn reference_works_as_rng() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r = &mut rng;
        assert!(takes_impl(r) < 100);
    }
}
