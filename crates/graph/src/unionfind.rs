/// Union-find (disjoint-set forest) with path compression and union by rank.
///
/// Used for percolation connectivity checks in the Monte Carlo simulator and
/// as the backbone of the entanglement-group registry.
///
/// # Examples
///
/// ```
/// use fusion_graph::DisjointSets;
///
/// let mut ds = DisjointSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert!(ds.same_set(0, 1));
/// assert!(!ds.same_set(1, 2));
/// assert_eq!(ds.set_size(3), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    size: Vec<usize>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets labelled `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Adds a new singleton element and returns its label.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        self.size.push(1);
        self.sets += 1;
        id
    }

    /// Returns the representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of bounds.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }
}

/// Union-find with O(1) generational reset, for tight sampling loops.
///
/// The Monte Carlo connectivity sampler runs one union-find per round over
/// the same node set; constructing a [`DisjointSets`] each round costs
/// three allocations plus an O(n) fill. `GenerationalDisjointSets` keeps
/// the buffers and invalidates them by bumping a generation counter:
/// [`reset`](GenerationalDisjointSets::reset) is O(1) (amortized), and
/// elements are lazily re-initialized as singletons on first touch.
///
/// # Examples
///
/// ```
/// use fusion_graph::GenerationalDisjointSets;
///
/// let mut ds = GenerationalDisjointSets::new(3);
/// ds.union(0, 1);
/// assert!(ds.same_set(0, 1));
/// ds.reset(3); // O(1): next round starts from singletons
/// assert!(!ds.same_set(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct GenerationalDisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    size: Vec<usize>,
    stamps: crate::stamps::GenerationStamps,
    len: usize,
    sets: usize,
}

impl GenerationalDisjointSets {
    /// Creates `n` singleton sets labelled `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GenerationalDisjointSets {
            parent: vec![0; n],
            rank: vec![0; n],
            size: vec![0; n],
            stamps: crate::stamps::GenerationStamps::with_capacity(n),
            len: n,
            sets: n,
        }
    }

    /// Number of elements in the current generation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct sets in the current generation.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Starts a fresh generation of `n` singleton sets, reusing the
    /// buffers. O(1) unless the element count grows or the generation
    /// counter wraps (then one O(n) clear is paid).
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.parent.resize(n, 0);
            self.rank.resize(n, 0);
            self.size.resize(n, 0);
        }
        self.stamps.advance(n);
        self.len = n;
        self.sets = n;
    }

    /// Lazily re-initializes `x` as a singleton if it has not been touched
    /// this generation.
    #[inline]
    fn ensure(&mut self, x: usize) {
        assert!(x < self.len, "element {x} out of bounds (len {})", self.len);
        if !self.stamps.is_current(x) {
            self.stamps.mark(x);
            self.parent[x] = x;
            self.rank[x] = 0;
            self.size[x] = 1;
        }
    }

    /// Returns the representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds for the current generation.
    pub fn find(&mut self, x: usize) -> usize {
        self.ensure(x);
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of bounds.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut ds = DisjointSets::new(3);
        assert_eq!(ds.set_count(), 3);
        assert_eq!(ds.len(), 3);
        assert!(!ds.same_set(0, 1));
        assert_eq!(ds.set_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut ds = DisjointSets::new(5);
        assert!(ds.union(0, 1));
        assert!(ds.union(1, 2));
        assert!(!ds.union(0, 2), "already merged");
        assert_eq!(ds.set_count(), 3);
        assert_eq!(ds.set_size(0), 3);
        assert!(ds.same_set(0, 2));
        assert!(!ds.same_set(0, 3));
    }

    #[test]
    fn push_extends() {
        let mut ds = DisjointSets::new(1);
        let id = ds.push();
        assert_eq!(id, 1);
        assert_eq!(ds.set_count(), 2);
        ds.union(0, id);
        assert_eq!(ds.set_count(), 1);
    }

    #[test]
    fn empty_set() {
        let ds = DisjointSets::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.set_count(), 0);
    }

    #[test]
    fn generational_reset_clears_state() {
        let mut ds = GenerationalDisjointSets::new(4);
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert!(ds.union(0, 1));
        assert!(ds.union(2, 3));
        assert_eq!(ds.set_count(), 2);
        assert_eq!(ds.set_size(0), 2);
        ds.reset(4);
        assert_eq!(ds.set_count(), 4);
        assert!(!ds.same_set(0, 1));
        assert_eq!(ds.set_size(2), 1);
    }

    #[test]
    fn generational_grows_and_shrinks() {
        let mut ds = GenerationalDisjointSets::new(2);
        ds.union(0, 1);
        ds.reset(6);
        assert_eq!(ds.len(), 6);
        assert!(ds.union(4, 5));
        assert!(!ds.same_set(0, 1));
        ds.reset(3);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.set_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn generational_bounds_follow_reset() {
        let mut ds = GenerationalDisjointSets::new(5);
        ds.reset(2);
        let _ = ds.find(3);
    }

    proptest! {
        /// Across many generations, a reused generational union-find must
        /// agree element-for-element with a freshly rebuilt
        /// [`DisjointSets`] — the from-scratch reference the sampler used
        /// to reconstruct every round.
        #[test]
        fn generational_matches_fresh_rebuild_across_rounds(
            rounds in proptest::collection::vec(
                (2usize..16, proptest::collection::vec((0usize..16, 0usize..16), 0..24)),
                1..8,
            ),
        ) {
            let mut gen_ds = GenerationalDisjointSets::new(0);
            for (n, ops) in rounds {
                gen_ds.reset(n);
                let mut fresh = DisjointSets::new(n);
                for (a, b) in ops {
                    let (a, b) = (a % n, b % n);
                    prop_assert_eq!(gen_ds.union(a, b), fresh.union(a, b));
                }
                prop_assert_eq!(gen_ds.set_count(), fresh.set_count());
                for a in 0..n {
                    prop_assert_eq!(gen_ds.set_size(a), fresh.set_size(a));
                    for b in 0..n {
                        prop_assert_eq!(gen_ds.same_set(a, b), fresh.same_set(a, b));
                    }
                }
            }
        }

        /// Union-find must agree with a naive label-propagation model.
        #[test]
        fn matches_naive_model(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..60)) {
            let n = 20;
            let mut ds = DisjointSets::new(n);
            let mut labels: Vec<usize> = (0..n).collect();
            for (a, b) in ops {
                ds.union(a, b);
                let (la, lb) = (labels[a], labels[b]);
                if la != lb {
                    for l in labels.iter_mut() {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
            }
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(ds.set_count(), distinct.len());
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(ds.same_set(a, b), labels[a] == labels[b]);
                }
            }
            // Set sizes must sum to n and match the naive model.
            for a in 0..n {
                let expected = labels.iter().filter(|&&l| l == labels[a]).count();
                prop_assert_eq!(ds.set_size(a), expected);
            }
        }
    }
}
