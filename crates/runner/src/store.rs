//! Crash-safe campaign persistence: JSONL rows plus an atomic manifest.
//!
//! The results store is append-only: each completed cell is one
//! [`Row`] written as a single JSON line in one `write` call to a file
//! opened in append mode, so a crash can at worst leave one partial final
//! line — which [`CampaignStore::load_rows`] detects and drops. The
//! manifest is rewritten through a temp-file + rename, so it is always
//! either the old or the new version. Together they make resume trivial:
//! reload the rows, skip the cells already present.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use fusion_bench::report::Row;

/// Campaign-level bookkeeping, serialized as one flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name from the spec.
    pub name: String,
    /// [`crate::spec::SweepSpec::fingerprint`] of the spec the rows
    /// belong to; a directory refuses rows from a different spec.
    pub spec_fingerprint: u64,
    /// The campaign seed (informational; part of the fingerprint too).
    pub campaign_seed: u64,
    /// Total cells in the expanded grid.
    pub total_cells: usize,
    /// Cells completed so far.
    pub completed_cells: usize,
    /// `true` once every cell has a row.
    pub done: bool,
}

impl Manifest {
    fn to_row(&self) -> Row {
        let mut row = Row::new();
        #[allow(clippy::cast_possible_wrap)]
        row.push_str("name", self.name.clone())
            .push_int("spec_fingerprint", self.spec_fingerprint as i64)
            .push_int("campaign_seed", self.campaign_seed as i64)
            .push_int("total_cells", self.total_cells as i64)
            .push_int("completed_cells", self.completed_cells as i64)
            .push_bool("done", self.done);
        row
    }

    fn from_row(row: &Row) -> Result<Manifest, String> {
        let int = |key: &str| {
            row.int_field(key)
                .ok_or_else(|| format!("manifest missing integer field {key:?}"))
        };
        Ok(Manifest {
            name: row
                .str_field("name")
                .ok_or("manifest missing field \"name\"")?
                .to_string(),
            #[allow(clippy::cast_sign_loss)]
            spec_fingerprint: int("spec_fingerprint")? as u64,
            #[allow(clippy::cast_sign_loss)]
            campaign_seed: int("campaign_seed")? as u64,
            total_cells: usize::try_from(int("total_cells")?)
                .map_err(|_| "negative total_cells")?,
            completed_cells: usize::try_from(int("completed_cells")?)
                .map_err(|_| "negative completed_cells")?,
            done: matches!(
                row.get("done"),
                Some(fusion_bench::report::Value::Bool(true))
            ),
        })
    }
}

/// Rows loaded from disk plus what was skipped while loading.
#[derive(Debug, Default)]
pub struct LoadedRows {
    /// Every complete, parseable row in file order.
    pub rows: Vec<Row>,
    /// Unparseable lines dropped (at most the crash-truncated tail; more
    /// than one suggests a corrupted file).
    pub dropped: usize,
}

impl LoadedRows {
    /// The set of completed cell keys (rows carrying a `"cell"` field).
    #[must_use]
    pub fn completed_cells(&self) -> BTreeSet<String> {
        self.rows
            .iter()
            .filter_map(|r| r.str_field("cell"))
            .map(str::to_string)
            .collect()
    }
}

/// Parses JSONL text into rows, counting (not failing on) unparseable
/// lines — the shared loading discipline for `rows.jsonl`, `scale.jsonl`,
/// and any other file in the row schema.
#[must_use]
pub fn parse_jsonl(text: &str) -> LoadedRows {
    let mut loaded = LoadedRows::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Row::parse_json(line) {
            Ok(row) => loaded.rows.push(row),
            Err(_) => loaded.dropped += 1,
        }
    }
    loaded
}

/// One campaign directory: `rows.jsonl`, `manifest.json`, `summary.json`.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
    /// Kept open across appends so each row is a single `write` syscall
    /// on an `O_APPEND` descriptor.
    rows_file: Option<File>,
}

impl CampaignStore {
    /// Opens (creating if needed) a campaign directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: &Path) -> io::Result<CampaignStore> {
        std::fs::create_dir_all(dir)?;
        Ok(CampaignStore {
            dir: dir.to_path_buf(),
            rows_file: None,
        })
    }

    /// The campaign directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the append-only results file.
    #[must_use]
    pub fn rows_path(&self) -> PathBuf {
        self.dir.join("rows.jsonl")
    }

    /// Path of the manifest.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of the aggregated summary.
    #[must_use]
    pub fn summary_path(&self) -> PathBuf {
        self.dir.join("summary.json")
    }

    /// Drops a crash-truncated partial final line (no trailing newline)
    /// before the first append of a session, so the re-executed cell's
    /// row doesn't get glued onto the partial bytes and lost.
    fn truncate_partial_tail(&self) -> io::Result<()> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = match OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.rows_path())
        {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(());
        }
        // Common (clean) case: O(1) — just inspect the final byte.
        file.seek(SeekFrom::End(-1))?;
        let mut last = [0u8; 1];
        file.read_exact(&mut last)?;
        if last[0] == b'\n' {
            return Ok(());
        }
        // Rare crash case: find the last newline and cut after it.
        let bytes = std::fs::read(self.rows_path())?;
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        file.set_len(keep as u64)?;
        file.sync_data()
    }

    /// Appends one result row: a single line written in one call and
    /// flushed before returning, so a completed cell survives any later
    /// crash. The first append of a session truncates any partial line a
    /// previous crash left at the tail.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_row(&mut self, row: &Row) -> io::Result<()> {
        if self.rows_file.is_none() {
            self.truncate_partial_tail()?;
            self.rows_file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.rows_path())?,
            );
        }
        let file = self.rows_file.as_mut().expect("opened above");
        let mut line = row.to_json();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }

    /// Loads every complete row, dropping a crash-truncated or corrupt
    /// tail (a missing file is simply zero rows).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn load_rows(&self) -> io::Result<LoadedRows> {
        let text = match std::fs::read_to_string(self.rows_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedRows::default()),
            Err(e) => return Err(e),
        };
        Ok(parse_jsonl(&text))
    }

    /// Atomically replaces the manifest (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        let tmp = self.dir.join("manifest.json.tmp");
        let mut file = File::create(&tmp)?;
        let mut text = manifest.to_row().to_json();
        text.push('\n');
        file.write_all(text.as_bytes())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, self.manifest_path())
    }

    /// Loads the manifest; `None` when the directory has none yet.
    ///
    /// # Errors
    ///
    /// Returns a description for filesystem or parse errors.
    pub fn load_manifest(&self) -> Result<Option<Manifest>, String> {
        let text = match std::fs::read_to_string(self.manifest_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading manifest: {e}")),
        };
        let row = Row::parse_json(text.trim()).map_err(|e| format!("parsing manifest: {e}"))?;
        Manifest::from_row(&row).map(Some)
    }

    /// Deletes rows, manifest, and summary — a fresh start in the same
    /// directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found".
    pub fn wipe(&mut self) -> io::Result<()> {
        self.rows_file = None;
        for path in [self.rows_path(), self.manifest_path(), self.summary_path()] {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fusion-runner-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn row(cell: &str, rate: f64) -> Row {
        let mut r = Row::new();
        r.push_str("cell", cell).push_num("rate", rate);
        r
    }

    #[test]
    fn rows_round_trip_and_resume_skips_completed() {
        let dir = tmp_dir("roundtrip");
        let mut store = CampaignStore::open(&dir).unwrap();
        store.append_row(&row("a/seed0", 1.5)).unwrap();
        store.append_row(&row("a/seed1", 2.5)).unwrap();
        let loaded = store.load_rows().unwrap();
        assert_eq!(loaded.rows.len(), 2);
        assert_eq!(loaded.dropped, 0);
        let done = loaded.completed_cells();
        assert!(done.contains("a/seed0") && done.contains("a/seed1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("truncated");
        let mut store = CampaignStore::open(&dir).unwrap();
        store.append_row(&row("a/seed0", 1.5)).unwrap();
        // Simulate a crash mid-append: a partial line at the tail.
        let mut file = OpenOptions::new()
            .append(true)
            .open(store.rows_path())
            .unwrap();
        file.write_all(b"{\"cell\": \"a/seed1\", \"rate\": 2.")
            .unwrap();
        drop(file);
        let loaded = store.load_rows().unwrap();
        assert_eq!(loaded.rows.len(), 1);
        assert_eq!(loaded.dropped, 1);
        assert!(!loaded.completed_cells().contains("a/seed1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_truncated_tail_does_not_glue_lines() {
        // A crash mid-write leaves a partial line without a trailing
        // newline; the next session's first append must drop it instead
        // of gluing the new row onto the same line (which would corrupt
        // BOTH rows and silently lose the re-executed cell's result).
        let dir = tmp_dir("glue");
        let mut store = CampaignStore::open(&dir).unwrap();
        store.append_row(&row("a/seed0", 1.5)).unwrap();
        let mut file = OpenOptions::new()
            .append(true)
            .open(store.rows_path())
            .unwrap();
        file.write_all(b"{\"cell\": \"a/seed1\", \"rate\": 2.")
            .unwrap();
        drop(file);
        // Fresh session (new store handle), as after a real crash.
        let mut store = CampaignStore::open(&dir).unwrap();
        store.append_row(&row("a/seed1", 2.5)).unwrap();
        let loaded = store.load_rows().unwrap();
        assert_eq!(loaded.dropped, 0, "partial tail must be gone, not glued");
        assert_eq!(loaded.rows.len(), 2);
        assert_eq!(loaded.rows[1].str_field("cell"), Some("a/seed1"));
        assert_eq!(loaded.rows[1].num_field("rate"), Some(2.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_atomically() {
        let dir = tmp_dir("manifest");
        let store = CampaignStore::open(&dir).unwrap();
        assert_eq!(store.load_manifest().unwrap(), None);
        let manifest = Manifest {
            name: "camp".to_string(),
            spec_fingerprint: u64::MAX - 3,
            campaign_seed: 42,
            total_cells: 10,
            completed_cells: 4,
            done: false,
        };
        store.write_manifest(&manifest).unwrap();
        assert_eq!(store.load_manifest().unwrap(), Some(manifest.clone()));
        let finished = Manifest {
            completed_cells: 10,
            done: true,
            ..manifest
        };
        store.write_manifest(&finished).unwrap();
        assert_eq!(store.load_manifest().unwrap(), Some(finished));
        assert!(
            !dir.join("manifest.json.tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wipe_resets_the_directory() {
        let dir = tmp_dir("wipe");
        let mut store = CampaignStore::open(&dir).unwrap();
        store.append_row(&row("a/seed0", 1.0)).unwrap();
        store
            .write_manifest(&Manifest {
                name: "w".to_string(),
                spec_fingerprint: 1,
                campaign_seed: 2,
                total_cells: 1,
                completed_cells: 1,
                done: true,
            })
            .unwrap();
        store.wipe().unwrap();
        assert_eq!(store.load_rows().unwrap().rows.len(), 0);
        assert_eq!(store.load_manifest().unwrap(), None);
        // The store still works after a wipe.
        store.append_row(&row("b/seed0", 3.0)).unwrap();
        assert_eq!(store.load_rows().unwrap().rows.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
