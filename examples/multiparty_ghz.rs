//! Extension demo: distributing a k-party GHZ state among quantum-users
//! via hub fusion — the natural next step the paper motivates with its
//! k-GHZ teleportation application (§II-B, [25]).
//!
//! Routes 3-, 4-, and 5-party GHZ demands on one network, validates the
//! analytic star rate by Monte Carlo, and replays a 3-party distribution
//! at circuit level on the stabilizer simulator.
//!
//! ```text
//! cargo run --release --example multiparty_ghz
//! ```

use ghz_entanglement_routing::core::multiparty::{
    route_multiparty, MultipartyConfig, MultipartyDemand,
};
use ghz_entanglement_routing::core::{DemandId, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::quantum::stabilizer::{fuse_groups, Tableau};
use ghz_entanglement_routing::sim::multiparty::estimate_star;
use ghz_entanglement_routing::topology::TopologyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = TopologyConfig {
        num_switches: 40,
        num_user_pairs: 5, // 10 users to draw members from
        avg_degree: 8.0,
        ..TopologyConfig::default()
    }
    .generate(17);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let users: Vec<_> = net.graph().node_ids().filter(|&n| net.is_user(n)).collect();

    println!("k-party GHZ distribution on a 40-switch network\n");
    let mut rng = StdRng::seed_from_u64(3);
    for k in [3usize, 4, 5] {
        let demand = MultipartyDemand::new(DemandId::new(0), users[..k].to_vec());
        let out = route_multiparty(&net, &[demand], &MultipartyConfig::default());
        let star = &out.stars[0];
        if !star.is_complete() {
            println!("k = {k}: no feasible star");
            continue;
        }
        let analytic = star.rate(&net);
        let measured = estimate_star(&net, star, 5_000, &mut rng);
        println!(
            "k = {k}: hub {}, branch hops {:?}, rate analytic {:.4} / simulated {:.4} ± {:.4}",
            star.hub.expect("complete"),
            star.branches
                .iter()
                .map(|b| b.path.hops())
                .collect::<Vec<_>>(),
            analytic,
            measured.mean,
            measured.stderr
        );
    }

    // Circuit-level ground truth: three users deliver one Bell-pair qubit
    // each to the hub; the hub's single 3-GHZ measurement leaves the users
    // in a canonical GHZ state.
    println!("\nStabilizer replay of a 3-party hub fusion:");
    let mut tab = Tableau::new(6);
    let groups = vec![vec![0usize, 1], vec![2, 3], vec![4, 5]]; // (user, hub qubit) x3
    for g in &groups {
        tab.prepare_ghz(g);
    }
    let outcomes = fuse_groups(&mut tab, &groups, &[1, 3, 5], &mut rng);
    println!("  hub measurement outcomes: {outcomes:?}");
    println!(
        "  users {{0, 2, 4}} share canonical GHZ: {}",
        tab.is_ghz(&[0, 2, 4])
    );
}
