//! Experiment harness reproducing the paper's evaluation (§V).
//!
//! [`workloads`] defines the default network configuration and runs the
//! four algorithms (plus the Alg-3 ablation) on generated instances;
//! [`figures`] sweeps the parameters of every figure in the paper and
//! formats the resulting series. The `figures` binary prints them; the
//! Criterion benches measure the routing algorithms' compute cost on the
//! same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod perf;
pub mod report;
pub mod workloads;
