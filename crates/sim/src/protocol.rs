//! Protocol-level simulation of Phase III (paper §III-B) driving the
//! quantum substrate.
//!
//! Where [`crate::connectivity`] samples outcomes abstractly, this module
//! walks the actual entanglement machinery per round:
//!
//! 1. **Link generation** — every parallel link of every routed channel
//!    attempts heralded entanglement; successes become Bell pairs in an
//!    [`EntanglementRegistry`], one qubit pinned at each endpoint.
//! 2. **Fusion** — every switch in the flow measures all its qubits for
//!    the state in one GHZ-basis measurement. Fusions are simultaneous:
//!    a failed fusion destroys the Bell pairs it touched (at measurement
//!    time every involved qubit is still in its own pair), a successful
//!    fusion merges its surviving pairs; a switch left with a single live
//!    qubit measures it out (1-fusion).
//! 3. **Verification** — the state is established when the source and
//!    destination users hold qubits of one common GHZ group; the group is
//!    then trimmed to a Bell pair by Pauli-measuring spectators, ready for
//!    teleportation (§II-B).
//!
//! The simulator also recomputes each round's verdict with plain
//! percolation connectivity and asserts the two agree — the registry and
//! the paper's Eq.-1 world model are equivalent round by round.
//!
//! Tight Monte Carlo loops should build a [`RoundSimulator`] once per
//! routed demand and call [`RoundSimulator::simulate`] per round: the
//! graph lookups are resolved at construction and the registry is
//! reset-and-refilled instead of reallocated (the sampler pattern used by
//! [`crate::connectivity`]), so large presets can afford protocol-level
//! validation too.

use std::collections::HashMap;

use fusion_core::{DemandPlan, QuantumNetwork};
use fusion_graph::{DisjointSets, NodeId};
use fusion_quantum::{EntanglementRegistry, QubitId};
use rand::Rng;

/// Outcome of one protocol round for one demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Whether the demanded state was established.
    pub established: bool,
    /// Bell pairs generated across all channels this round.
    pub links_generated: usize,
    /// GHZ fusions attempted (arity >= 2).
    pub fusions_attempted: usize,
    /// GHZ fusions that succeeded.
    pub fusions_succeeded: usize,
}

impl RoundOutcome {
    fn dead() -> Self {
        RoundOutcome {
            established: false,
            links_generated: 0,
            fusions_attempted: 0,
            fusions_succeeded: 0,
        }
    }
}

/// Simulates one full protocol round for a routed demand, returning the
/// outcome. See the module docs for the phase structure.
///
/// Convenience wrapper that resolves the plan from scratch per call (the
/// fresh-allocation path); Monte Carlo loops should reuse a
/// [`RoundSimulator`], which draws and decides identically.
///
/// # Panics
///
/// Panics (debug assertions) if the registry verdict ever disagrees with
/// percolation connectivity — that would mean the quantum bookkeeping and
/// the analytic model diverged.
pub fn simulate_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> RoundOutcome {
    RoundSimulator::new(net, plan).simulate(rng)
}

/// Reusable protocol-round simulator for one routed demand.
///
/// Construction resolves every graph lookup once: flow nodes are indexed,
/// channels are expanded into parallel links with their heralding
/// probabilities, and per-round buffers (held-qubit lists, live-link list,
/// fusion outcomes) plus the [`EntanglementRegistry`] are allocated up
/// front. [`simulate`](RoundSimulator::simulate) then reset-and-refills
/// that state instead of reallocating it, drawing from the RNG in exactly
/// the order of the fresh-allocation path ([`simulate_round`]).
///
/// Fusions are processed in flow-node order (failures first, then
/// successes), so the outcome — including the attempt counters — is a
/// deterministic function of the RNG draws.
#[derive(Debug, Clone)]
pub struct RoundSimulator {
    /// One entry per parallel link: `(u_idx, v_idx, heralding p)`, in flow
    /// edge order with each channel expanded to its width. Flow edges
    /// without a backing network hop are dropped at build time (they never
    /// drew in the historical implementation either).
    links: Vec<(usize, usize, f64)>,
    /// `true` at indices whose flow node is a switch.
    switch_mask: Vec<bool>,
    /// Flow-node index of the source / destination user, when present.
    source: Option<usize>,
    sink: Option<usize>,
    /// GHZ fusion success probability.
    q: f64,
    // ---- per-round state, reset and refilled each call ----
    registry: EntanglementRegistry,
    /// Qubits pinned at each flow node this round.
    held: Vec<Vec<QubitId>>,
    /// Indices of links whose heralding succeeded this round. Only
    /// maintained in debug builds, where it feeds the percolation
    /// cross-check.
    live: Vec<(usize, usize)>,
    /// Per flow node: fusion verdict (users are always up).
    switch_up: Vec<bool>,
    /// Scratch for the per-switch list of still-entangled qubits.
    measured: Vec<QubitId>,
}

impl RoundSimulator {
    /// Resolves `plan.flow` against `net` once.
    #[must_use]
    pub fn new(net: &QuantumNetwork, plan: &DemandPlan) -> Self {
        let flow = &plan.flow;
        let nodes = flow.nodes();
        let index: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let switch_mask: Vec<bool> = nodes.iter().map(|&n| net.is_switch(n)).collect();
        let mut links = Vec::new();
        for (u, v, width) in flow.edges() {
            let Some((_, p)) = net.hop(u, v) else {
                continue;
            };
            for _ in 0..width {
                links.push((index[&u], index[&v], p));
            }
        }
        RoundSimulator {
            registry: EntanglementRegistry::with_capacity(2 * links.len()),
            held: vec![Vec::new(); switch_mask.len()],
            live: Vec::with_capacity(links.len()),
            switch_up: vec![false; switch_mask.len()],
            measured: Vec::new(),
            links,
            source: index.get(&flow.source()).copied(),
            sink: index.get(&flow.sink()).copied(),
            q: net.swap_success(),
            switch_mask,
        }
    }

    /// Refills `self.measured` with the still-entangled qubits held at
    /// node index `ni`.
    fn collect_entangled(&mut self, ni: usize) {
        self.measured.clear();
        for &q in &self.held[ni] {
            if self.registry.group_of(q).is_some() {
                self.measured.push(q);
            }
        }
    }

    /// Simulates one full protocol round, reusing the internal buffers.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the registry verdict disagrees with
    /// percolation connectivity over the same sampled outcomes.
    pub fn simulate(&mut self, rng: &mut impl Rng) -> RoundOutcome {
        let n = self.switch_mask.len();
        if n == 0 {
            return RoundOutcome::dead();
        }
        self.registry.reset();
        for held in &mut self.held {
            held.clear();
        }
        // `live` only feeds the debug-build percolation cross-check;
        // don't pay for it in release Monte Carlo loops.
        #[cfg(debug_assertions)]
        self.live.clear();

        // Phase III.1: heralded link-level entanglement on every parallel
        // link, in flow edge order.
        let mut links_generated = 0usize;
        for li in 0..self.links.len() {
            let (ui, vi, p) = self.links[li];
            if rng.gen_bool(p) {
                let qu = self.registry.alloc();
                let qv = self.registry.alloc();
                self.registry.create_pair(qu, qv).expect("fresh qubits");
                self.held[ui].push(qu);
                self.held[vi].push(qv);
                #[cfg(debug_assertions)]
                self.live.push((ui, vi));
                links_generated += 1;
            }
        }

        // Phase III.2: simultaneous fusions at every participating switch.
        // Verdicts are drawn in flow-node order (one draw per switch).
        let mut fusions_attempted = 0usize;
        let mut fusions_succeeded = 0usize;
        for ni in 0..n {
            self.switch_up[ni] = !self.switch_mask[ni] || rng.gen_bool(self.q);
        }
        // Failed fusions resolve first: at measurement time every qubit is
        // still in its own Bell pair, so the damage is local to those pairs.
        // A pair between two failed switches dies at whichever fusion is
        // processed first (flow-node order); the second switch then simply
        // holds dead qubits.
        for ni in 0..n {
            if !self.switch_mask[ni] || self.switch_up[ni] {
                continue;
            }
            self.collect_entangled(ni);
            if self.measured.is_empty() {
                continue;
            }
            fusions_attempted += usize::from(self.measured.len() >= 2);
            self.registry
                .fail_fuse(&self.measured)
                .expect("filtered to entangled qubits");
        }
        // Successful fusions merge whatever survived.
        for ni in 0..n {
            if !self.switch_mask[ni] || !self.switch_up[ni] {
                continue;
            }
            self.collect_entangled(ni);
            match self.measured.len() {
                0 => {}
                1 => {
                    // Dangling link end: Pauli-measure it out (1-fusion).
                    self.registry
                        .measure_out(self.measured[0])
                        .expect("entangled");
                }
                _ => {
                    fusions_attempted += 1;
                    self.registry.fuse(&self.measured).expect("entangled");
                    fusions_succeeded += 1;
                }
            }
        }

        // Phase III.3: do the users share a group?
        let mut witness: Option<(QubitId, QubitId)> = None;
        if let (Some(s), Some(d)) = (self.source, self.sink) {
            'outer: for &sq in &self.held[s] {
                for &dq in &self.held[d] {
                    if self.registry.are_entangled(sq, dq) {
                        witness = Some((sq, dq));
                        break 'outer;
                    }
                }
            }
        }
        let established = witness.is_some();

        // Cross-check against percolation connectivity on the same
        // outcomes (debug builds only — it allocates).
        debug_assert_eq!(
            established,
            self.connectivity_verdict(),
            "registry and percolation semantics diverged"
        );

        // Trim the shared group down to a Bell pair for teleportation.
        if let Some((sq, dq)) = witness {
            let group = self.registry.group_of(sq).expect("witnessed group");
            let members = self.registry.group_members(group).expect("live group");
            for member in members {
                if member != sq && member != dq {
                    self.registry
                        .measure_out(member)
                        .expect("member of live group");
                }
            }
            debug_assert!(self.registry.are_entangled(sq, dq));
            debug_assert_eq!(
                self.registry
                    .group_of(sq)
                    .and_then(|g| self.registry.group_size(g)),
                Some(2),
                "trimming must leave exactly a Bell pair"
            );
        }

        RoundOutcome {
            established,
            links_generated,
            fusions_attempted,
            fusions_succeeded,
        }
    }

    /// Recomputes the round verdict by percolation over the sampled
    /// outcomes (`self.live`, `self.switch_up`).
    fn connectivity_verdict(&self) -> bool {
        let mut sets = DisjointSets::new(self.switch_mask.len());
        for &(ui, vi) in &self.live {
            if self.switch_up[ui] && self.switch_up[vi] {
                sets.union(ui, vi);
            }
        }
        match (self.source, self.sink) {
            (Some(s), Some(d)) => sets.same_set(s, d),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::{metrics, Demand, DemandId, WidthedPath};
    use fusion_graph::Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branching_plan(p: f64, q: f64) -> (QuantumNetwork, DemandPlan) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 1.0, 100);
        let v2 = b.switch(1.0, -1.0, 100);
        let d = b.user(2.0, 0.0);
        for (u, v) in [(s, v1), (v1, d), (s, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        for (path, w) in [
            (Path::new(vec![s, v1, d]), 2),
            (Path::new(vec![s, v2, d]), 1),
        ] {
            plan.flow.add_path(&path, w);
            plan.paths.push(WidthedPath::uniform(path, w));
        }
        (net, plan)
    }

    #[test]
    fn registry_rate_matches_eq1() {
        let (net, plan) = branching_plan(0.5, 0.8);
        let mut rng = StdRng::seed_from_u64(99);
        let mut sim = RoundSimulator::new(&net, &plan);
        let rounds = 20_000;
        let mut hits = 0;
        for _ in 0..rounds {
            if sim.simulate(&mut rng).established {
                hits += 1;
            }
        }
        let measured = hits as f64 / rounds as f64;
        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        assert!(
            (measured - analytic).abs() < 0.015,
            "protocol {measured} vs Eq.1 {analytic}"
        );
    }

    #[test]
    fn reused_simulator_matches_fresh_allocation_path() {
        // The reset-and-refill simulator must reproduce the
        // fresh-allocation path (`simulate_round` rebuilds everything per
        // call) outcome-for-outcome: same seed, same draws, same counters.
        for (p, q, seed) in [(0.5, 0.8, 7u64), (0.2, 0.5, 11), (0.9, 0.95, 13)] {
            let (net, plan) = branching_plan(p, q);
            let mut reused = RoundSimulator::new(&net, &plan);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            for round in 0..2_000 {
                let a = reused.simulate(&mut rng_a);
                let b = simulate_round(&net, &plan, &mut rng_b);
                assert_eq!(a, b, "round {round}: reuse diverged from fresh");
            }
        }
    }

    #[test]
    fn outcome_counters_are_consistent() {
        let (net, plan) = branching_plan(0.9, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = RoundSimulator::new(&net, &plan);
        for _ in 0..200 {
            let out = sim.simulate(&mut rng);
            assert!(out.fusions_succeeded <= out.fusions_attempted);
            // 3 channel-links exist in total (width 2 + width 1) per side.
            assert!(out.links_generated <= 6);
            if out.established {
                assert!(out.links_generated >= 2, "a route needs both hops");
            }
        }
    }

    #[test]
    fn perfect_round_always_establishes() {
        let (net, plan) = branching_plan(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let out = simulate_round(&net, &plan, &mut rng);
            assert!(out.established);
            assert_eq!(out.fusions_attempted, out.fusions_succeeded);
        }
    }

    #[test]
    fn dead_network_never_establishes() {
        let (mut net, plan) = branching_plan(0.5, 0.5);
        net.set_uniform_link_success(Some(1e-9));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!simulate_round(&net, &plan, &mut rng).established);
        }
    }

    #[test]
    fn empty_plan_short_circuits() {
        let (net, plan) = branching_plan(0.5, 0.5);
        let empty = DemandPlan::empty(plan.demand);
        let mut rng = StdRng::seed_from_u64(4);
        let out = simulate_round(&net, &empty, &mut rng);
        assert!(!out.established);
        assert_eq!(out.links_generated, 0);
    }
}
