//! Algorithm 3 — Paths Merge: turn the candidate set into concrete routes
//! under the qubit-capacity constraint.
//!
//! Candidates are consumed width-major (widest first), sorted by metric
//! within a width. A candidate is accepted when every hop either fits into
//! the remaining qubits at both endpoints or — under n-fusion — is already
//! assigned to the *same* demand by an earlier accepted path, in which case
//! the hop's qubits are shared and the paths merge into a flow-like graph.
//!
//! One correction to the paper's pseudocode: feasibility is checked with
//! per-node *totals* over the path's unshared hops (an intermediate node
//! needs `w` qubits for each of its two hops), not hop-by-hop; the
//! hop-by-hop check would overcommit switches with `w ≤ remaining < 2w`.

use std::collections::{BTreeMap, HashMap, HashSet};

use fusion_graph::NodeId;

use crate::algorithms::alg1::PathConstraints;
use crate::algorithms::alg2::CandidatePath;
use crate::demand::{Demand, DemandId};
use crate::flow::WidthedPath;
use crate::network::QuantumNetwork;
use crate::plan::{DemandPlan, SwapMode};

/// Adds an accepted route to the demand's flow graph. With sharing, hops
/// already present keep their qubits (the paths merge); without sharing
/// every acceptance paid for fresh links, so widths on repeated hops stack
/// as parallel channels.
pub(crate) fn record_route(
    flow: &mut crate::flow::FlowGraph,
    path: &fusion_graph::Path,
    width: u32,
    share_edges: bool,
) {
    if share_edges {
        flow.add_path(path, width);
    } else {
        for (u, v) in path.hops_iter() {
            flow.add_parallel(u, v, width);
        }
    }
}

/// Output of the merge: per-demand plans plus the remaining qubit budget.
/// Equality is exact (widths, flows, and remaining qubits are all
/// integral), which is what the queue-vs-reference differential tests
/// compare.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// One plan per input demand, in input order.
    pub plans: Vec<DemandPlan>,
    /// Remaining qubits per node after all assignments.
    pub remaining: Vec<u32>,
}

/// Runs Algorithm 3 over the candidate set.
///
/// With `share_edges` set (n-fusion), paths of the same demand may share
/// hops, merging into flow-like graphs; without it every path pays for its
/// own qubits — mandatory under [`SwapMode::Classic`], where BSM switches
/// cannot fuse more than two links per state, and available as an ablation
/// under n-fusion.
#[must_use]
pub fn paths_merge(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
) -> MergeOutcome {
    paths_merge_bounded(net, demands, candidates, mode, share_edges, None)
}

/// [`paths_merge`] with an optional cap on accepted routes per demand
/// (classic swapping routes one major path per request, following Q-CAST).
#[must_use]
pub fn paths_merge_bounded(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
) -> MergeOutcome {
    paths_merge_bounded_with_capacity(
        net,
        demands,
        candidates,
        mode,
        share_edges,
        max_paths_per_demand,
        &net.capacities(),
    )
}

/// [`paths_merge_bounded`] against an explicit starting qubit budget
/// instead of the network's built-in capacities — the service layer merges
/// new arrivals against the residual capacity left by live plans.
///
/// # Panics
///
/// Panics if `capacity` is shorter than the node count.
#[must_use]
pub fn paths_merge_bounded_with_capacity(
    net: &QuantumNetwork,
    demands: &[Demand],
    candidates: &[CandidatePath],
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
    capacity: &[u32],
) -> MergeOutcome {
    assert!(
        capacity.len() >= net.node_count(),
        "capacity vector too short"
    );
    let share_edges = share_edges && mode == SwapMode::NFusion;
    let mut remaining = capacity[..net.node_count()].to_vec();
    let mut plans: Vec<DemandPlan> = demands.iter().map(|&d| DemandPlan::empty(d)).collect();
    let index_of: HashMap<DemandId, usize> =
        demands.iter().enumerate().map(|(i, d)| (d.id, i)).collect();

    // Hops already assigned per demand (n-fusion sharing), with widths.
    let mut assigned: HashSet<(DemandId, (NodeId, NodeId))> = HashSet::new();

    // Group by width, widest first.
    let mut by_width: BTreeMap<u32, Vec<&CandidatePath>> = BTreeMap::new();
    for c in candidates {
        by_width.entry(c.width).or_default().push(c);
    }

    for (&width, batch) in by_width.iter_mut().rev() {
        // Sort by decreasing metric; deterministic tie-break.
        batch.sort_by(|a, b| {
            b.metric
                .cmp(&a.metric)
                .then_with(|| a.demand.cmp(&b.demand))
                .then_with(|| a.path.nodes().cmp(b.path.nodes()))
        });
        // Fair rotation (second pseudocode correction): each pass accepts
        // at most one path per demand, and passes repeat until nothing
        // fits. A single metric-ordered sweep would let one demand's h
        // candidates all outrank another demand's first, hoarding qubits
        // on extra branches whose Eq.-1 gain has already saturated.
        let mut taken = vec![false; batch.len()];
        loop {
            let mut accepted_this_pass: HashSet<DemandId> = HashSet::new();
            let mut progress = false;
            for (ci, cand) in batch.iter().enumerate() {
                if taken[ci] || accepted_this_pass.contains(&cand.demand) {
                    continue;
                }
                let Some(&plan_idx) = index_of.get(&cand.demand) else {
                    taken[ci] = true;
                    continue;
                };
                if let Some(limit) = max_paths_per_demand {
                    if plans[plan_idx].paths.len() >= limit {
                        taken[ci] = true;
                        continue;
                    }
                }

                // Per-node qubit totals over this path's unshared hops.
                let mut need: BTreeMap<NodeId, u32> = BTreeMap::new();
                let mut new_hops = 0usize;
                for (u, v) in cand.path.hops_iter() {
                    let key = (cand.demand, PathConstraints::hop_key(u, v));
                    let shared = share_edges && assigned.contains(&key);
                    if !shared {
                        *need.entry(u).or_insert(0) += width;
                        *need.entry(v).or_insert(0) += width;
                        new_hops += 1;
                    }
                }
                if new_hops == 0 {
                    // Fully contained in earlier routes: contributes nothing.
                    taken[ci] = true;
                    continue;
                }
                let feasible = need
                    .iter()
                    .all(|(&node, &amount)| remaining[node.index()] >= amount);
                if !feasible {
                    continue;
                }

                // Accept: deduct qubits and record the route.
                for (&node, &amount) in &need {
                    remaining[node.index()] -= amount;
                }
                for (u, v) in cand.path.hops_iter() {
                    assigned.insert((cand.demand, PathConstraints::hop_key(u, v)));
                }
                let plan = &mut plans[plan_idx];
                record_route(&mut plan.flow, &cand.path, width, share_edges);
                plan.paths
                    .push(WidthedPath::uniform(cand.path.clone(), width));
                taken[ci] = true;
                accepted_this_pass.insert(cand.demand);
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }
    MergeOutcome { plans, remaining }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::alg2::paths_selection;
    use crate::demand::DemandId;
    use fusion_graph::{Metric, Path};

    /// S and D joined by two disjoint 2-hop routes, plus a second demand
    /// sharing the same switches.
    fn contended_net() -> (QuantumNetwork, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let s1 = b.user(0.0, 1.0);
        let d1 = b.user(4.0, 1.0);
        let s2 = b.user(0.0, -1.0);
        let d2 = b.user(4.0, -1.0);
        let va = b.switch(1.0, 0.0, 4);
        let vb = b.switch(3.0, 0.0, 4);
        for (u, v) in [(s1, va), (s2, va), (va, vb), (vb, d1), (vb, d2)] {
            b.link_with_length(u, v, 1_000.0).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.9);
        (net, vec![s1, d1, s2, d2, va, vb])
    }

    fn cand(demand: usize, nodes: Vec<NodeId>, width: u32, metric: f64) -> CandidatePath {
        CandidatePath {
            demand: DemandId::new(demand),
            path: Path::new(nodes),
            width,
            metric: Metric::new(metric),
        }
    }

    #[test]
    fn capacity_is_conserved() {
        let (net, n) = contended_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[1]),
            Demand::new(DemandId::new(1), n[2], n[3]),
        ];
        let caps = net.capacities();
        let candidates = paths_selection(&net, &demands, &caps, 3, 2, SwapMode::NFusion);
        let outcome = paths_merge(&net, &demands, &candidates, SwapMode::NFusion, true);
        // Every switch's spend must equal capacity - remaining.
        for node in net.graph().node_ids().filter(|&v| net.is_switch(v)) {
            let spent: u32 = outcome.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            assert_eq!(
                spent + outcome.remaining[node.index()],
                net.capacity(node),
                "capacity violated at {node}"
            );
        }
    }

    #[test]
    fn sharing_merges_same_demand_paths() {
        // Two candidate paths for one demand sharing the middle hop: the
        // second must be accepted by sharing, not fresh qubits.
        let (net, n) = contended_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[1])];
        // Only route between s1,d1 runs via va-vb; construct two synthetic
        // candidates whose middle hop coincides.
        let c1 = cand(0, vec![n[0], n[4], n[5], n[1]], 2, 0.9);
        let c2 = cand(0, vec![n[0], n[4], n[5], n[1]], 1, 0.5);
        let outcome = paths_merge(&net, &demands, &[c1, c2], SwapMode::NFusion, true);
        // The width-1 copy is fully shared: only one path accepted.
        assert_eq!(outcome.plans[0].paths.len(), 1);
        assert_eq!(outcome.plans[0].flow.undirected_width(n[4], n[5]), Some(2));
        // va spent 2 (toward s1) + 2 (toward vb) = 4 qubits.
        assert_eq!(outcome.remaining[n[4].index()], 0);
    }

    #[test]
    fn classic_mode_never_shares() {
        let (net, n) = contended_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[1])];
        let c1 = cand(0, vec![n[0], n[4], n[5], n[1]], 1, 0.9);
        let c2 = cand(0, vec![n[0], n[4], n[5], n[1]], 1, 0.5);
        let outcome = paths_merge(&net, &demands, &[c1, c2], SwapMode::Classic, true);
        // Capacity 4 per switch: each width-1 path pins 2 qubits per
        // intermediate switch, so both fit — but with fresh qubits.
        assert_eq!(outcome.plans[0].paths.len(), 2);
        assert_eq!(outcome.remaining[n[4].index()], 0);
        assert_eq!(outcome.remaining[n[5].index()], 0);
    }

    #[test]
    fn per_node_totals_block_overcommit() {
        // A width-2 path through a capacity-4 switch needs all 4 qubits at
        // that switch; a second width-2 path through it must be rejected
        // even though each *hop* individually fits.
        let (net, n) = contended_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[1]),
            Demand::new(DemandId::new(1), n[2], n[3]),
        ];
        let c1 = cand(0, vec![n[0], n[4], n[5], n[1]], 2, 0.9);
        let c2 = cand(1, vec![n[2], n[4], n[5], n[3]], 2, 0.8);
        let outcome = paths_merge(&net, &demands, &[c1, c2], SwapMode::NFusion, true);
        assert_eq!(outcome.plans[0].paths.len(), 1, "first candidate fits");
        assert!(outcome.plans[1].paths.is_empty(), "switches are exhausted");
    }

    #[test]
    fn higher_metric_wins_within_width() {
        let (net, n) = contended_net();
        let demands = [
            Demand::new(DemandId::new(0), n[0], n[1]),
            Demand::new(DemandId::new(1), n[2], n[3]),
        ];
        let weak = cand(0, vec![n[0], n[4], n[5], n[1]], 2, 0.2);
        let strong = cand(1, vec![n[2], n[4], n[5], n[3]], 2, 0.7);
        let outcome = paths_merge(&net, &demands, &[weak, strong], SwapMode::NFusion, true);
        assert!(outcome.plans[0].paths.is_empty());
        assert_eq!(outcome.plans[1].paths.len(), 1);
    }

    #[test]
    fn wider_candidates_processed_first() {
        let (net, n) = contended_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[1])];
        // Width 1 has a better metric, but width 2 must still be placed
        // first (width-major order).
        let w1 = cand(0, vec![n[0], n[4], n[5], n[1]], 1, 0.99);
        let w2 = cand(0, vec![n[0], n[4], n[5], n[1]], 2, 0.5);
        let outcome = paths_merge(&net, &demands, &[w1, w2], SwapMode::NFusion, true);
        assert_eq!(outcome.plans[0].flow.undirected_width(n[4], n[5]), Some(2));
    }

    #[test]
    fn users_never_run_out() {
        let (net, n) = contended_net();
        let demands = [Demand::new(DemandId::new(0), n[0], n[1])];
        let c = cand(0, vec![n[0], n[4], n[5], n[1]], 2, 0.9);
        let outcome = paths_merge(&net, &demands, &[c], SwapMode::NFusion, true);
        assert!(outcome.remaining[n[0].index()] > 1_000_000);
    }
}
