//! Monte Carlo simulation of the three-phase entanglement process
//! (paper §III-B) over routed quantum networks.
//!
//! The routing layer (`fusion-core`) computes *analytic* entanglement
//! rates; this crate measures them empirically:
//!
//! * [`connectivity`] — fast per-round sampling: channels come up with
//!   `1-(1-p)^w`, switches fuse with `q`, a demand succeeds when its users
//!   are connected in the surviving subgraph (or, under classic swapping,
//!   when some pre-committed lane survives).
//! * [`protocol`] — a full protocol-level simulator that drives the
//!   [`fusion_quantum::EntanglementRegistry`] through link generation,
//!   fusion failures, GHZ fusions, and final teleportation-readiness
//!   checks, verifying the connectivity shortcut round by round.
//! * [`exact`] — exact reliability by enumeration for small flow graphs,
//!   used to validate both Equation 1 and the samplers.
//! * [`evaluate`] — plan-level rate estimation with optional parallelism.
//! * [`failure`] — failure injection (switch outages, link decay).
//! * [`multiparty`] — sampling for the k-party GHZ extension.
//! * [`timeline`] — time-slotted operation with arrivals, re-planning,
//!   and latency metrics.
//! * [`stats`] — mean / standard-error / confidence-interval helpers.
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod evaluate;
pub mod exact;
pub mod failure;
pub mod multiparty;
pub mod protocol;
pub mod stats;
pub mod timeline;

pub use connectivity::{ClassicSampler, FlowSampler, PlanSampler};
pub use evaluate::{
    estimate_demand_plan, estimate_demand_plan_counted, estimate_plan, estimate_plan_counted,
    estimate_plan_parallel, estimate_plan_parallel_counted, McCounters, PlanEstimate,
};
pub use protocol::{RoundOutcome, RoundSimulator};
pub use stats::RateEstimate;
