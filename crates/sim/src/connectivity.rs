//! Fast per-round outcome sampling for routed demands.
//!
//! Under n-fusion a demanded state is established exactly when its source
//! and destination users are connected in the random subgraph where each
//! routed channel is up (`1-(1-p)^w`) and each participating switch's GHZ
//! fusion succeeded (`q`) — a failed fusion loses every link the switch
//! held for the state (§III-C). Under classic swapping each accepted path
//! is a bundle of pre-committed lanes; the state is established when some
//! lane survives every hop and every intermediate BSM.

use std::collections::HashMap;

use fusion_core::{DemandPlan, QuantumNetwork, SwapMode};
use fusion_graph::{GenerationalDisjointSets, NodeId};
use rand::Rng;

/// Samples one protocol round for a demand routed under `mode`.
/// Returns `true` when the demanded state is established.
///
/// Convenience wrapper that rebuilds the sampling state per call; tight
/// loops should build a [`PlanSampler`] once and call
/// [`PlanSampler::sample`] per round.
pub fn sample_round(
    net: &QuantumNetwork,
    plan: &DemandPlan,
    mode: SwapMode,
    rng: &mut impl Rng,
) -> bool {
    PlanSampler::new(net, plan, mode).sample(rng)
}

/// One n-fusion round: percolation over the flow-like graph. Rebuilds the
/// sampling state per call — see [`FlowSampler`] for the loop-friendly
/// form.
pub fn sample_flow_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> bool {
    FlowSampler::new(net, plan).sample(rng)
}

/// One classic-swapping round. Rebuilds the sampling state per call — see
/// [`ClassicSampler`] for the loop-friendly form.
pub fn sample_classic_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl Rng) -> bool {
    ClassicSampler::new(net, plan).sample(rng)
}

/// Reusable per-demand round sampler for either swapping technology.
///
/// Construction resolves every graph lookup (node indexing, hop → edge,
/// channel success probabilities) once; [`sample`](PlanSampler::sample)
/// then runs allocation-free, so a Monte Carlo loop costs only the RNG
/// draws and a generationally-reset union-find. The sampler snapshots the
/// network's success probabilities at construction time.
///
/// The RNG draw sequence is identical to the historical per-round
/// implementation, so estimates for a fixed seed are unchanged.
#[derive(Debug, Clone)]
pub enum PlanSampler {
    /// n-fusion percolation sampling.
    Flow(FlowSampler),
    /// Classic pre-committed-lane sampling.
    Classic(ClassicSampler),
}

impl PlanSampler {
    /// Builds the sampler matching `mode`.
    #[must_use]
    pub fn new(net: &QuantumNetwork, plan: &DemandPlan, mode: SwapMode) -> Self {
        match mode {
            SwapMode::NFusion => PlanSampler::Flow(FlowSampler::new(net, plan)),
            SwapMode::Classic => PlanSampler::Classic(ClassicSampler::new(net, plan)),
        }
    }

    /// Samples one round; `true` when the demanded state is established.
    pub fn sample(&mut self, rng: &mut impl Rng) -> bool {
        match self {
            PlanSampler::Flow(s) => s.sample(rng),
            PlanSampler::Classic(s) => s.sample(rng),
        }
    }

    /// Fusion draws one round performs: one per participating switch
    /// under n-fusion, zero under classic swapping (BSMs there are
    /// conditional on lane survival, not unconditional per-round draws).
    /// A pure function of the plan, so round-count telemetry derived from
    /// it stays deterministic.
    #[must_use]
    pub fn fusion_draws_per_round(&self) -> u64 {
        match self {
            PlanSampler::Flow(s) => s.fusion_draws_per_round(),
            PlanSampler::Classic(_) => 0,
        }
    }
}

/// Allocation-free n-fusion round sampler (percolation over the flow-like
/// graph, §III-C).
///
/// Per round: one fusion draw per participating switch, one channel draw
/// per flow edge whose endpoints are up, then a source–sink connectivity
/// query on a generationally-reset union-find.
#[derive(Debug, Clone)]
pub struct FlowSampler {
    /// `true` at indices whose flow node is a switch (draws a fusion).
    switch_mask: Vec<bool>,
    /// Resolved flow edges `(ui, vi, channel_success)`; edges without a
    /// backing network hop are dropped at build time (they never drew).
    edges: Vec<(usize, usize, f64)>,
    source: Option<usize>,
    sink: Option<usize>,
    q: f64,
    switch_up: Vec<bool>,
    sets: GenerationalDisjointSets,
}

impl FlowSampler {
    /// Resolves `plan.flow` against `net` once.
    #[must_use]
    pub fn new(net: &QuantumNetwork, plan: &DemandPlan) -> Self {
        let flow = &plan.flow;
        let nodes = flow.nodes();
        let index: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let switch_mask: Vec<bool> = nodes.iter().map(|&n| net.is_switch(n)).collect();
        let edges = flow
            .edges()
            .filter_map(|(u, v, w)| {
                let (edge, _) = net.hop(u, v)?;
                Some((index[&u], index[&v], net.channel_success(edge, w)))
            })
            .collect();
        FlowSampler {
            switch_up: vec![false; switch_mask.len()],
            sets: GenerationalDisjointSets::new(switch_mask.len()),
            switch_mask,
            edges,
            source: index.get(&flow.source()).copied(),
            sink: index.get(&flow.sink()).copied(),
            q: net.swap_success(),
        }
    }

    /// Fusion draws per round: one per switch in the flow.
    #[must_use]
    pub fn fusion_draws_per_round(&self) -> u64 {
        self.switch_mask.iter().filter(|&&s| s).count() as u64
    }

    /// Samples one percolation round.
    pub fn sample(&mut self, rng: &mut impl Rng) -> bool {
        let n = self.switch_mask.len();
        if n == 0 {
            return false;
        }
        // Sample switch fusions once per state per switch.
        for (up, &is_switch) in self.switch_up.iter_mut().zip(&self.switch_mask) {
            *up = !is_switch || rng.gen_bool(self.q);
        }
        self.sets.reset(n);
        for &(ui, vi, p) in &self.edges {
            if !self.switch_up[ui] || !self.switch_up[vi] {
                continue;
            }
            if rng.gen_bool(p) {
                self.sets.union(ui, vi);
            }
        }
        let (Some(s), Some(d)) = (self.source, self.sink) else {
            return false;
        };
        self.sets.same_set(s, d)
    }
}

/// Allocation-free classic-swapping round sampler: each accepted path is a
/// single pre-committed lane — one link per hop, one BSM per intermediate
/// switch (the paper's classic model, see `fusion_core::metrics::classic`).
#[derive(Debug, Clone)]
pub struct ClassicSampler {
    /// Per routed path with all hops resolvable: the per-hop link success
    /// probabilities.
    lanes: Vec<Vec<f64>>,
    q: f64,
}

impl ClassicSampler {
    /// Resolves `plan.paths` against `net` once. Paths with a missing hop
    /// are dropped (they can never carry the state and never drew).
    #[must_use]
    pub fn new(net: &QuantumNetwork, plan: &DemandPlan) -> Self {
        let lanes = plan
            .paths
            .iter()
            .filter_map(|wp| {
                wp.hops()
                    .map(|(u, v, _)| net.hop(u, v).map(|(_, p)| p))
                    .collect::<Option<Vec<f64>>>()
            })
            .collect();
        ClassicSampler {
            lanes,
            q: net.swap_success(),
        }
    }

    /// Samples one round: the first lane that survives every hop and every
    /// intermediate BSM establishes the state.
    pub fn sample(&mut self, rng: &mut impl Rng) -> bool {
        'lane: for lane in &self.lanes {
            // The lane's link on every hop must herald successfully.
            for &p in lane {
                if !rng.gen_bool(p) {
                    continue 'lane;
                }
            }
            // Every intermediate BSM must succeed.
            for _ in 0..lane.len().saturating_sub(1) {
                if !rng.gen_bool(self.q) {
                    continue 'lane;
                }
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::{metrics, Demand, DemandId, WidthedPath};
    use fusion_graph::Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_plan(p: f64, q: f64, width: u32) -> (QuantumNetwork, DemandPlan) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 100);
        let v2 = b.switch(2.0, 0.0, 100);
        let d = b.user(3.0, 0.0);
        b.link(s, v1).unwrap();
        b.link(v1, v2).unwrap();
        b.link(v2, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v1, v2, d]);
        plan.flow.add_path(&path, width);
        plan.paths.push(WidthedPath::uniform(path, width));
        (net, plan)
    }

    fn estimate(
        net: &QuantumNetwork,
        plan: &DemandPlan,
        mode: SwapMode,
        rounds: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        for _ in 0..rounds {
            if sample_round(net, plan, mode, &mut rng) {
                hits += 1;
            }
        }
        hits as f64 / rounds as f64
    }

    #[test]
    fn nfusion_sampling_matches_eq1_on_paths() {
        let (net, plan) = chain_plan(0.5, 0.8, 2);
        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        let measured = estimate(&net, &plan, SwapMode::NFusion, 40_000, 7);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn nfusion_sampling_matches_eq1_on_branching_flow() {
        // Two disjoint branches: series-parallel, Eq. 1 is exact.
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 1.0, 100);
        let v2 = b.switch(1.0, -1.0, 100);
        let d = b.user(2.0, 0.0);
        for (u, v) in [(s, v1), (v1, d), (s, v2), (v2, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.4));
        net.set_swap_success(0.7);
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        plan.flow.add_path(&Path::new(vec![s, v1, d]), 1);
        plan.flow.add_path(&Path::new(vec![s, v2, d]), 2);
        plan.paths
            .push(WidthedPath::uniform(Path::new(vec![s, v1, d]), 1));

        let analytic = metrics::flow_rate(&net, &plan.flow).value();
        let measured = estimate(&net, &plan, SwapMode::NFusion, 40_000, 11);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn classic_sampling_matches_single_lane_formula() {
        let (net, plan) = chain_plan(0.5, 0.8, 2);
        let analytic = plan.rate(&net, SwapMode::Classic);
        let measured = estimate(&net, &plan, SwapMode::Classic, 40_000, 13);
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    /// Verbatim copy of the pre-sampler `sample_flow_round`: rebuilds the
    /// index map and union-find from scratch every round. Kept as the
    /// reference the reusable sampler must match draw-for-draw.
    fn naive_flow_round(net: &QuantumNetwork, plan: &DemandPlan, rng: &mut impl rand::Rng) -> bool {
        use fusion_graph::DisjointSets;
        let flow = &plan.flow;
        if flow.is_empty() {
            return false;
        }
        let nodes = flow.nodes();
        let index: std::collections::HashMap<fusion_graph::NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let q = net.swap_success();
        let switch_up: Vec<bool> = nodes
            .iter()
            .map(|&n| !net.is_switch(n) || rng.gen_bool(q))
            .collect();
        let mut sets = DisjointSets::new(nodes.len());
        for (u, v, w) in flow.edges() {
            let Some((edge, _)) = net.hop(u, v) else {
                continue;
            };
            let (ui, vi) = (index[&u], index[&v]);
            if !switch_up[ui] || !switch_up[vi] {
                continue;
            }
            if rng.gen_bool(net.channel_success(edge, w)) {
                sets.union(ui, vi);
            }
        }
        let (Some(&s), Some(&d)) = (index.get(&flow.source()), index.get(&flow.sink())) else {
            return false;
        };
        sets.same_set(s, d)
    }

    #[test]
    fn reused_sampler_matches_from_scratch_rebuild() {
        // Across many rounds, one reused sampler (generational union-find
        // reset) must produce the exact outcome sequence of a sampler
        // rebuilt from scratch each round, and of the historical
        // implementation — same seed, draw-for-draw.
        for (p, q, seed) in [(0.5, 0.8, 7u64), (0.2, 0.5, 11), (0.9, 0.95, 13)] {
            let (net, plan) = chain_plan(p, q, 2);
            let mut reused = FlowSampler::new(&net, &plan);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut rng_c = StdRng::seed_from_u64(seed);
            for round in 0..500 {
                let a = reused.sample(&mut rng_a);
                let b = FlowSampler::new(&net, &plan).sample(&mut rng_b);
                let c = naive_flow_round(&net, &plan, &mut rng_c);
                assert_eq!(a, b, "round {round}: reuse diverged from rebuild");
                assert_eq!(a, c, "round {round}: sampler diverged from naive");
            }
        }
    }

    #[test]
    fn reused_sampler_matches_rebuild_under_edge_failures() {
        // Randomized link-decay rounds: degrade the network, rebuild a
        // fresh sampler on the degraded instance, and check the reused
        // sampler built on the same degraded instance agrees.
        use crate::failure::FailureModel;
        let (net, plan) = chain_plan(0.7, 0.9, 2);
        for round in 0..20u64 {
            let model = FailureModel {
                switch_outage: 0.0,
                link_decay: 0.05 * (round % 10) as f64,
            };
            let degraded = model.degrade(&net);
            let mut reused = FlowSampler::new(&degraded, &plan);
            let mut rng_a = StdRng::seed_from_u64(round);
            let mut rng_b = StdRng::seed_from_u64(round);
            for _ in 0..200 {
                let a = reused.sample(&mut rng_a);
                let b = FlowSampler::new(&degraded, &plan).sample(&mut rng_b);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn classic_sampler_reuse_matches_rebuild() {
        let (net, plan) = chain_plan(0.6, 0.8, 2);
        let mut reused = ClassicSampler::new(&net, &plan);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        for _ in 0..500 {
            assert_eq!(
                reused.sample(&mut rng_a),
                ClassicSampler::new(&net, &plan).sample(&mut rng_b)
            );
        }
    }

    #[test]
    fn empty_plans_never_succeed() {
        let (net, mut plan) = chain_plan(0.9, 0.9, 1);
        plan.paths.clear();
        plan.flow = fusion_core::FlowGraph::new(plan.demand.source, plan.demand.dest);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!sample_round(&net, &plan, SwapMode::NFusion, &mut rng));
        assert!(!sample_round(&net, &plan, SwapMode::Classic, &mut rng));
    }

    #[test]
    fn perfect_network_always_succeeds() {
        let (net, plan) = {
            let (mut net, plan) = chain_plan(1.0, 1.0, 1);
            net.set_uniform_link_success(Some(1.0));
            (net, plan)
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(sample_round(&net, &plan, SwapMode::NFusion, &mut rng));
            assert!(sample_round(&net, &plan, SwapMode::Classic, &mut rng));
        }
    }
}
