//! The paper's entanglement-routing algorithms (§IV-C).
//!
//! * [`alg1`] — Largest Entanglement Rate path at a fixed width.
//! * [`alg2`] — Paths Selection (Yen's structure over Algorithm 1).
//! * [`alg3`] — Paths Merge (capacity-aware, builds flow-like graphs),
//!   in the paper's literal width-major order.
//! * [`alg3_greedy`] — Paths Merge in gain-per-qubit order via an
//!   incremental gain queue (the default; see that module for the queue
//!   design and for why the literal order underperforms).
//! * [`alg4`] — Remaining Qubits Assignment (channel widening).
//! * [`pipeline`] — the composed `ALG-N-FUSION` routing algorithm.

pub mod alg1;
pub mod alg2;
pub mod alg3;
pub mod alg3_greedy;
pub mod alg4;
pub mod pipeline;

pub use alg1::{largest_rate_path, largest_rate_path_with, PathConstraints};
pub use alg2::{
    node_width_thresholds, paths_selection, paths_selection_counted, paths_selection_parallel,
    paths_selection_parallel_counted, paths_selection_reference, CandidatePath, RepairSeed,
    SelectedWidth, SelectionCounters, SelectionEngine, SelectionQuery, SptCounters, WidthReuse,
};
pub use alg3::{paths_merge, MergeOutcome};
pub use alg3_greedy::{
    paths_merge_greedy, paths_merge_greedy_counted, paths_merge_greedy_reference,
    paths_merge_greedy_with_capacity, MergeCounters,
};
pub use alg4::assign_remaining;
pub use pipeline::{
    alg_n_fusion, route, route_from_candidates_counted, route_from_candidates_traced,
    route_parallel, route_with_capacity, route_with_capacity_counted, route_with_capacity_traced,
    AdmitStrategy, MergeOrder, PathSelection, RouteTrace, RoutingConfig,
};
