//! Width-indexed feasibility and incrementally-maintained reachability
//! for width-descent searches.
//!
//! The paper's Algorithm 2 evaluates candidate paths for every channel
//! width from `MAX_WIDTH` down to 1. Capacity feasibility is *monotone*
//! in the width: a node that can relay (or terminate) a width-`w+1`
//! channel can always relay (terminate) a width-`w` one, because both
//! thresholds are plain `capacity >= k·width` comparisons. Stepping the
//! width down therefore only ever *grows* the feasible subgraph, and
//! reachability under it can be repaired incrementally — only the region
//! activated by the newly-feasible nodes is re-searched — instead of
//! recomputed from scratch per width.
//!
//! [`WidthFeasibility`] is the width-indexed view: per node, the largest
//! width at which it may relay and the largest width at which it may act
//! as a path endpoint. [`DescentReach`] maintains, for one fixed target
//! and a descending width, the set of nodes from which the target is
//! reachable through relay-feasible intermediates. Membership is exact,
//! so a *negative* answer is a certificate that any search toward the
//! target from that node fails — even under additional constraints
//! (banned nodes or hops only shrink the graph) — which is what lets
//! Algorithm 2 skip provably-empty searches without changing results.

use crate::graph::{NodeId, UnGraph};
use crate::stamps::{RecordedSet, StampedSet};

/// Per-node width thresholds: the largest channel width each node can
/// relay, and the largest it can terminate as a path endpoint.
///
/// The intended mapping for the paper's networks: a switch of capacity
/// `c` relays width `w` channels while `c >= 2w` (it pins `w` qubits on
/// each side of the fused pair), so its relay width is `c / 2`; its
/// endpoint width is `c`. Users never relay (relay width 0) but
/// terminate up to their capacity. The view itself is agnostic — it just
/// stores thresholds — so updated capacities are applied with
/// [`set_node`](WidthFeasibility::set_node).
///
/// # Examples
///
/// ```
/// use fusion_graph::{NodeId, WidthFeasibility};
///
/// let mut feas = WidthFeasibility::new(2);
/// feas.set_node(NodeId::new(0), 5, 10); // switch, capacity 10
/// feas.set_node(NodeId::new(1), 0, 8); // user, capacity 8
/// assert!(feas.relay_feasible(NodeId::new(0), 5));
/// assert!(!feas.relay_feasible(NodeId::new(0), 6));
/// // Monotone: feasible at w + 1 implies feasible at w.
/// assert!(feas.relay_feasible(NodeId::new(0), 4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WidthFeasibility {
    relay: Vec<u32>,
    endpoint: Vec<u32>,
}

impl WidthFeasibility {
    /// Creates a view over `n` nodes with all thresholds zero (nothing
    /// relays, nothing terminates).
    #[must_use]
    pub fn new(n: usize) -> Self {
        WidthFeasibility {
            relay: vec![0; n],
            endpoint: vec![0; n],
        }
    }

    /// Number of nodes covered by the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relay.len()
    }

    /// `true` if the view covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relay.is_empty()
    }

    /// Sets `node`'s thresholds — the capacity-update entry point.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn set_node(&mut self, node: NodeId, relay_width: u32, endpoint_width: u32) {
        self.relay[node.index()] = relay_width;
        self.endpoint[node.index()] = endpoint_width;
    }

    /// Largest width `node` can relay.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn relay_width(&self, node: NodeId) -> u32 {
        self.relay[node.index()]
    }

    /// `true` if `node` can relay a width-`width` channel. Monotone:
    /// feasibility at `width + 1` implies feasibility at `width`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn relay_feasible(&self, node: NodeId, width: u32) -> bool {
        self.relay[node.index()] >= width
    }

    /// `true` if `node` can terminate a width-`width` channel. Monotone
    /// like [`relay_feasible`](WidthFeasibility::relay_feasible).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn endpoint_feasible(&self, node: NodeId, width: u32) -> bool {
        self.endpoint[node.index()] >= width
    }
}

/// Reachability toward one target under a descending width, repaired
/// incrementally at each descent step.
///
/// After [`begin`](DescentReach::begin) at the starting width,
/// [`can_reach`](DescentReach::can_reach) answers "does a path from this
/// node to the target exist whose intermediate nodes are all
/// relay-feasible at the current width?" — exactly. Each
/// [`descend`](DescentReach::descend) step activates only the nodes
/// whose relay threshold crosses the new width and re-searches only the
/// region they open up; everything else is carried over, which is the
/// monotone-growth property the width descent of Algorithm 2 exploits.
///
/// The structure is reusable: `begin` resets it for a new target in O(1)
/// (generational sets) plus one bucket fill, so a per-worker instance
/// serves many demands without reallocating.
///
/// # Examples
///
/// ```
/// use fusion_graph::{DescentReach, NodeId, UnGraph, WidthFeasibility};
///
/// // chain: a - r - t, where r relays only width 1.
/// let mut g: UnGraph<(), ()> = UnGraph::new();
/// let a = g.add_node(());
/// let r = g.add_node(());
/// let t = g.add_node(());
/// g.add_edge(a, r, ());
/// g.add_edge(r, t, ());
/// let mut feas = WidthFeasibility::new(3);
/// feas.set_node(a, 0, 2);
/// feas.set_node(r, 1, 2);
/// feas.set_node(t, 0, 2);
///
/// let mut reach = DescentReach::default();
/// reach.begin(&g, &feas, t, 2);
/// assert!(!reach.can_reach(a), "r cannot relay width 2");
/// reach.descend(&g, &feas, 1);
/// assert!(reach.can_reach(a), "width 1 activates r");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DescentReach {
    reached: RecordedSet,
    expanded: StampedSet,
    /// Nodes grouped by relay width (clamped to the starting width);
    /// bucket `w` is drained when the descent reaches width `w`.
    buckets: Vec<Vec<NodeId>>,
    queue: Vec<NodeId>,
    width: u32,
}

impl DescentReach {
    /// Creates an empty, reusable instance.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current width of the descent.
    ///
    /// # Panics
    ///
    /// Panics if called before [`begin`](DescentReach::begin).
    #[must_use]
    pub fn width(&self) -> u32 {
        assert!(self.width > 0, "DescentReach::begin has not run");
        self.width
    }

    /// Resets the structure for `target` and computes reachability at
    /// `width` (the descent's starting, i.e. largest, width).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `target` is out of bounds, or `feas`
    /// covers fewer nodes than `graph`.
    pub fn begin<N, E>(
        &mut self,
        graph: &UnGraph<N, E>,
        feas: &WidthFeasibility,
        target: NodeId,
        width: u32,
    ) {
        assert!(width > 0, "descent widths are positive");
        let n = graph.node_count();
        assert!(target.index() < n, "target out of bounds");
        assert!(feas.len() >= n, "feasibility view too short");
        self.reached.clear(n);
        self.expanded.clear(n);
        self.width = width;

        // Bucket nodes by the width at which they become relay-feasible.
        // Nodes already feasible at the starting width are handled by the
        // initial sweep; relay width 0 never activates.
        self.buckets.resize_with(width as usize + 1, Vec::new);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        for v in graph.node_ids() {
            let rw = feas.relay_width(v);
            if rw > 0 && rw < width {
                self.buckets[rw as usize].push(v);
            }
        }

        // The target expands unconditionally: it is the path endpoint, so
        // its own relay threshold does not gate paths that end there.
        self.reached.insert(target.index());
        self.expanded.insert(target.index());
        self.queue.push(target);
        self.grow(graph, feas);
    }

    /// Steps the descent down to `width` (exactly one below the current
    /// width) and repairs reachability: only nodes whose relay threshold
    /// activates at `width`, and the region they newly connect, are
    /// visited.
    ///
    /// # Panics
    ///
    /// Panics if `width + 1` is not the current width.
    pub fn descend<N, E>(&mut self, graph: &UnGraph<N, E>, feas: &WidthFeasibility, width: u32) {
        assert!(
            width > 0 && width + 1 == self.width,
            "descend one width at a time (current {}, requested {width})",
            self.width
        );
        self.width = width;
        // Activate the nodes crossing the threshold: those already
        // reached start expanding now; the rest stay dormant until some
        // expansion reaches them (grow() checks the *current* width).
        let bucket = std::mem::take(&mut self.buckets[width as usize]);
        for v in bucket {
            if self.reached.contains(v.index()) && self.expanded.insert(v.index()) {
                self.queue.push(v);
            }
        }
        self.grow(graph, feas);
    }

    /// `true` if a path from `node` to the target exists whose
    /// intermediates are all relay-feasible at the current width
    /// (`node` itself only needs to be an endpoint; endpoint capacity is
    /// not checked here). Exact — `false` certifies that no such path
    /// exists even before banned-node/hop constraints shrink the graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn can_reach(&self, node: NodeId) -> bool {
        self.reached.contains(node.index())
    }

    /// The nodes the current reachability answers depend on: everything
    /// reached from the target *plus* the probed-but-infeasible boundary
    /// (the `grow` sweep marks a neighbor reached before checking its
    /// relay feasibility, so the set is R ∪ ∂R, in visit order).
    ///
    /// If no node in this set changes its relay feasibility at the
    /// current width, every [`can_reach`](DescentReach::can_reach) answer
    /// is unchanged — any path into the unexplored region would have to
    /// cross the recorded boundary. This is the dependency set a caller
    /// records when it caches a decision made from a negative
    /// reachability certificate (the serve layer's candidate cache).
    pub fn reached_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.reached.members().iter().map(|&i| NodeId::new(i))
    }

    /// The *blocked frontier* `∂R`: nodes that were probed by the growth
    /// sweep but could not relay at the current width (reached but never
    /// expanded). Any path from the unexplored region to the target would
    /// have to cross one of these, so a negative
    /// [`can_reach`](DescentReach::can_reach) answer depends only on
    /// their relay answers staying infeasible — the tracked half of a
    /// reach-skip certificate (the full dependency set is still
    /// [`reached_nodes`](DescentReach::reached_nodes)).
    ///
    /// The target expands unconditionally, so it is never in this set.
    pub fn blocked_frontier(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.reached
            .members()
            .iter()
            .map(|&i| NodeId::new(i))
            .filter(move |v| !self.expanded.contains(v.index()))
    }

    /// Breadth-first growth from the queued expansion seeds.
    fn grow<N, E>(&mut self, graph: &UnGraph<N, E>, feas: &WidthFeasibility) {
        while let Some(u) = self.queue.pop() {
            for v in graph.neighbors(u) {
                if self.reached.insert(v.index())
                    && feas.relay_feasible(v, self.width)
                    && self.expanded.insert(v.index())
                {
                    self.queue.push(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference reachability: fresh BFS from `target`, expanding through
    /// the target and every relay-feasible node.
    fn naive_reach<N, E>(
        graph: &UnGraph<N, E>,
        feas: &WidthFeasibility,
        target: NodeId,
        width: u32,
    ) -> Vec<bool> {
        let mut reached = vec![false; graph.node_count()];
        let mut stack = vec![target];
        reached[target.index()] = true;
        while let Some(u) = stack.pop() {
            if u != target && !feas.relay_feasible(u, width) {
                continue;
            }
            for v in graph.neighbors(u) {
                if !reached[v.index()] {
                    reached[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        reached
    }

    fn switch_feas(caps: &[u32], users: &[usize]) -> WidthFeasibility {
        let mut feas = WidthFeasibility::new(caps.len());
        for (i, &c) in caps.iter().enumerate() {
            if users.contains(&i) {
                feas.set_node(NodeId::new(i), 0, c);
            } else {
                feas.set_node(NodeId::new(i), c / 2, c);
            }
        }
        feas
    }

    #[test]
    fn monotone_feasibility_invariant() {
        // Feasible at w + 1 implies feasible at w, for relays and
        // endpoints alike — the invariant the width-descent reuse rests
        // on — and capacity updates preserve it.
        let mut feas = switch_feas(&[10, 7, 0, 3], &[2]);
        for round in 0..2 {
            for i in 0..4 {
                let v = NodeId::new(i);
                for w in 1..16u32 {
                    assert!(
                        !feas.relay_feasible(v, w + 1) || feas.relay_feasible(v, w),
                        "relay monotonicity broken at node {i}, width {w}, round {round}"
                    );
                    assert!(
                        !feas.endpoint_feasible(v, w + 1) || feas.endpoint_feasible(v, w),
                        "endpoint monotonicity broken at node {i}, width {w}, round {round}"
                    );
                }
            }
            // Apply a capacity update and re-check.
            feas.set_node(NodeId::new(1), 2, 4);
            feas.set_node(NodeId::new(3), 9, 18);
        }
    }

    #[test]
    fn users_never_relay() {
        // s - u - t with a user u: t is reachable from u (u is an
        // endpoint), but not from s at any width.
        let mut g: UnGraph<(), ()> = UnGraph::new();
        let s = g.add_node(());
        let u = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, u, ());
        g.add_edge(u, t, ());
        let feas = switch_feas(&[10, 10, 10], &[1]);
        let mut reach = DescentReach::new();
        reach.begin(&g, &feas, t, 3);
        for w in (1..3u32).rev() {
            reach.descend(&g, &feas, w);
            assert!(reach.can_reach(u), "u borders t at width {w}");
            assert!(!reach.can_reach(s), "user u must not relay at width {w}");
        }
    }

    #[test]
    fn dormant_node_activates_when_reached_later() {
        // chain a - r1 - r2 - t: r1 activates at width 2, r2 only at 1.
        // At width 2, r2 blocks; descending to 1 must propagate through
        // both, reaching a — exercising the dormant-until-reached path.
        let mut g: UnGraph<(), ()> = UnGraph::new();
        let a = g.add_node(());
        let r1 = g.add_node(());
        let r2 = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, r1, ());
        g.add_edge(r1, r2, ());
        g.add_edge(r2, t, ());
        let feas = switch_feas(&[10, 4, 2, 10], &[]);
        let mut reach = DescentReach::new();
        reach.begin(&g, &feas, t, 3);
        assert!(!reach.can_reach(a));
        assert!(reach.can_reach(r2), "r2 borders t");
        reach.descend(&g, &feas, 2);
        assert!(!reach.can_reach(a), "r2 still cannot relay at width 2");
        reach.descend(&g, &feas, 1);
        assert!(reach.can_reach(r1));
        assert!(reach.can_reach(a), "width 1 opens the whole chain");
    }

    #[test]
    fn reuse_across_begins_resets_state() {
        let mut g: UnGraph<(), ()> = UnGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, t, ());
        let feas = switch_feas(&[10, 10, 10], &[]);
        let mut reach = DescentReach::new();
        reach.begin(&g, &feas, t, 2);
        assert!(reach.can_reach(a) && !reach.can_reach(b));
        // New target on the same instance: old reachability must vanish.
        reach.begin(&g, &feas, b, 2);
        assert!(!reach.can_reach(a) && reach.can_reach(b));
        assert_eq!(reach.width(), 2);
    }

    proptest! {
        /// Incremental descent must agree with a fresh BFS at every
        /// width, on random graphs with random capacities and user sets.
        #[test]
        fn descend_matches_fresh_bfs(
            edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
            caps in proptest::collection::vec(0u32..12, 10),
            users in proptest::collection::vec(0usize..10, 0..3),
            target in 0usize..10,
            start_width in 1u32..6,
        ) {
            let mut g: UnGraph<(), ()> = UnGraph::new();
            for _ in 0..10 {
                g.add_node(());
            }
            for (u, v) in edges {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), ());
                }
            }
            let feas = switch_feas(&caps, &users);
            let target = NodeId::new(target);
            let mut reach = DescentReach::new();
            reach.begin(&g, &feas, target, start_width);
            for width in (1..=start_width).rev() {
                if width < start_width {
                    reach.descend(&g, &feas, width);
                }
                let naive = naive_reach(&g, &feas, target, width);
                for v in g.node_ids() {
                    prop_assert_eq!(
                        reach.can_reach(v),
                        naive[v.index()],
                        "node {} at width {}", v.index(), width
                    );
                }
            }
        }

        /// `reached_nodes` is a sound dependency set: flipping the relay
        /// feasibility of any node *outside* it leaves every `can_reach`
        /// answer unchanged (and it always covers the reached set itself).
        #[test]
        fn unrecorded_nodes_cannot_change_reachability(
            edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
            caps in proptest::collection::vec(0u32..12, 10),
            users in proptest::collection::vec(0usize..10, 0..3),
            target in 0usize..10,
            width in 1u32..6,
            new_relay in 0u32..12,
        ) {
            let mut g: UnGraph<(), ()> = UnGraph::new();
            for _ in 0..10 {
                g.add_node(());
            }
            for (u, v) in edges {
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v), ());
                }
            }
            let mut feas = switch_feas(&caps, &users);
            let target = NodeId::new(target);
            let mut reach = DescentReach::new();
            reach.begin(&g, &feas, target, width);
            let recorded: Vec<bool> = {
                let mut r = vec![false; g.node_count()];
                for v in reach.reached_nodes() {
                    r[v.index()] = true;
                }
                r
            };
            for v in g.node_ids() {
                if reach.can_reach(v) {
                    prop_assert!(
                        recorded[v.index()],
                        "reached node {} missing from reached_nodes", v.index()
                    );
                }
            }
            let before = naive_reach(&g, &feas, target, width);
            for v in g.node_ids() {
                if recorded[v.index()] {
                    continue;
                }
                let saved = feas.relay_width(v);
                feas.set_node(v, new_relay, new_relay);
                let after = naive_reach(&g, &feas, target, width);
                prop_assert_eq!(
                    &before, &after,
                    "changing unrecorded node {} altered reachability", v.index()
                );
                feas.set_node(v, saved, saved);
            }
        }
    }
}
