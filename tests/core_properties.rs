//! Property tests for the core routing machinery:
//!
//! * Algorithm 1 is *optimal*: on random small networks it returns exactly
//!   the feasible simple path with the largest entanglement rate.
//! * Equation 1 is *exact on series-parallel flow graphs*: on randomly
//!   composed series/parallel structures it equals brute-force
//!   connectivity reliability.
//! * The merge never oversubscribes capacity on random candidate sets.

use ghz_entanglement_routing::core::algorithms::alg1::{largest_rate_path, PathConstraints};
use ghz_entanglement_routing::core::algorithms::{alg2, alg3};
use ghz_entanglement_routing::core::{
    metrics, Demand, DemandId, FlowGraph, QuantumNetwork, SwapMode,
};
use ghz_entanglement_routing::graph::{NodeId, Path};
use ghz_entanglement_routing::sim;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Algorithm 1 optimality
// ---------------------------------------------------------------------

/// Random small network: users at index 0 (S) and 1 (D), switches 2..n.
fn arbitrary_network() -> impl Strategy<Value = (QuantumNetwork, Vec<u32>)> {
    let caps = proptest::collection::vec(2u32..10, 4);
    let edges = proptest::collection::vec((0usize..6, 0usize..6, 1u32..40), 4..14);
    (caps, edges, 1u32..10).prop_map(|(caps, edges, qx)| {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(10.0, 0.0);
        for (i, &c) in caps.iter().enumerate() {
            b.switch(1.0 + i as f64, 1.0, c);
        }
        for (u, v, len) in edges {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            if u == v || (u == s && v == d) || (u == d && v == s) {
                continue;
            }
            // Duplicate links are rejected; ignore those samples.
            let _ = b.link_with_length(u, v, f64::from(len) * 500.0);
        }
        let mut net = b.build();
        net.set_swap_success(f64::from(qx) / 10.0);
        let capacities = net.capacities();
        (net, capacities)
    })
}

/// Enumerates every feasible simple S→D path (capacity and role rules of
/// Algorithm 1) and returns the best n-fusion rate.
fn brute_force_best(
    net: &QuantumNetwork,
    source: NodeId,
    dest: NodeId,
    width: u32,
    caps: &[u32],
) -> Option<f64> {
    fn dfs(
        net: &QuantumNetwork,
        dest: NodeId,
        width: u32,
        caps: &[u32],
        path: &mut Vec<NodeId>,
        best: &mut Option<f64>,
    ) {
        let cur = *path.last().expect("non-empty");
        if cur == dest {
            let rate = metrics::path_rate(net, &Path::new(path.clone()), width).value();
            if rate > 0.0 && best.is_none_or(|b| rate > b) {
                *best = Some(rate);
            }
            return;
        }
        for v in net.graph().neighbors(cur) {
            if path.contains(&v) {
                continue;
            }
            // Feasibility rules of Algorithm 1.
            if v != dest {
                if net.is_user(v) || caps[v.index()] < 2 * width {
                    continue;
                }
            } else if caps[v.index()] < width {
                continue;
            }
            path.push(v);
            dfs(net, dest, width, caps, path, best);
            path.pop();
        }
    }
    if caps[source.index()] < width || caps[dest.index()] < width {
        return None;
    }
    let mut best = None;
    let mut path = vec![source];
    dfs(net, dest, width, caps, &mut path, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn alg1_is_optimal((net, caps) in arbitrary_network(), width in 1u32..4) {
        let (s, d) = (NodeId::new(0), NodeId::new(1));
        let cons = PathConstraints::default();
        let ours = largest_rate_path(&net, s, d, width, &caps, &cons);
        let truth = brute_force_best(&net, s, d, width, &caps);
        match (ours, truth) {
            (None, None) => {}
            (Some((path, metric)), Some(best)) => {
                prop_assert!(
                    (metric.value() - best).abs() < 1e-9,
                    "alg1 found {} via {path}, brute force best {best}",
                    metric.value()
                );
                // The returned metric must equal the path's actual rate.
                let actual = metrics::path_rate(&net, &path, width).value();
                prop_assert!((metric.value() - actual).abs() < 1e-9);
            }
            (ours, truth) => {
                prop_assert!(false, "feasibility mismatch: alg1 {ours:?} vs brute {truth:?}");
            }
        }
    }

    /// Algorithm 3 never oversubscribes any switch, whatever Algorithm 2
    /// produced, in either consumption order and with or without sharing.
    #[test]
    fn merge_respects_capacity(
        (net, caps) in arbitrary_network(),
        h in 1usize..4,
        share in proptest::bool::ANY,
    ) {
        let _ = caps;
        let (s, d) = (NodeId::new(0), NodeId::new(1));
        let demands = [
            Demand::new(DemandId::new(0), s, d),
            Demand::new(DemandId::new(1), d, s),
        ];
        let capacity = net.capacities();
        let candidates =
            alg2::paths_selection(&net, &demands, &capacity, h, 4, SwapMode::NFusion);
        let outcome =
            alg3::paths_merge(&net, &demands, &candidates, SwapMode::NFusion, share);
        for node in net.graph().node_ids().filter(|&n| net.is_switch(n)) {
            let spent: u32 = outcome.plans.iter().map(|p| p.flow.qubits_at(node)).sum();
            prop_assert!(spent <= net.capacity(node));
            prop_assert_eq!(spent + outcome.remaining[node.index()], net.capacity(node));
        }
    }
}

// ---------------------------------------------------------------------
// Equation 1 exactness on branch-disjoint flows
// ---------------------------------------------------------------------
//
// Eq. 1's branch terms are independent only when parallel branches share
// nothing but their endpoints *and* reconverge at the sink: a shared
// suffix after a parallel section (e.g. the diamond S→{a,b}→m→D) is
// multiplied into every branch and double-counted. The exact class is
// therefore the "branch-disjoint" flows generated below: an edge, an edge
// followed by a branch-disjoint tail (divergence moves toward the sink),
// or a parallel composition of two branch-disjoint structures. The
// diamond, which an earlier draft of this test generated via general
// series composition, is exactly the counterexample — kept as a unit test
// in `fusion_sim::exact`.

/// A two-terminal structure on which Eq. 1 is exact.
#[derive(Debug, Clone)]
enum Sp {
    /// One channel with the given width.
    Edge(u32),
    /// One relay hop of the given width, then the tail structure.
    Hop(u32, Box<Sp>),
    /// Left and right as alternative branches (sharing only endpoints).
    Parallel(Box<Sp>, Box<Sp>),
}

fn sp_strategy() -> impl Strategy<Value = Sp> {
    let leaf = (1u32..4).prop_map(Sp::Edge);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (1u32..4, inner.clone()).prop_map(|(w, t)| Sp::Hop(w, Box::new(t))),
            (inner.clone(), inner).prop_map(|(a, b)| Sp::Parallel(Box::new(a), Box::new(b))),
        ]
    })
}

/// Materializes the structure between `from` and `to`, creating relay
/// switches as needed, and records channel widths per node pair.
fn build_sp(
    sp: &Sp,
    from: usize,
    to: usize,
    next: &mut usize,
    edges: &mut Vec<(usize, usize, u32)>,
) {
    match sp {
        Sp::Edge(w) => edges.push((from, to, *w)),
        Sp::Hop(w, tail) => {
            let mid = *next;
            *next += 1;
            edges.push((from, mid, *w));
            build_sp(tail, mid, to, next, edges);
        }
        Sp::Parallel(a, b) => {
            build_sp(a, from, to, next, edges);
            build_sp(b, from, to, next, edges);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn eq1_is_exact_on_branch_disjoint_flows(
        sp in sp_strategy(),
        pq in (1u32..10, 1u32..10),
    ) {
        // Prepend one relay hop so the structure never degenerates into a
        // direct user-user channel (which the network model forbids).
        let sp = Sp::Hop(1, Box::new(sp));
        let mut edges = Vec::new();
        let mut next = 2usize;
        build_sp(&sp, 0, 1, &mut next, &mut edges);
        // Merge parallel channels between the same pair (a parallel
        // composition of bare edges is just a wider channel).
        let mut merged: std::collections::BTreeMap<(usize, usize), u32> =
            std::collections::BTreeMap::new();
        for (u, v, w) in edges {
            let key = (u.min(v), u.max(v));
            *merged.entry(key).or_insert(0) += w;
        }
        // Bound the exact-enumeration cost.
        let switches = next - 2;
        prop_assume!(merged.len() + switches <= 18);

        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let d = b.user(1.0, 0.0);
        for i in 0..switches {
            b.switch(2.0 + i as f64, 0.0, 1_000);
        }
        for &(u, v) in merged.keys() {
            b.link_with_length(NodeId::new(u), NodeId::new(v), 1.0).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(f64::from(pq.0) / 10.0));
        net.set_swap_success(f64::from(pq.1) / 10.0);

        let mut flow = FlowGraph::new(s, d);
        for (&(u, v), &w) in &merged {
            flow.add_parallel(NodeId::new(u), NodeId::new(v), w);
        }
        // Orientation: FlowGraph::children follows the stored direction;
        // series construction always goes from-side to to-side, so the
        // stored pairs are already source-to-sink oriented... except that
        // `merged` normalized keys by min/max. Re-orient by BFS from the
        // source before evaluating.
        let flow = reorient(&flow, s, d);

        let eq1 = metrics::flow_rate(&net, &flow).value();
        let exact = sim::exact::flow_reliability(&net, &flow);
        prop_assert!(
            (eq1 - exact).abs() < 1e-9,
            "Eq.1 {eq1} vs exact {exact} on {sp:?}"
        );
    }
}

/// Rebuilds a flow graph with every edge oriented away from the source
/// (BFS order) so Eq. 1's child recursion can traverse it.
fn reorient(flow: &FlowGraph, source: NodeId, sink: NodeId) -> FlowGraph {
    let mut out = FlowGraph::new(source, sink);
    let mut adjacency: std::collections::BTreeMap<NodeId, Vec<(NodeId, u32)>> =
        std::collections::BTreeMap::new();
    for (u, v, w) in flow.edges() {
        adjacency.entry(u).or_default().push((v, w));
        adjacency.entry(v).or_default().push((u, w));
    }
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(source);
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &(v, w) in adjacency.get(&u).into_iter().flatten() {
            if seen.insert(v) {
                queue.push_back(v);
            }
            if out.undirected_width(u, v).is_none() {
                // Edges touching the sink always point into it; everything
                // else follows discovery order.
                if u == sink {
                    out.add_parallel(v, u, w);
                } else {
                    out.add_parallel(u, v, w);
                }
            }
        }
    }
    out
}
