//! Routing metrics (paper §III-C): entanglement rates of channels, paths,
//! and flow-like graphs under n-fusion, plus the classic-swapping (BSM)
//! metrics used by the Q-CAST baseline.

pub mod classic;

use std::collections::BTreeMap;

use fusion_graph::{Metric, NodeId, Path};

use crate::flow::{FlowGraph, WidthedPath};
use crate::network::QuantumNetwork;

/// Success probability of a width-`w` channel given single-link success
/// `p`: `1 - (1 - p)^w`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `w == 0`.
#[must_use]
pub fn channel_success(p: f64, width: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "link probability out of range: {p}"
    );
    assert!(width > 0, "width must be positive");
    1.0 - (1.0 - p).powi(width as i32)
}

/// Entanglement rate of a uniform-width path under n-fusion (§III-C):
/// `q^s · Π_e (1 - (1 - p_e)^w)` with `s` the number of intermediate
/// switches.
///
/// Returns [`Metric::ZERO`] if some hop has no edge in the network.
///
/// # Panics
///
/// Panics if the path is trivial or `width == 0`.
#[must_use]
pub fn path_rate(net: &QuantumNetwork, path: &Path, width: u32) -> Metric {
    let wp = WidthedPath::uniform(path.clone(), width);
    widthed_path_rate(net, &wp)
}

/// Entanglement rate of a path with per-hop widths under n-fusion.
///
/// Returns [`Metric::ZERO`] if some hop has no edge in the network.
#[must_use]
pub fn widthed_path_rate(net: &QuantumNetwork, wp: &WidthedPath) -> Metric {
    let mut rate = 1.0;
    for (u, v, w) in wp.hops() {
        let Some((edge, _)) = net.hop(u, v) else {
            return Metric::ZERO;
        };
        rate *= net.channel_success(edge, w);
    }
    for &mid in wp.path.intermediates() {
        if net.is_switch(mid) {
            rate *= net.swap_success();
        }
    }
    Metric::new(rate)
}

/// Entanglement rate of a flow-like graph — the paper's Equation 1.
///
/// The recursion treats sibling branches as independent alternatives:
///
/// `P(a → sink) = q_a^[a is an intermediate switch] ·
///   (1 - Π_children (1 - C(a,u) · P(u → sink)))`
///
/// with `C(a,u)` the width-`w` channel success of the edge. On
/// *branch-disjoint* flow graphs — parallel branches share nothing but
/// their endpoints and reconverge only at the sink — this equals the exact
/// connectivity reliability; when branches reconverge earlier (shared
/// suffixes, cross-edges) the shared part is double-counted and Eq. 1 is
/// optimistic. Both regimes are validated against exact enumeration in
/// `fusion-sim`.
///
/// Returns [`Metric::ZERO`] for an empty flow graph or one referencing a
/// missing network edge.
#[must_use]
pub fn flow_rate(net: &QuantumNetwork, flow: &FlowGraph) -> Metric {
    if flow.is_empty() {
        return Metric::ZERO;
    }
    let mut memo: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut on_stack: Vec<NodeId> = Vec::new();
    let rate = descend(net, flow, flow.source(), &mut memo, &mut on_stack);
    Metric::new(rate.clamp(0.0, 1.0))
}

fn descend(
    net: &QuantumNetwork,
    flow: &FlowGraph,
    node: NodeId,
    memo: &mut BTreeMap<NodeId, f64>,
    on_stack: &mut Vec<NodeId>,
) -> f64 {
    if node == flow.sink() {
        return 1.0;
    }
    if let Some(&m) = memo.get(&node) {
        return m;
    }
    if on_stack.contains(&node) {
        // A reverse-oriented overlap created a cycle; treat the back-branch
        // as contributing nothing rather than recursing forever.
        return 0.0;
    }
    on_stack.push(node);
    let mut fail_all = 1.0;
    for (child, width) in flow.children(node) {
        let Some((edge, _)) = net.hop(node, child) else {
            continue;
        };
        let channel = net.channel_success(edge, width);
        let downstream = descend(net, flow, child, memo, on_stack);
        fail_all *= 1.0 - channel * downstream;
    }
    on_stack.pop();
    let mut rate = 1.0 - fail_all;
    // The node's own fusion: one GHZ measurement per state per switch.
    if net.is_switch(node) {
        rate *= net.swap_success();
    }
    memo.insert(node, rate);
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QuantumNetwork;
    use fusion_graph::NodeId;

    /// Builds the Fig. 4 example: Alice = Carol (width 2) = Bob (width 1),
    /// with uniform link success `p` and swap success `q`.
    fn fig4(p: f64, q: f64) -> (QuantumNetwork, NodeId, NodeId, NodeId) {
        let mut b = QuantumNetwork::builder();
        let alice = b.user(0.0, 0.0);
        let carol = b.switch(1.0, 0.0, 10);
        let bob = b.user(2.0, 0.0);
        b.link(alice, carol).unwrap();
        b.link(carol, bob).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        (net, alice, carol, bob)
    }

    #[test]
    fn channel_success_formula() {
        assert!((channel_success(0.3, 1) - 0.3).abs() < 1e-12);
        assert!((channel_success(0.3, 2) - 0.51).abs() < 1e-12);
        assert!((channel_success(1.0, 3) - 1.0).abs() < 1e-12);
        assert_eq!(channel_success(0.0, 5), 0.0);
    }

    #[test]
    fn fig4_path_rate() {
        // Paper: rate = (1 - (1-p)^2) · p · q with width 2 on Alice-Carol.
        let (net, alice, carol, bob) = fig4(0.4, 0.9);
        let mut wp = WidthedPath::uniform(Path::new(vec![alice, carol, bob]), 1);
        wp.widths[0] = 2;
        let expect = (1.0 - 0.6_f64 * 0.6) * 0.4 * 0.9;
        assert!((widthed_path_rate(&net, &wp).value() - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_path_rate_matches_closed_form() {
        let (net, alice, carol, bob) = fig4(0.25, 0.8);
        let path = Path::new(vec![alice, carol, bob]);
        let rate = path_rate(&net, &path, 2);
        let c = 1.0 - 0.75_f64 * 0.75;
        assert!((rate.value() - c * c * 0.8).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_rates_zero() {
        let (net, alice, _carol, bob) = fig4(0.5, 0.9);
        let path = Path::new(vec![alice, bob]);
        assert_eq!(path_rate(&net, &path, 1), Metric::ZERO);
    }

    #[test]
    fn flow_rate_on_simple_path_equals_path_rate() {
        let (net, alice, carol, bob) = fig4(0.3, 0.7);
        let path = Path::new(vec![alice, carol, bob]);
        let mut flow = FlowGraph::new(alice, bob);
        flow.add_path(&path, 2);
        let a = flow_rate(&net, &flow).value();
        let b = path_rate(&net, &path, 2).value();
        assert!((a - b).abs() < 1e-12);
    }

    /// Fig. 6a: S = v (width 2) = D (width 2); one 4-fusion switch.
    #[test]
    fn fig6a_fusion_flow() {
        let (net, s, v, d) = fig4(0.2, 0.85);
        let mut flow = FlowGraph::new(s, d);
        let path = Path::new(vec![s, v, d]);
        flow.add_path(&path, 2);
        let c = 1.0 - 0.8_f64 * 0.8;
        assert!((flow_rate(&net, &flow).value() - 0.85 * c * c).abs() < 1e-12);
    }

    /// Two disjoint branches: S→v1→D and S→v2→D. Eq. 1 combines them as
    /// independent alternatives.
    #[test]
    fn parallel_branches_combine_independently() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 1.0, 10);
        let v2 = b.switch(1.0, -1.0, 10);
        let d = b.user(2.0, 0.0);
        b.link(s, v1).unwrap();
        b.link(v1, d).unwrap();
        b.link(s, v2).unwrap();
        b.link(v2, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.9);

        let mut flow = FlowGraph::new(s, d);
        flow.add_path(&Path::new(vec![s, v1, d]), 1);
        flow.add_path(&Path::new(vec![s, v2, d]), 1);
        let one_branch = 0.5 * 0.9 * 0.5;
        let expect = 1.0 - (1.0 - one_branch) * (1.0 - one_branch);
        assert!((flow_rate(&net, &flow).value() - expect).abs() < 1e-12);
    }

    /// Branches that reconverge at an intermediate switch: the diamond.
    /// Eq. 1 multiplies the shared suffix into each branch independently —
    /// exactness is not expected, but the value must stay in [0, 1] and
    /// exceed the single-branch rate.
    #[test]
    fn diamond_reconvergence_is_sane() {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let x = b.switch(1.0, 1.0, 10);
        let y = b.switch(1.0, -1.0, 10);
        let m = b.switch(2.0, 0.0, 10);
        let d = b.user(3.0, 0.0);
        for (u, v) in [(s, x), (s, y), (x, m), (y, m), (m, d)] {
            b.link(u, v).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.9);
        let mut flow = FlowGraph::new(s, d);
        flow.add_path(&Path::new(vec![s, x, m, d]), 1);
        flow.add_path(&Path::new(vec![s, y, m, d]), 1);
        let single = flow_rate(&net, &{
            let mut f = FlowGraph::new(s, d);
            f.add_path(&Path::new(vec![s, x, m, d]), 1);
            f
        });
        let both = flow_rate(&net, &flow);
        assert!(both > single);
        assert!(both.value() <= 1.0);
    }

    #[test]
    fn empty_flow_rates_zero() {
        let (net, alice, _c, bob) = fig4(0.5, 0.9);
        let flow = FlowGraph::new(alice, bob);
        assert_eq!(flow_rate(&net, &flow), Metric::ZERO);
    }

    #[test]
    fn wider_is_better_shorter_is_better() {
        // Main ideas 2 and 3 (§IV-B): rates improve with width and degrade
        // with hops.
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v1 = b.switch(1.0, 0.0, 10);
        let v2 = b.switch(2.0, 0.0, 10);
        let d = b.user(3.0, 0.0);
        b.link(s, v1).unwrap();
        b.link(v1, v2).unwrap();
        b.link(v2, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.3));
        net.set_swap_success(0.9);
        let two_hop = Path::new(vec![s, v1, v2, d]);
        assert!(path_rate(&net, &two_hop, 2) > path_rate(&net, &two_hop, 1));

        let mut b2 = QuantumNetwork::builder();
        let s2 = b2.user(0.0, 0.0);
        let v = b2.switch(1.0, 0.0, 10);
        let d2 = b2.user(2.0, 0.0);
        b2.link(s2, v).unwrap();
        b2.link(v, d2).unwrap();
        let mut short_net = b2.build();
        short_net.set_uniform_link_success(Some(0.3));
        short_net.set_swap_success(0.9);
        let one_mid = Path::new(vec![s2, v, d2]);
        assert!(path_rate(&short_net, &one_mid, 1) > path_rate(&net, &two_hop, 1));
    }
}
