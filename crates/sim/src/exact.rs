//! Exact reliability of flow-like graphs by exhaustive enumeration.
//!
//! The connectivity reliability — the probability that source and sink are
//! joined when every channel is up with `1-(1-p)^w` and every switch with
//! `q` — is the ground truth that Equation 1 approximates (it is exact on
//! branch-disjoint flow graphs and optimistic wherever branches reconverge
//! before the sink). This
//! module enumerates all `2^(channels + switches)` outcomes, so keep flows
//! below ~22 elements; it exists to validate Eq. 1 and the Monte Carlo
//! samplers, and to power the Eq.-1-accuracy ablation.

use std::collections::HashMap;

use fusion_core::{FlowGraph, QuantumNetwork};
use fusion_graph::{DisjointSets, NodeId};

/// Exact probability that the flow graph's source and sink end up
/// connected.
///
/// # Panics
///
/// Panics if the flow graph has more than 22 random elements
/// (channels + participating switches); enumeration would be intractable.
#[must_use]
pub fn flow_reliability(net: &QuantumNetwork, flow: &FlowGraph) -> f64 {
    if flow.is_empty() {
        return 0.0;
    }
    let nodes = flow.nodes();
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Random elements: channels (with their up-probabilities) and switches.
    let channels: Vec<(usize, usize, f64)> = flow
        .edges()
        .filter_map(|(u, v, w)| {
            let (edge, _) = net.hop(u, v)?;
            Some((index[&u], index[&v], net.channel_success(edge, w)))
        })
        .collect();
    let switches: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|&(_, &n)| net.is_switch(n))
        .map(|(i, _)| i)
        .collect();

    let elements = channels.len() + switches.len();
    assert!(
        elements <= 22,
        "exact enumeration over {elements} elements is intractable"
    );

    let q = net.swap_success();
    let s = index[&flow.source()];
    let d = index[&flow.sink()];
    let mut total = 0.0;
    for mask in 0u32..(1 << elements) {
        let mut prob = 1.0;
        let mut sets = DisjointSets::new(nodes.len());
        // Switch states occupy the high bits.
        let mut switch_up = vec![true; nodes.len()];
        for (bit, &sw) in switches.iter().enumerate() {
            let up = mask >> (channels.len() + bit) & 1 == 1;
            prob *= if up { q } else { 1.0 - q };
            switch_up[sw] = up;
        }
        if prob == 0.0 {
            continue;
        }
        for (bit, &(u, v, c)) in channels.iter().enumerate() {
            let up = mask >> bit & 1 == 1;
            prob *= if up { c } else { 1.0 - c };
            if up && switch_up[u] && switch_up[v] {
                sets.union(u, v);
            }
        }
        if prob > 0.0 && sets.same_set(s, d) {
            total += prob;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::metrics;
    use fusion_graph::Path;

    fn uniform_net(
        links: &[(usize, usize)],
        users: &[usize],
        n: usize,
        p: f64,
        q: f64,
    ) -> (QuantumNetwork, Vec<NodeId>) {
        let mut b = QuantumNetwork::builder();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                if users.contains(&i) {
                    b.user(i as f64, 0.0)
                } else {
                    b.switch(i as f64, 0.0, 100)
                }
            })
            .collect();
        for &(u, v) in links {
            b.link(ids[u], ids[v]).unwrap();
        }
        let mut net = b.build();
        net.set_uniform_link_success(Some(p));
        net.set_swap_success(q);
        (net, ids)
    }

    #[test]
    fn path_reliability_matches_eq1() {
        let (net, ids) = uniform_net(&[(0, 1), (1, 2), (2, 3)], &[0, 3], 4, 0.45, 0.85);
        let mut flow = FlowGraph::new(ids[0], ids[3]);
        flow.add_path(&Path::new(ids.clone()), 2);
        let exact = flow_reliability(&net, &flow);
        let eq1 = metrics::flow_rate(&net, &flow).value();
        assert!((exact - eq1).abs() < 1e-9, "exact {exact} vs eq1 {eq1}");
    }

    #[test]
    fn parallel_branches_match_eq1() {
        // Branch-disjoint: S -> {v1, v2} -> D.
        let (net, ids) = uniform_net(&[(0, 1), (1, 3), (0, 2), (2, 3)], &[0, 3], 4, 0.5, 0.8);
        let mut flow = FlowGraph::new(ids[0], ids[3]);
        flow.add_path(&Path::new(vec![ids[0], ids[1], ids[3]]), 1);
        flow.add_path(&Path::new(vec![ids[0], ids[2], ids[3]]), 1);
        let exact = flow_reliability(&net, &flow);
        let eq1 = metrics::flow_rate(&net, &flow).value();
        assert!((exact - eq1).abs() < 1e-9, "exact {exact} vs eq1 {eq1}");
    }

    #[test]
    fn diamond_reconvergence_eq1_is_optimistic() {
        // S -> {x, y} -> m -> D: the shared suffix breaks branch
        // independence; Eq. 1 double-counts the m->D segment.
        let (net, ids) = uniform_net(
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            &[0, 4],
            5,
            0.5,
            0.8,
        );
        let mut flow = FlowGraph::new(ids[0], ids[4]);
        flow.add_path(&Path::new(vec![ids[0], ids[1], ids[3], ids[4]]), 1);
        flow.add_path(&Path::new(vec![ids[0], ids[2], ids[3], ids[4]]), 1);
        let exact = flow_reliability(&net, &flow);
        let eq1 = metrics::flow_rate(&net, &flow).value();
        assert!(
            eq1 >= exact - 1e-12,
            "Eq. 1 must be optimistic on reconvergent flows: {eq1} vs {exact}"
        );
        assert!(
            eq1 - exact < 0.15,
            "gap should stay moderate: {eq1} vs {exact}"
        );
    }

    #[test]
    fn perfect_elements_connect_certainly() {
        let (net, ids) = uniform_net(&[(0, 1), (1, 2)], &[0, 2], 3, 1.0, 1.0);
        let mut flow = FlowGraph::new(ids[0], ids[2]);
        flow.add_path(&Path::new(ids.clone()), 1);
        assert!((flow_reliability(&net, &flow) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_flow_is_zero() {
        let (net, ids) = uniform_net(&[(0, 1)], &[0], 2, 0.5, 0.9);
        let flow = FlowGraph::new(ids[0], ids[1]);
        assert_eq!(flow_reliability(&net, &flow), 0.0);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn oversized_flow_rejected() {
        // A 24-hop chain has 24 channels + 23 switches > 22 elements.
        let links: Vec<(usize, usize)> = (0..24).map(|i| (i, i + 1)).collect();
        let (net, ids) = uniform_net(&links, &[0, 24], 25, 0.5, 0.9);
        let mut flow = FlowGraph::new(ids[0], ids[24]);
        flow.add_path(&Path::new(ids.clone()), 1);
        let _ = flow_reliability(&net, &flow);
    }
}
