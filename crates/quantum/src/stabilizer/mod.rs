//! Exact stabilizer-circuit simulation of GHZ measurements.
//!
//! The routing layers treat an n-fusion as an abstract "merge these GHZ
//! groups" step; this module grounds that abstraction. [`Tableau`] is an
//! Aaronson-Gottesman stabilizer simulator (CHP-style) and [`fuse_groups`]
//! executes the actual GHZ-basis measurement circuits — CNOT fan-in,
//! Hadamard, Z measurements, conditional Pauli corrections — proving that a
//! successful n-fusion over n groups leaves the survivors in exactly the
//! canonical GHZ state `(|0…0⟩ + |1…1⟩)/√2` (paper §II-B).
//!
//! # Examples
//!
//! ```
//! use fusion_quantum::stabilizer::Tableau;
//!
//! let mut tab = Tableau::new(3);
//! tab.prepare_ghz(&[0, 1, 2]);
//! assert!(tab.is_ghz(&[0, 1, 2]));
//! assert!(!tab.is_ghz(&[0, 1]));
//! ```

mod fusion;
mod pauli;
mod tableau;

pub use fusion::{fuse_groups, measure_out_x};
pub use pauli::PauliString;
pub use tableau::Tableau;
