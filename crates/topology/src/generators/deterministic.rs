//! Deterministic topologies for tests, examples, and the B1 baseline's
//! grid-world heritage (Patil et al. evaluate on lattices).

use fusion_graph::{NodeId, UnGraph};

use crate::geometry::Position;
use crate::model::{Link, Role, Site, Topology};

/// Builds a `rows × cols` grid of switches with the given edge `spacing`.
///
/// Nodes are laid out row-major; horizontal and vertical neighbours are
/// connected.
///
/// # Panics
///
/// Panics if `rows`, `cols`, or `spacing` is zero/non-positive.
#[must_use]
pub fn grid(rows: usize, cols: usize, spacing: f64) -> UnGraph<Site, Link> {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut g = UnGraph::with_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_node(Site::switch(Position::new(
                c as f64 * spacing,
                r as f64 * spacing,
            )));
        }
    }
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), Link::new(spacing));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), Link::new(spacing));
            }
        }
    }
    g
}

/// Builds a line of `n` switches with the given `spacing` — the canonical
/// repeater-chain topology.
///
/// # Panics
///
/// Panics if `n == 0` or `spacing <= 0`.
#[must_use]
pub fn line(n: usize, spacing: f64) -> UnGraph<Site, Link> {
    assert!(n > 0, "line must be non-empty");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut g = UnGraph::with_capacity(n, n.saturating_sub(1));
    for i in 0..n {
        g.add_node(Site::switch(Position::new(i as f64 * spacing, 0.0)));
    }
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId::new(i), NodeId::new(i + 1), Link::new(spacing));
    }
    g
}

/// Builds a ring of `n` switches on a circle of the given `radius`.
///
/// # Panics
///
/// Panics if `n < 3` or `radius <= 0`.
#[must_use]
pub fn ring(n: usize, radius: f64) -> UnGraph<Site, Link> {
    assert!(n >= 3, "ring needs at least 3 nodes");
    assert!(radius > 0.0, "radius must be positive");
    let mut g = UnGraph::with_capacity(n, n);
    for i in 0..n {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        g.add_node(Site::switch(Position::new(
            radius * theta.cos(),
            radius * theta.sin(),
        )));
    }
    for i in 0..n {
        let j = (i + 1) % n;
        let d = g
            .node(NodeId::new(i))
            .position
            .distance(g.node(NodeId::new(j)).position);
        g.add_edge(NodeId::new(i), NodeId::new(j), Link::new(d));
    }
    g
}

/// Builds a star: one central switch surrounded by `leaves` switches at
/// the given `radius` — the single-switch fan-in setting of the paper's
/// Fig. 2, useful for studying pure fusion arity effects.
///
/// The hub is node 0; leaves follow in angular order.
///
/// # Panics
///
/// Panics if `leaves == 0` or `radius <= 0`.
#[must_use]
pub fn star(leaves: usize, radius: f64) -> UnGraph<Site, Link> {
    assert!(leaves > 0, "star needs at least one leaf");
    assert!(radius > 0.0, "radius must be positive");
    let mut g = UnGraph::with_capacity(leaves + 1, leaves);
    let hub = g.add_node(Site::switch(Position::new(0.0, 0.0)));
    for i in 0..leaves {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / leaves as f64;
        let leaf = g.add_node(Site::switch(Position::new(
            radius * theta.cos(),
            radius * theta.sin(),
        )));
        g.add_edge(hub, leaf, Link::new(radius));
    }
    g
}

/// Attaches a user pair to two switches and returns `(source, destination)`.
///
/// Each user sits `lead` units from its switch and connects to it with a
/// single link. This is the standard way to build demand endpoints on the
/// deterministic topologies.
///
/// # Panics
///
/// Panics if either switch id is out of bounds or not a switch.
pub fn attach_user_pair(
    graph: &mut UnGraph<Site, Link>,
    source_switch: NodeId,
    dest_switch: NodeId,
    lead: f64,
) -> (NodeId, NodeId) {
    for s in [source_switch, dest_switch] {
        assert_eq!(graph.node(s).role, Role::Switch, "{s} is not a switch");
    }
    let sp = graph.node(source_switch).position;
    let dp = graph.node(dest_switch).position;
    let su = graph.add_node(Site::user(Position::new(sp.x, sp.y - lead)));
    let du = graph.add_node(Site::user(Position::new(dp.x, dp.y + lead)));
    graph.add_edge(su, source_switch, Link::new(lead));
    graph.add_edge(du, dest_switch, Link::new(lead));
    (su, du)
}

/// Convenience: a repeater chain of `n` switches with one user pair at the
/// two ends, as in the paper's Fig. 4 path example.
#[must_use]
pub fn chain_with_users(n: usize, spacing: f64, lead: f64) -> Topology {
    let mut graph = line(n, spacing);
    let (s, d) = attach_user_pair(&mut graph, NodeId::new(0), NodeId::new(n - 1), lead);
    Topology {
        graph,
        demands: vec![(s, d)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_graph::search;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 10.0);
        assert_eq!(g.node_count(), 12);
        // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert!(search::is_connected(&g));
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(5)), 4);
    }

    #[test]
    fn line_shape() {
        let g = line(5, 2.0);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 2);
        for e in g.edges() {
            assert_eq!(e.weight.length, 2.0);
        }
    }

    #[test]
    fn ring_shape() {
        let g = ring(6, 5.0);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.node_ids().all(|v| g.degree(v) == 2));
        // All chord lengths equal by symmetry.
        let lens: Vec<f64> = g.edges().map(|e| e.weight.length).collect();
        for l in &lens {
            assert!((l - lens[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(5, 3.0);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(NodeId::new(0)), 5, "hub touches every leaf");
        for leaf in 1..6 {
            assert_eq!(g.degree(NodeId::new(leaf)), 1);
        }
        for e in g.edges() {
            assert!((e.weight.length - 3.0).abs() < 1e-9);
        }
        assert!(search::is_connected(&g));
    }

    #[test]
    fn user_pair_attachment() {
        let mut g = line(3, 4.0);
        let (s, d) = attach_user_pair(&mut g, NodeId::new(0), NodeId::new(2), 1.0);
        assert!(g.node(s).is_user());
        assert!(g.node(d).is_user());
        assert_eq!(g.degree(s), 1);
        assert!(g.contains_edge(s, NodeId::new(0)));
        assert!(g.contains_edge(d, NodeId::new(2)));
    }

    #[test]
    fn chain_with_users_demands() {
        let t = chain_with_users(4, 3.0, 1.0);
        assert_eq!(t.demands.len(), 1);
        assert_eq!(t.switch_count(), 4);
        let (s, d) = t.demands[0];
        assert!(t.graph.node(s).is_user());
        assert!(t.graph.node(d).is_user());
        assert!(search::is_connected(&t.graph));
    }

    #[test]
    #[should_panic(expected = "is not a switch")]
    fn attach_rejects_user_switch() {
        let mut g = line(2, 1.0);
        let (s, _) = attach_user_pair(&mut g, NodeId::new(0), NodeId::new(1), 1.0);
        let _ = attach_user_pair(&mut g, s, NodeId::new(1), 1.0);
    }
}
