use fusion_graph::{NodeId, UnGraph};
use rand::Rng;

use super::{place_switches, span};
use crate::config::TopologyConfig;
use crate::model::{Link, Site};

/// Generates the switch layer with the Watts-Strogatz small-world model \[32\].
///
/// Switches are placed uniformly in the area and ordered by angle around the
/// centroid so the initial ring lattice connects geometric neighbours; each
/// lattice edge is then rewired to a uniformly random endpoint with
/// probability `rewire`, producing the characteristic short-diameter,
/// high-clustering graphs of real communication networks.
pub(crate) fn watts_strogatz(
    cfg: &TopologyConfig,
    rewire: f64,
    rng: &mut impl Rng,
) -> UnGraph<Site, Link> {
    assert!(
        (0.0..=1.0).contains(&rewire),
        "rewire probability must be in [0,1]"
    );
    let n = cfg.num_switches;
    let mut graph = place_switches(n, cfg.side, rng);
    if n < 2 {
        return graph;
    }

    // Ring order: sort by angle around the centroid so lattice neighbours
    // are geometric neighbours and edge lengths stay meaningful.
    let cx = graph.node_weights().map(|s| s.position.x).sum::<f64>() / n as f64;
    let cy = graph.node_weights().map(|s| s.position.y).sum::<f64>() / n as f64;
    let mut ring: Vec<usize> = (0..n).collect();
    ring.sort_by(|&a, &b| {
        let pa = graph.node(NodeId::new(a)).position;
        let pb = graph.node(NodeId::new(b)).position;
        let ta = (pa.y - cy).atan2(pa.x - cx);
        let tb = (pb.y - cy).atan2(pb.x - cx);
        ta.partial_cmp(&tb)
            .expect("angles are finite")
            .then(a.cmp(&b))
    });

    // Each node connects to k/2 successors on the ring.
    let half_k = ((cfg.avg_degree / 2.0).round() as usize).max(1).min(n / 2);
    let mut planned: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in 1..=half_k {
            let u = ring[i];
            let v = ring[(i + j) % n];
            if u != v {
                planned.push((u, v));
            }
        }
    }

    for (u, v) in planned {
        let target = if rng.gen_bool(rewire) {
            // Rewire the far endpoint to a uniform random node, avoiding
            // self-loops and duplicate edges; keep the original if no valid
            // target exists after a few attempts.
            let mut choice = v;
            for _ in 0..16 {
                let cand = rng.gen_range(0..n);
                if cand != u && !graph.contains_edge(NodeId::new(u), NodeId::new(cand)) {
                    choice = cand;
                    break;
                }
            }
            choice
        } else {
            v
        };
        if target != u && !graph.contains_edge(NodeId::new(u), NodeId::new(target)) {
            let d = span(&graph, u, target);
            graph.add_edge(NodeId::new(u), NodeId::new(target), Link::new(d));
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_graph::search;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(n: usize, degree: f64) -> TopologyConfig {
        TopologyConfig {
            num_switches: n,
            avg_degree: degree,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn zero_rewire_gives_ring_lattice() {
        let c = cfg(20, 4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(&c, 0.0, &mut rng);
        // k = 4 ring lattice: every node has degree 4, graph connected.
        assert!(g.node_ids().all(|v| g.degree(v) == 4));
        assert!(search::is_connected(&g));
    }

    #[test]
    fn average_degree_close_to_target() {
        let c = cfg(60, 10.0);
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(&c, 0.1, &mut rng);
        let avg = g.average_degree();
        assert!((avg - 10.0).abs() < 1.5, "avg degree {avg}");
    }

    #[test]
    fn rewiring_changes_structure() {
        let c = cfg(40, 6.0);
        let lattice = watts_strogatz(&c, 0.0, &mut StdRng::seed_from_u64(3));
        let rewired = watts_strogatz(&c, 0.5, &mut StdRng::seed_from_u64(3));
        let lattice_edges: std::collections::HashSet<_> = lattice
            .edges()
            .map(|e| {
                (
                    e.source.index().min(e.target.index()),
                    e.source.index().max(e.target.index()),
                )
            })
            .collect();
        let rewired_edges: std::collections::HashSet<_> = rewired
            .edges()
            .map(|e| {
                (
                    e.source.index().min(e.target.index()),
                    e.source.index().max(e.target.index()),
                )
            })
            .collect();
        assert_ne!(lattice_edges, rewired_edges);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let c = cfg(50, 8.0);
        let g = watts_strogatz(&c, 0.3, &mut StdRng::seed_from_u64(4));
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert_ne!(e.source, e.target, "self-loop generated");
            let key = (
                e.source.index().min(e.target.index()),
                e.source.index().max(e.target.index()),
            );
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
    }

    #[test]
    fn tiny_networks_are_safe() {
        let c = cfg(1, 4.0);
        let g = watts_strogatz(&c, 0.1, &mut StdRng::seed_from_u64(5));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
