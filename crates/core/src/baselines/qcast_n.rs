//! Q-CAST-N baseline (§V-B): Q-CAST's routes, re-evaluated under n-fusion.
//!
//! "We apply Q-Cast to get paths. Then, we use Equation 1 to evaluate the
//! network performance, assuming all paths take n-fusion." Q-Cast routes
//! one width-`w` major path per request, choosing width to maximize the
//! expected pair yield; under n-fusion the switches along that path fuse
//! all successful parallel links for the state, so the state succeeds with
//! the Eq.-1 rate `q^(z-1) · Π (1-(1-p)^w)`. Operationally this is the
//! routing pipeline restricted to a single unmerged path per demand —
//! n-fusion's remaining advantages over it (flow-like merging, global
//! width-major allocation) are exactly what ALG-N-FUSION adds.

use crate::algorithms::pipeline::{route, RoutingConfig};
use crate::demand::Demand;
use crate::network::QuantumNetwork;
use crate::plan::NetworkPlan;

/// Routes one width-optimized path per demand and evaluates it under
/// n-fusion (Equation 1).
#[must_use]
pub fn route_qcast_n(net: &QuantumNetwork, demands: &[Demand], h: usize) -> NetworkPlan {
    let config = RoutingConfig {
        h,
        merge_paths: false,
        max_paths_per_demand: Some(1),
        ..RoutingConfig::n_fusion()
    };
    route(net, demands, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::qcast::route_qcast;
    use crate::network::NetworkParams;
    use crate::plan::SwapMode;
    use fusion_topology::TopologyConfig;

    fn setup(seed: u64) -> (QuantumNetwork, Vec<Demand>) {
        let topo = TopologyConfig {
            num_switches: 30,
            num_user_pairs: 5,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(seed);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        (net, Demand::from_topology(&topo))
    }

    #[test]
    fn dominates_qcast() {
        // Fusing width-w channels can only beat a single pre-committed
        // lane: Eq. 1 >= p^z q^(z-1) hop for hop.
        for seed in [1, 2, 3] {
            let (net, demands) = setup(seed);
            let classic = route_qcast(&net, &demands, 5);
            let fused = route_qcast_n(&net, &demands, 5);
            assert!(
                fused.total_rate(&net) >= classic.total_rate(&net) - 1e-9,
                "seed {seed}: Q-CAST-N {} < Q-CAST {}",
                fused.total_rate(&net),
                classic.total_rate(&net)
            );
        }
    }

    #[test]
    fn single_unmerged_path_per_demand() {
        let (net, demands) = setup(4);
        let plan = route_qcast_n(&net, &demands, 5);
        assert_eq!(plan.mode, SwapMode::NFusion);
        for dp in &plan.plans {
            assert!(dp.paths.len() <= 1, "one major path per request");
            if let Some(wp) = dp.paths.first() {
                // The flow mirrors the single path's hops (Algorithm 4 may
                // have widened flow channels beyond the recorded path).
                for (u, v, _) in wp.hops() {
                    assert!(dp.flow.undirected_width(u, v).is_some());
                }
            }
        }
    }

    #[test]
    fn rate_stays_within_demand_count() {
        let (net, demands) = setup(5);
        let plan = route_qcast_n(&net, &demands, 5);
        assert!(plan.total_rate(&net) <= demands.len() as f64);
        assert!(plan.total_rate(&net) > 0.0);
    }
}
