use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::attach;
use crate::connect;
use crate::generators;
use crate::model::Topology;

/// Which random-graph family to generate the switch layer with (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Waxman geometric random graph \[31\] (the paper's default).
    Waxman {
        /// Locality exponent: larger values favour short edges. The
        /// connection probability is `β·exp(-d / (alpha·L_max))` with `β`
        /// calibrated to hit the target average degree.
        alpha: f64,
    },
    /// Watts-Strogatz small-world graph \[32\].
    WattsStrogatz {
        /// Probability of rewiring each lattice edge to a random node.
        rewire: f64,
    },
    /// Aiello-style power-law random graph \[33\] via Chung-Lu sampling.
    Aiello {
        /// Degree-distribution exponent (`P(k) ∝ k^-gamma`).
        gamma: f64,
    },
    /// Deterministic 4-connected lattice spanning the area — the scale
    /// preset for 1k–10k-switch workloads (O(n) generation, no pair
    /// scan). Ignores `avg_degree`; interior degree is 4.
    Grid,
}

impl GeneratorKind {
    /// Canonical lower-case name of this generator family, as accepted by
    /// [`GeneratorKind::parse`] (parameters are not encoded).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorKind::Waxman { .. } => "waxman",
            GeneratorKind::WattsStrogatz { .. } => "watts-strogatz",
            GeneratorKind::Aiello { .. } => "aiello",
            GeneratorKind::Grid => "grid",
        }
    }

    /// Every generator family with its default parameters, in canonical
    /// order — the set a sweep specification may enumerate by name.
    #[must_use]
    pub fn all_default() -> [GeneratorKind; 4] {
        [
            GeneratorKind::default(),
            GeneratorKind::WattsStrogatz { rewire: 0.1 },
            GeneratorKind::Aiello { gamma: 2.5 },
            GeneratorKind::Grid,
        ]
    }

    /// Parses a canonical generator name (see [`GeneratorKind::name`])
    /// into the family with its default parameters. Case-insensitive;
    /// returns `None` for unknown names.
    #[must_use]
    pub fn parse(name: &str) -> Option<GeneratorKind> {
        let lower = name.to_ascii_lowercase();
        GeneratorKind::all_default()
            .into_iter()
            .find(|kind| kind.name() == lower)
    }
}

impl Default for GeneratorKind {
    fn default() -> Self {
        // alpha = 1.0 keeps the length bias weak: edges span the area
        // (mean ≈ 4500-5000 units, single-link success ≈ 0.6), so routes
        // are short (3-4 hops) but individually lossy — the regime in
        // which channel width matters and which the paper's baseline
        // anchor numbers imply (EXPERIMENTS.md, calibration).
        GeneratorKind::Waxman { alpha: 1.0 }
    }
}

/// Parameters controlling topology generation (paper §V-A).
///
/// The defaults reproduce the paper's base configuration: 100 switches with
/// average degree 10 in a 10 000 × 10 000 unit area and 20 demanded states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of quantum switches.
    pub num_switches: usize,
    /// Number of quantum-user pairs; one demanded state per pair, two fresh
    /// users per pair.
    pub num_user_pairs: usize,
    /// Side length of the square deployment area, in network units.
    pub side: f64,
    /// Target average switch degree.
    pub avg_degree: f64,
    /// Each user connects to this many nearest switches.
    pub user_attach: usize,
    /// Maximum switch-to-switch edge length, expressed as
    /// `side · max_edge_factor / sqrt(num_switches)`. The default (15)
    /// exceeds the area diagonal at the paper's 100-switch setting, so
    /// Waxman's exponential locality alone shapes lengths: mean edge
    /// ≈ 3500 units (per-link success ≈ 0.7) and 3-5 hop routes — the
    /// regime the paper's Q-CAST anchor numbers imply (see DESIGN.md §4
    /// and EXPERIMENTS.md on calibration).
    pub max_edge_factor: f64,
    /// Random-graph family for the switch layer.
    pub kind: GeneratorKind,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            num_switches: 100,
            num_user_pairs: 20,
            side: 10_000.0,
            avg_degree: 10.0,
            user_attach: 2,
            max_edge_factor: 15.0,
            kind: GeneratorKind::default(),
        }
    }
}

impl TopologyConfig {
    /// The maximum allowed switch-to-switch edge length.
    #[must_use]
    pub fn max_edge_length(&self) -> f64 {
        self.side * self.max_edge_factor / (self.num_switches.max(1) as f64).sqrt()
    }

    /// Generates a topology deterministically from `seed`.
    ///
    /// The switch layer is produced by the configured [`GeneratorKind`],
    /// patched to be connected (disconnected components are bridged by their
    /// geometrically closest switch pair), and then users are attached and
    /// demands emitted.
    ///
    /// # Panics
    ///
    /// Panics if `num_switches == 0`, `user_attach == 0`, or
    /// `num_user_pairs > 0` while the configuration leaves users nothing to
    /// attach to.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Topology {
        assert!(self.num_switches > 0, "need at least one switch");
        assert!(
            self.user_attach > 0,
            "users must attach to at least one switch"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = match self.kind {
            GeneratorKind::Waxman { alpha } => generators::waxman(self, alpha, &mut rng),
            GeneratorKind::WattsStrogatz { rewire } => {
                generators::watts_strogatz(self, rewire, &mut rng)
            }
            GeneratorKind::Aiello { gamma } => generators::aiello(self, gamma, &mut rng),
            GeneratorKind::Grid => generators::grid(self),
        };
        connect::ensure_connected(&mut graph);
        let demands = attach::attach_users(&mut graph, self, &mut rng);
        Topology { graph, demands }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_graph::search;

    #[test]
    fn default_matches_paper() {
        let c = TopologyConfig::default();
        assert_eq!(c.num_switches, 100);
        assert_eq!(c.num_user_pairs, 20);
        assert_eq!(c.avg_degree, 10.0);
        assert_eq!(c.side, 10_000.0);
    }

    #[test]
    fn generator_names_round_trip() {
        for kind in GeneratorKind::all_default() {
            let parsed = GeneratorKind::parse(kind.name()).unwrap();
            assert_eq!(parsed.name(), kind.name());
        }
        assert_eq!(GeneratorKind::parse("GRID"), Some(GeneratorKind::Grid));
        assert_eq!(GeneratorKind::parse("erdos"), None);
    }

    #[test]
    fn max_edge_length_scales_inverse_sqrt() {
        let c = TopologyConfig {
            num_switches: 100,
            ..TopologyConfig::default()
        };
        assert!((c.max_edge_length() - 10_000.0 * 15.0 / 10.0).abs() < 1e-9);
        let c4 = TopologyConfig {
            num_switches: 400,
            ..c
        };
        assert!(c4.max_edge_length() < c.max_edge_length());
    }

    #[test]
    fn generation_is_deterministic() {
        let c = TopologyConfig {
            num_switches: 40,
            num_user_pairs: 5,
            ..Default::default()
        };
        let a = c.generate(3);
        let b = c.generate(3);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.demands, b.demands);
    }

    #[test]
    fn different_seeds_differ() {
        let c = TopologyConfig {
            num_switches: 40,
            num_user_pairs: 5,
            ..Default::default()
        };
        let a = c.generate(1);
        let b = c.generate(2);
        // Positions are continuous, so equality across seeds is a bug.
        assert_ne!(
            a.graph.node(a.demands[0].0).position,
            b.graph.node(b.demands[0].0).position
        );
    }

    #[test]
    fn every_kind_generates_connected_topology() {
        for kind in [
            GeneratorKind::Waxman { alpha: 0.4 },
            GeneratorKind::WattsStrogatz { rewire: 0.1 },
            GeneratorKind::Aiello { gamma: 2.5 },
            GeneratorKind::Grid,
        ] {
            let c = TopologyConfig {
                num_switches: 50,
                num_user_pairs: 5,
                kind,
                ..Default::default()
            };
            let t = c.generate(11);
            assert!(
                search::is_connected(&t.graph),
                "{kind:?} produced disconnected graph"
            );
            assert_eq!(t.switch_count(), 50);
            assert_eq!(t.user_ids().count(), 10);
            assert_eq!(t.demands.len(), 5);
        }
    }
}
