use fusion_graph::Metric;
use serde::{Deserialize, Serialize};

use crate::demand::Demand;
use crate::flow::{FlowGraph, WidthedPath};
use crate::metrics;
use crate::network::QuantumNetwork;

/// Which entanglement-swapping technology the switches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwapMode {
    /// n-fusion via GHZ measurements: switches fuse any number of links per
    /// state in one joint measurement; routes may merge into flow-like
    /// graphs (the paper's contribution).
    NFusion,
    /// Classic 2-qubit Bell-state-measurement swapping: routes stay plain
    /// paths with independent lanes (Q-CAST's model).
    Classic,
}

impl SwapMode {
    /// Scores one widthed path under this swapping technology: the
    /// probability that the demanded state is established through it.
    #[must_use]
    pub fn score(self, net: &QuantumNetwork, wp: &WidthedPath) -> Metric {
        match self {
            SwapMode::NFusion => metrics::widthed_path_rate(net, wp),
            SwapMode::Classic => Metric::new(metrics::classic::success_probability(net, wp)),
        }
    }
}

/// The routed structure serving one demanded quantum state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandPlan {
    /// The demand being served.
    pub demand: Demand,
    /// Accepted paths with per-hop widths. Under classic swapping every
    /// path owns its qubits exclusively; under n-fusion paths may share
    /// edges, and [`DemandPlan::flow`] is the authoritative merged
    /// structure (Algorithm 4 widens the flow, not the paths).
    pub paths: Vec<WidthedPath>,
    /// The merged flow-like graph (meaningful under n-fusion).
    pub flow: FlowGraph,
}

impl DemandPlan {
    /// A plan with no routes (rate zero).
    #[must_use]
    pub fn empty(demand: Demand) -> Self {
        DemandPlan {
            demand,
            paths: Vec::new(),
            flow: FlowGraph::new(demand.source, demand.dest),
        }
    }

    /// `true` when no route was allocated.
    #[must_use]
    pub fn is_unserved(&self) -> bool {
        self.paths.is_empty()
    }

    /// Analytic success probability of this demand under `mode`.
    ///
    /// * n-fusion: Equation 1 on the merged flow-like graph.
    /// * classic: independent alternatives — `1 - Π (1 - s_i)` over the
    ///   accepted paths' BSM success probabilities.
    #[must_use]
    pub fn rate(&self, net: &QuantumNetwork, mode: SwapMode) -> f64 {
        match mode {
            SwapMode::NFusion => metrics::flow_rate(net, &self.flow).value(),
            SwapMode::Classic => {
                let fail: f64 = self
                    .paths
                    .iter()
                    .map(|wp| 1.0 - metrics::classic::success_probability(net, wp))
                    .product();
                1.0 - fail
            }
        }
    }
}

/// The routing decision for every demanded state in the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Swapping technology the plan was built for.
    pub mode: SwapMode,
    /// One plan per demand, in demand order.
    pub plans: Vec<DemandPlan>,
    /// Qubits left at each node after routing (indexed by node id).
    pub leftover: Vec<u32>,
    /// Number of single links added by Algorithm 4 (0 when disabled).
    pub alg4_links: usize,
}

impl NetworkPlan {
    /// Analytic success probability of demand `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn demand_rate(&self, net: &QuantumNetwork, i: usize) -> f64 {
        self.plans[i].rate(net, self.mode)
    }

    /// The network entanglement rate: the expected number of demanded
    /// states established per attempt (paper §III-C).
    #[must_use]
    pub fn total_rate(&self, net: &QuantumNetwork) -> f64 {
        self.plans.iter().map(|p| p.rate(net, self.mode)).sum()
    }

    /// Number of demands that received at least one route.
    #[must_use]
    pub fn served_demands(&self) -> usize {
        self.plans.iter().filter(|p| !p.is_unserved()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandId;
    use fusion_graph::{NodeId, Path};

    fn simple_net() -> (QuantumNetwork, NodeId, NodeId, NodeId) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v = b.switch(1.0, 0.0, 10);
        let d = b.user(2.0, 0.0);
        b.link(s, v).unwrap();
        b.link(v, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.8);
        (net, s, v, d)
    }

    #[test]
    fn empty_plan_has_zero_rate() {
        let (net, s, _v, d) = simple_net();
        let plan = DemandPlan::empty(Demand::new(DemandId::new(0), s, d));
        assert!(plan.is_unserved());
        assert_eq!(plan.rate(&net, SwapMode::NFusion), 0.0);
        assert_eq!(plan.rate(&net, SwapMode::Classic), 0.0);
    }

    #[test]
    fn nfusion_rate_uses_flow() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        plan.flow.add_path(&path, 2);
        plan.paths.push(WidthedPath::uniform(path, 2));
        let c = 1.0 - 0.25;
        assert!((plan.rate(&net, SwapMode::NFusion) - c * c * 0.8).abs() < 1e-12);
    }

    #[test]
    fn classic_rate_combines_paths_independently() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        plan.paths.push(WidthedPath::uniform(path.clone(), 1));
        plan.paths.push(WidthedPath::uniform(path, 1));
        let single = 0.5 * 0.5 * 0.8;
        let expect = 1.0 - (1.0 - single) * (1.0 - single);
        assert!((plan.rate(&net, SwapMode::Classic) - expect).abs() < 1e-12);
    }

    #[test]
    fn network_plan_totals() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut p1 = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        p1.flow.add_path(&path, 1);
        p1.paths.push(WidthedPath::uniform(path, 1));
        let p2 = DemandPlan::empty(Demand::new(DemandId::new(1), d, s));
        let plan = NetworkPlan {
            mode: SwapMode::NFusion,
            plans: vec![p1, p2],
            leftover: net.capacities(),
            alg4_links: 0,
        };
        assert_eq!(plan.served_demands(), 1);
        assert!((plan.total_rate(&net) - plan.demand_rate(&net, 0)).abs() < 1e-12);
        assert_eq!(plan.demand_rate(&net, 1), 0.0);
    }

    #[test]
    fn score_matches_mode() {
        let (net, s, v, d) = simple_net();
        let wp = WidthedPath::uniform(Path::new(vec![s, v, d]), 2);
        let nf = SwapMode::NFusion.score(&net, &wp).value();
        let cl = SwapMode::Classic.score(&net, &wp).value();
        assert!((nf - 0.75 * 0.75 * 0.8).abs() < 1e-12);
        // Classic: one pre-committed lane regardless of width: p²q.
        assert!((cl - 0.25 * 0.8).abs() < 1e-12);
    }
}
