//! Switch-layer random-graph generators.
//!
//! Each generator returns a switch-only graph; users are attached in a later
//! stage. Positions always live in the configured square area so that edge
//! lengths (and therefore link success probabilities) are well-defined for
//! every family, including the non-geometric ones.

mod aiello;
mod grid;
mod watts;
mod waxman;

pub mod deterministic;

pub(crate) use aiello::aiello;
pub(crate) use grid::grid;
pub(crate) use watts::watts_strogatz;
pub(crate) use waxman::waxman;

use fusion_graph::UnGraph;
use rand::Rng;

use crate::geometry::Position;
use crate::model::{Link, Site};

/// Samples `n` switch positions and inserts them as nodes.
pub(crate) fn place_switches(n: usize, side: f64, rng: &mut impl Rng) -> UnGraph<Site, Link> {
    let mut graph = UnGraph::with_capacity(n, n * 4);
    for _ in 0..n {
        graph.add_node(Site::switch(Position::sample(rng, side)));
    }
    graph
}

/// Euclidean length between two already-inserted sites.
pub(crate) fn span(graph: &UnGraph<Site, Link>, u: usize, v: usize) -> f64 {
    graph
        .node(fusion_graph::NodeId::new(u))
        .position
        .distance(graph.node(fusion_graph::NodeId::new(v)).position)
}
