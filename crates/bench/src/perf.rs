//! Wall-clock perf workloads with machine-readable output.
//!
//! Criterion's statistical micro-benches (`cargo bench`) are great for
//! local investigation but awkward to gate CI on: the vendored harness has
//! no baseline comparison and shared runners are noisy. This module defines
//! a small set of *fixed, deterministic* workloads, times them with plain
//! `Instant` medians, and serializes the results as a flat JSON map so the
//! `perfbench` binary can emit and compare them (the CI bench job fails on
//! large threshold-based regressions, per ROADMAP).
//!
//! The committed reference numbers live in `BENCH_BASELINE.json` at the
//! repo root; regenerate them with
//! `cargo run --release -p fusion-bench --bin perfbench -- run --out BENCH_BASELINE.json`.

use std::hint::black_box;
use std::time::Instant;

use fusion_core::algorithms::{alg1, alg2, alg3_greedy, AdmitStrategy, MergeCounters};
use fusion_core::{metrics, SwapMode};
use fusion_graph::{SearchCounters, SearchScratch};
use fusion_sim::evaluate::{estimate_plan_counted, McCounters};
use fusion_telemetry::Registry;

use crate::workloads::{Algorithm, ExperimentConfig};

/// Median wall time of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Workload name (stable across refactors; the baseline key).
    pub name: String,
    /// Median wall time of one workload iteration, in nanoseconds.
    pub median_ns: f64,
    /// Timed repetitions the median was taken over.
    pub reps: usize,
}

/// Outcome of comparing one workload against the committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Workload name.
    pub name: String,
    /// Baseline median (ns).
    pub baseline_ns: f64,
    /// Current median (ns), after calibration scaling when available.
    pub current_ns: f64,
    /// `current / baseline - 1`; positive means slower.
    pub ratio: f64,
    /// Whether the ratio exceeds the regression threshold.
    pub regressed: bool,
}

/// Name of the machine-speed calibration workload. It is emitted and used
/// to normalize comparisons across machines, but never gated itself.
pub const CALIBRATION: &str = "calibration";

/// Stable workload names, in execution order. Must stay in sync with the
/// committed `BENCH_BASELINE.json` — `workload_set_matches_baseline_keys`
/// fails otherwise, so a new workload cannot silently escape the CI gate.
pub const WORKLOADS: [&str; 12] = [
    CALIBRATION,
    "alg1_path_search",
    "alg2_selection",
    "eq1_flow_rate",
    "mc_round",
    "alg2_select",
    "alg3_merge",
    "scale_1k_route",
    "serve_replay",
    "serve_replay_incremental",
    "serve_replay_churn",
    "serve_replay_churn_scratch",
];

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// Times `work` over `reps` repetitions (plus one warmup) and returns the
/// median nanoseconds per repetition.
fn time_workload(name: &str, reps: usize, mut work: impl FnMut()) -> BenchResult {
    work(); // warmup: page in code and data
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        work();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    BenchResult {
        name: name.to_string(),
        median_ns: median(samples),
        reps,
    }
}

/// Fixed-cost arithmetic loop used to estimate the host's single-core
/// speed, so baselines captured on one machine can be compared on another.
fn run_calibration(reps: usize) -> BenchResult {
    time_workload(CALIBRATION, reps, || {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..2_000_000u64 {
            acc ^= acc << 13;
            acc ^= acc >> 7;
            acc ^= acc << 17;
            acc = acc.wrapping_add(i);
        }
        black_box(acc);
    })
}

/// Runs the named workload with `reps` timed repetitions.
///
/// # Panics
///
/// Panics if `name` is not one of [`WORKLOADS`] or `reps == 0`.
#[must_use]
pub fn run_workload(name: &str, reps: usize) -> BenchResult {
    run_workload_with(name, reps, &Registry::disabled())
}

/// [`run_workload`] with routing/search/MC counters from the timed region
/// recorded into `registry` (setup work — topology generation, trace
/// generation, candidate construction — stays uncounted). With an enabled
/// registry the timed code paths are identical to the disabled run except
/// for the counter increments themselves, which is exactly what the
/// `telemetry_overhead_within_gate` regression test measures. Counter
/// totals accumulate over the warmup plus all `reps` repetitions, so a
/// snapshot taken afterwards is deterministic for a fixed `(name, reps)`.
///
/// # Panics
///
/// As [`run_workload`].
#[must_use]
pub fn run_workload_with(name: &str, reps: usize, registry: &Registry) -> BenchResult {
    assert!(reps > 0, "need at least one timed repetition");
    match name {
        CALIBRATION => run_calibration(reps),
        "alg1_path_search" => {
            // The workload is "answer these path queries"; since the
            // scratch refactor the production callers hold a reusable
            // arena, so the timed loop does too.
            let config = ExperimentConfig::quick();
            let (net, demands) = config.instance(0);
            let caps = net.capacities();
            let cons = alg1::PathConstraints::default();
            let mut scratch = SearchScratch::with_capacity(net.node_count());
            scratch.counters = SearchCounters::from_registry(registry, "alg1.search");
            time_workload(name, reps, || {
                for d in &demands {
                    for width in [1u32, 2, 3] {
                        black_box(alg1::largest_rate_path_with(
                            &mut scratch,
                            &net,
                            d.source,
                            d.dest,
                            width,
                            &caps,
                            &cons,
                        ));
                    }
                }
            })
        }
        "alg2_selection" => {
            let config = ExperimentConfig::quick();
            let (net, demands) = config.instance(0);
            let caps = net.capacities();
            time_workload(name, reps, || {
                black_box(alg2::paths_selection_counted(
                    &net,
                    &demands,
                    &caps,
                    config.h,
                    5,
                    SwapMode::NFusion,
                    registry,
                ));
            })
        }
        "eq1_flow_rate" => {
            let config = ExperimentConfig::quick();
            let (net, demands) = config.instance(0);
            let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
            time_workload(name, reps, || {
                for dp in &plan.plans {
                    black_box(metrics::flow_rate(&net, &dp.flow));
                }
            })
        }
        "mc_round" => {
            let config = ExperimentConfig::quick();
            let (net, demands) = config.instance(0);
            let plan = Algorithm::AlgNFusion.route(&net, &demands, config.h);
            let mc = McCounters::from_registry(registry);
            time_workload(name, reps, || {
                black_box(estimate_plan_counted(&net, &plan, 2_000, config.seed, &mc));
            })
        }
        "alg2_select" => {
            // Algorithm 2's width-descent candidate construction at the
            // `large-10k-grid` preset — the ROADMAP's former top
            // single-core bottleneck. Topology generation is setup, not
            // measured. The timed region covers a fixed 8-demand slice of
            // the preset's 50 demands so a 7-rep CI run stays in tens of
            // seconds; the per-demand descent is what the gate needs to
            // watch, and it is identical across demands. (The retained
            // per-width sweep `paths_selection_reference` is several
            // times slower on this workload; see EXPERIMENTS.md.)
            let mut config = ExperimentConfig::large_grid(10_000);
            config.threads = 1;
            let (net, demands) = config.instance(0);
            let caps = net.capacities();
            let slice = &demands[..8.min(demands.len())];
            let max_width = net.max_switch_capacity();
            time_workload(name, reps, || {
                black_box(alg2::paths_selection_counted(
                    &net,
                    slice,
                    &caps,
                    config.h,
                    max_width,
                    SwapMode::NFusion,
                    registry,
                ));
            })
        }
        "alg3_merge" => {
            // The Algorithm 3 incremental gain-queue merge at the
            // `large-10k-grid` preset — the ROADMAP's former top
            // bottleneck. Topology generation and candidate construction
            // are setup, not measured: the timed region is the merge
            // alone, so a regression here points straight at the queue.
            // (The full-re-scan oracle `paths_merge_greedy_reference` is
            // ~30x slower on this workload; see EXPERIMENTS.md.)
            let mut config = ExperimentConfig::large_grid(10_000);
            config.threads = 1;
            let (net, demands) = config.instance(0);
            let caps = net.capacities();
            let candidates = alg2::paths_selection(
                &net,
                &demands,
                &caps,
                config.h,
                net.max_switch_capacity(),
                SwapMode::NFusion,
            );
            let merge_counters = MergeCounters::from_registry(registry);
            time_workload(name, reps, || {
                black_box(alg3_greedy::paths_merge_greedy_counted(
                    &net,
                    &demands,
                    &candidates,
                    SwapMode::NFusion,
                    true,
                    None,
                    &caps,
                    &merge_counters,
                ));
            })
        }
        "scale_1k_route" => {
            // End-to-end 1k-switch grid workload: routing plus a short
            // Monte Carlo estimate. Topology generation is setup, not
            // measured. Pinned to one thread: every gated workload must
            // be single-threaded so the single-core `calibration` factor
            // can normalize across machines — a core-count difference
            // between the baseline host and a CI runner would otherwise
            // trip (or mask) the gate on parallel workloads. Parallel
            // scaling is covered by the bit-identity tests and the
            // Criterion `scale` bench instead.
            let mut config = ExperimentConfig::large_grid(1_000);
            config.threads = 1;
            let (net, demands) = config.instance(0);
            let mc = McCounters::from_registry(registry);
            time_workload(name, reps, || {
                let plan = Algorithm::AlgNFusion
                    .route_threads_counted(&net, &demands, config.h, 1, registry);
                black_box(
                    estimate_plan_counted(&net, &plan, config.mc_rounds, config.seed, &mc)
                        .total_rate(),
                );
            })
        }
        "serve_replay" => {
            // The online engine: a fixed admit/depart/link-down trace
            // replayed from a fresh service state each repetition.
            // Network and trace generation are setup, not measured; the
            // timed region is admission routing against the residual
            // ledger plus ledger charge/release — the serve crate's hot
            // path. Pinned to `FromScratch` so this gate keeps watching
            // the reference admission path after the incremental cache
            // became the default strategy (the cache has its own gate,
            // `serve_replay_incremental`). Admissions are inherently
            // single-threaded (one demand at a time), satisfying the
            // single-core calibration rule.
            let preset = fusion_serve::resolve_preset("quick").expect("quick serve preset");
            let net = preset.network_instance(0);
            let mut routing = preset.routing_config();
            routing.admit_strategy = AdmitStrategy::FromScratch;
            let trace_config = fusion_serve::TraceConfig {
                events: 600,
                link_down_rate: 0.05,
                ..fusion_serve::TraceConfig::default()
            };
            let probe = fusion_serve::ServiceState::new(net.clone(), routing);
            let trace = fusion_serve::generate(probe.network(), &trace_config);
            time_workload(name, reps, || {
                let mut state = fusion_serve::ServiceState::with_telemetry(
                    net.clone(),
                    routing,
                    registry.clone(),
                );
                let report = fusion_serve::replay(
                    &mut state,
                    &trace,
                    &fusion_serve::ReplayOptions::default(),
                );
                black_box(report.fingerprint());
            })
        }
        "serve_replay_incremental" => {
            // The incremental admission cache in its design regime:
            // recurring demands (a small user pool) and long-held
            // sessions, so most arrivals are full candidate-cache hits
            // and the timed region is dominated by cache lookup + merge
            // rather than width-descent searches. Same trace replayed
            // from a fresh state (cold cache) each repetition; the
            // speedup over `serve_replay`-style from-scratch admission
            // on this regime is recorded in EXPERIMENTS.md. A regression
            // here points at the cache (invalidation precision, lookup
            // cost) rather than the reference pipeline.
            let preset = fusion_serve::resolve_preset("quick").expect("quick serve preset");
            let net = preset.network_instance(0);
            let mut routing = preset.routing_config();
            routing.admit_strategy = AdmitStrategy::Incremental;
            let trace_config = fusion_serve::TraceConfig {
                events: 600,
                mean_holding: 400.0,
                link_down_rate: 0.05,
                user_pool: 4,
                ..fusion_serve::TraceConfig::default()
            };
            let probe = fusion_serve::ServiceState::new(net.clone(), routing);
            let trace = fusion_serve::generate(probe.network(), &trace_config);
            time_workload(name, reps, || {
                let mut state = fusion_serve::ServiceState::with_telemetry(
                    net.clone(),
                    routing,
                    registry.clone(),
                );
                let report = fusion_serve::replay(
                    &mut state,
                    &trace,
                    &fusion_serve::ReplayOptions::default(),
                );
                black_box(report.fingerprint());
            })
        }
        "serve_replay_churn_scratch" => {
            // The churn trace of `serve_replay_churn`, replayed with pure
            // from-scratch admission: the recompute reference the
            // incremental run is compared against on the regime where
            // certificates decide whether cached slices survive churn at
            // all. The `serve_replay_churn / serve_replay_churn_scratch`
            // ratio (same trace, same reps, same calibration) is the
            // number EXPERIMENTS.md reports for the user-pool-0 churn
            // regime.
            let preset = fusion_serve::resolve_preset("quick").expect("quick serve preset");
            let net = preset.network_instance(0);
            let mut routing = preset.routing_config();
            routing.admit_strategy = AdmitStrategy::FromScratch;
            let trace_config = fusion_serve::TraceConfig {
                events: 600,
                mean_holding: 8.0,
                link_down_rate: 0.05,
                user_pool: 0,
                ..fusion_serve::TraceConfig::default()
            };
            let probe = fusion_serve::ServiceState::new(net.clone(), routing);
            let trace = fusion_serve::generate(probe.network(), &trace_config);
            time_workload(name, reps, || {
                let mut state = fusion_serve::ServiceState::with_telemetry(
                    net.clone(),
                    routing,
                    registry.clone(),
                );
                let report = fusion_serve::replay(
                    &mut state,
                    &trace,
                    &fusion_serve::ReplayOptions::default(),
                );
                black_box(report.fingerprint());
            })
        }
        "serve_replay_churn" => {
            // The incremental cache's *adversarial* regime: every arrival
            // a fresh random user pair (`user_pool: 0`) and short-held
            // sessions, so footprints die in fractions of an event and
            // almost every admission recomputes — plus link-downs to
            // drive `fail_link` eviction and the slice-repair machinery.
            // This gate bounds the cache's overhead where it cannot win:
            // a regression here means the miss path (lookup, footprint
            // recording, store, invalidation scans, repair bookkeeping)
            // got more expensive relative to pure from-scratch routing.
            let preset = fusion_serve::resolve_preset("quick").expect("quick serve preset");
            let net = preset.network_instance(0);
            let mut routing = preset.routing_config();
            routing.admit_strategy = AdmitStrategy::Incremental;
            let trace_config = fusion_serve::TraceConfig {
                events: 600,
                mean_holding: 8.0,
                link_down_rate: 0.05,
                user_pool: 0,
                ..fusion_serve::TraceConfig::default()
            };
            let probe = fusion_serve::ServiceState::new(net.clone(), routing);
            let trace = fusion_serve::generate(probe.network(), &trace_config);
            time_workload(name, reps, || {
                let mut state = fusion_serve::ServiceState::with_telemetry(
                    net.clone(),
                    routing,
                    registry.clone(),
                );
                let report = fusion_serve::replay(
                    &mut state,
                    &trace,
                    &fusion_serve::ReplayOptions::default(),
                );
                black_box(report.fingerprint());
            })
        }
        other => panic!("unknown workload {other}; known: {}", WORKLOADS.join(" ")),
    }
}

/// Serializes results as a flat JSON object `{"name": median_ns, ...}`.
#[must_use]
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!("  \"{}\": {:.1}{}\n", r.name, r.median_ns, comma));
    }
    out.push_str("}\n");
    out
}

/// Parses the flat JSON object written by [`to_json`].
///
/// Only the exact shape produced by this module is supported: an object
/// whose values are plain (non-scientific) numbers and whose keys contain
/// no escapes — enough for the bench gate without a JSON dependency.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "expected a JSON object".to_string())?;
    let mut out = Vec::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed entry {entry:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("malformed key in {entry:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("malformed value in {entry:?}: {e}"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

/// Compares current results against a baseline.
///
/// When both sides carry the [`CALIBRATION`] workload, current numbers are
/// scaled by `baseline_calibration / current_calibration` first, so a
/// slower or faster host does not trip the gate. A workload present in the
/// baseline but missing from `current` is reported as a regression (it
/// means a gated bench was silently dropped); extra current workloads are
/// ignored.
#[must_use]
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    threshold: f64,
) -> Vec<Comparison> {
    let find =
        |set: &[(String, f64)], name: &str| set.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let scale = match (find(baseline, CALIBRATION), find(current, CALIBRATION)) {
        (Some(b), Some(c)) if b > 0.0 && c > 0.0 => b / c,
        _ => 1.0,
    };
    baseline
        .iter()
        .filter(|(name, _)| name != CALIBRATION)
        .map(|(name, base)| match find(current, name) {
            Some(cur) => {
                let scaled = cur * scale;
                let ratio = scaled / base - 1.0;
                Comparison {
                    name: name.clone(),
                    baseline_ns: *base,
                    current_ns: scaled,
                    ratio,
                    regressed: ratio > threshold,
                }
            }
            None => Comparison {
                name: name.clone(),
                baseline_ns: *base,
                current_ns: f64::NAN,
                ratio: f64::INFINITY,
                regressed: true,
            },
        })
        .collect()
}

/// Renders a comparison table; the caller decides how to exit.
#[must_use]
pub fn render_comparison(comparisons: &[Comparison], threshold: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>14}{:>14}{:>9}  gate (threshold +{:.0}%)\n",
        "workload",
        "baseline",
        "current",
        "delta",
        threshold * 100.0
    ));
    for c in comparisons {
        let status = if c.regressed { "REGRESSED" } else { "ok" };
        if c.current_ns.is_nan() {
            out.push_str(&format!(
                "{:<22}{:>12.0}us{:>14}{:>9}  {status}\n",
                c.name,
                c.baseline_ns / 1_000.0,
                "missing",
                "-"
            ));
        } else {
            out.push_str(&format!(
                "{:<22}{:>12.0}us{:>12.0}us{:>+8.1}%  {status}\n",
                c.name,
                c.baseline_ns / 1_000.0,
                c.current_ns / 1_000.0,
                c.ratio * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let results = vec![
            BenchResult {
                name: "a".into(),
                median_ns: 1234.5,
                reps: 3,
            },
            BenchResult {
                name: "b".into(),
                median_ns: 6789.0,
                reps: 3,
            },
        ];
        let parsed = parse_json(&to_json(&results)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert!((parsed[0].1 - 1234.5).abs() < 1e-9);
        assert!((parsed[1].1 - 6789.0).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("not json").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("{\"a\": x}").is_err());
    }

    #[test]
    fn compare_flags_regressions_and_missing() {
        let base = vec![("x".to_string(), 100.0), ("y".to_string(), 100.0)];
        let current = vec![("x".to_string(), 150.0)];
        let cmp = compare(&base, &current, 0.4);
        assert_eq!(cmp.len(), 2);
        assert!(cmp[0].regressed, "50% over a 40% threshold must fail");
        assert!(cmp[1].regressed, "missing workload must fail");
        let ok = compare(&base, &[("x".into(), 120.0), ("y".into(), 90.0)], 0.4);
        assert!(!ok[0].regressed && !ok[1].regressed);
    }

    #[test]
    fn calibration_scales_comparison() {
        // Current machine is 2x slower (calibration 200 vs 100): a raw 180
        // would regress, but scaled (90) it must pass.
        let base = vec![(CALIBRATION.to_string(), 100.0), ("x".to_string(), 100.0)];
        let current = vec![(CALIBRATION.to_string(), 200.0), ("x".to_string(), 180.0)];
        let cmp = compare(&base, &current, 0.4);
        assert_eq!(cmp.len(), 1, "calibration itself is not gated");
        assert!(!cmp[0].regressed, "calibration scaling must apply");
        assert!((cmp[0].current_ns - 90.0).abs() < 1e-9);
    }

    #[test]
    fn median_is_positional() {
        assert_eq!(median(vec![5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(vec![2.0, 1.0]), 2.0);
    }

    #[test]
    fn workload_set_matches_baseline_keys() {
        // The committed baseline must cover exactly the gated workload
        // set: a workload added to the binary without a regenerated
        // baseline would never be gated (compare ignores extra current
        // results), and a key lingering in the baseline after a workload
        // rename would fail every CI run as "missing". Regenerate with:
        // cargo run --release -p fusion-bench --bin perfbench -- run --out BENCH_BASELINE.json
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BASELINE.json");
        let text = std::fs::read_to_string(path).expect("BENCH_BASELINE.json at the repo root");
        let baseline: std::collections::BTreeSet<String> = parse_json(&text)
            .expect("committed baseline parses")
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        let workloads: std::collections::BTreeSet<String> =
            WORKLOADS.iter().map(|w| (*w).to_string()).collect();
        assert_eq!(
            workloads, baseline,
            "WORKLOADS and BENCH_BASELINE.json keys diverged; regenerate the baseline"
        );
    }

    #[test]
    fn quick_workloads_produce_positive_times() {
        // Keep this to the two cheapest workloads so the test stays fast.
        for name in ["eq1_flow_rate", "alg1_path_search"] {
            let r = run_workload(name, 1);
            assert!(r.median_ns > 0.0, "{name} measured nothing");
        }
    }

    #[test]
    fn enabled_registry_records_workload_counters() {
        // The cheapest instrumented workload must populate its counters
        // when handed an enabled registry, and the default (disabled)
        // path must register nothing at all.
        let registry = Registry::enabled();
        let _ = run_workload_with("alg1_path_search", 1, &registry);
        let snap = registry.snapshot();
        assert!(
            snap.value("alg1.search.pops") > 0,
            "instrumented workload recorded nothing: {snap:?}"
        );

        let disabled = Registry::disabled();
        let _ = run_workload_with("alg1_path_search", 1, &disabled);
        assert!(disabled.snapshot().iter().next().is_none());
    }

    /// The overhead regression gate from the telemetry design: running the
    /// two deepest-instrumented workloads with an *enabled* registry must
    /// stay within the same threshold the CI bench gate applies to code
    /// changes (`--threshold 0.40` in `ci.yml`), measured against the
    /// disabled-registry run on the same machine in the same process (so
    /// no calibration scaling is needed). Release-grade runtime: minutes.
    #[test]
    #[ignore = "telemetry overhead gate; minutes of runtime, run with -- --ignored in release"]
    fn telemetry_overhead_within_gate() {
        const GATED: [&str; 2] = ["alg2_select", "serve_replay_incremental"];
        // Same reps as the CI gate: at 3 reps the ~4 ms incremental-replay
        // median is noisy enough to trip the threshold spuriously.
        const REPS: usize = 7;
        const THRESHOLD: f64 = 0.40;
        let timings = |registry: &Registry| -> Vec<(String, f64)> {
            GATED
                .iter()
                .map(|w| {
                    let r = run_workload_with(w, REPS, registry);
                    (r.name, r.median_ns)
                })
                .collect()
        };
        let disabled = timings(&Registry::disabled());
        let enabled = timings(&Registry::enabled());
        let cmp = compare(&disabled, &enabled, THRESHOLD);
        assert!(
            cmp.iter().all(|c| !c.regressed),
            "enabled telemetry exceeded the bench gate:\n{}",
            render_comparison(&cmp, THRESHOLD)
        );
    }
}
