//! `fusion-serve` cannot depend on `fusion-bench` (perfbench's
//! `serve_replay` workload depends on serve), so serve carries its own
//! preset table mirroring the instance-shaping fields of this crate's
//! `ExperimentConfig` presets. This test — in the one crate that links
//! both — is what keeps the two tables identical.

use fusion_bench::workloads::{preset_names, resolve_preset};

#[test]
fn serve_presets_mirror_bench() {
    let serve_names: Vec<&str> = fusion_serve::presets().iter().map(|p| p.name).collect();
    assert_eq!(
        serve_names,
        preset_names(),
        "serve and bench must expose the same preset names in the same order"
    );
    for serve_preset in fusion_serve::presets() {
        let bench_config = resolve_preset(serve_preset.name)
            .unwrap_or_else(|| panic!("bench preset {} missing", serve_preset.name));
        assert_eq!(
            serve_preset.topology, bench_config.topology,
            "{}: topology diverged",
            serve_preset.name
        );
        assert_eq!(
            serve_preset.network, bench_config.network,
            "{}: network params diverged",
            serve_preset.name
        );
        assert_eq!(
            serve_preset.h, bench_config.h,
            "{}: h diverged",
            serve_preset.name
        );
        assert_eq!(
            serve_preset.seed, bench_config.seed,
            "{}: seed diverged",
            serve_preset.name
        );
    }
}

#[test]
fn serve_instances_match_bench_instances() {
    // Same preset name, same instance index => the exact same network:
    // replay results on a serve preset are directly comparable to the
    // batch experiments of the same name.
    let serve_preset = fusion_serve::resolve_preset("quick").unwrap();
    let bench_config = resolve_preset("quick").unwrap();
    for i in 0..2 {
        let from_serve = serve_preset.network_instance(i);
        let (from_bench, _) = bench_config.instance(i);
        assert_eq!(from_serve.node_count(), from_bench.node_count());
        assert_eq!(
            from_serve.graph().edge_count(),
            from_bench.graph().edge_count()
        );
        assert_eq!(from_serve.capacities(), from_bench.capacities());
    }
}
