//! Generation-stamp validity tracking shared by the reusable scratch
//! structures ([`SearchScratch`](crate::search::SearchScratch),
//! [`GenerationalDisjointSets`](crate::GenerationalDisjointSets)).
//!
//! The pattern: payload buffers are never cleared between runs; instead an
//! entry is valid only while its stamp equals the current generation, and
//! starting a new run just bumps the generation — O(1) reset. The subtle
//! invariants (new or resized entries must start invalid, counter wrap
//! pays one full clear) live here, single-sourced.

/// Per-entry generation stamps with an O(1) bulk invalidate.
#[derive(Debug, Clone)]
pub(crate) struct GenerationStamps {
    stamp: Vec<u32>,
    generation: u32,
}

impl Default for GenerationStamps {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl GenerationStamps {
    /// Creates stamps for `n` entries, all invalid (generation starts at 1
    /// and fresh stamps at 0).
    pub(crate) fn with_capacity(n: usize) -> Self {
        GenerationStamps {
            stamp: vec![0; n],
            generation: 1,
        }
    }

    /// Number of entries the stamp buffer covers.
    pub(crate) fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a new generation covering at least `n` entries: grows the
    /// buffer if needed (new entries invalid) and invalidates every
    /// existing entry in O(1) — except on `u32` counter wrap, which pays
    /// one full clear.
    pub(crate) fn advance(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// `true` if entry `i` was marked during the current generation.
    #[inline]
    pub(crate) fn is_current(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    /// Marks entry `i` as valid for the current generation.
    #[inline]
    pub(crate) fn mark(&mut self, i: usize) {
        self.stamp[i] = self.generation;
    }
}

/// A set of `usize` keys with O(1) bulk clear, built on
/// [`GenerationStamps`].
///
/// This is the "generational set" idiom used anywhere a hot loop needs a
/// visited/settled/reached set that resets per run without an O(n) fill:
/// [`SearchScratch`](crate::search::SearchScratch) tracks settled nodes
/// with one, and [`DescentReach`](crate::feasibility::DescentReach) keeps
/// its reached/expanded sets in them across per-demand resets.
#[derive(Debug, Clone, Default)]
pub(crate) struct StampedSet {
    stamps: GenerationStamps,
}

impl StampedSet {
    /// Empties the set and grows it to cover keys `0..n`, in O(1)
    /// (amortized over the occasional buffer growth / counter wrap).
    pub(crate) fn clear(&mut self, n: usize) {
        self.stamps.advance(n);
    }

    /// Inserts `key`; returns `true` if it was not yet present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the range covered by the last
    /// [`clear`](StampedSet::clear).
    #[inline]
    pub(crate) fn insert(&mut self, key: usize) -> bool {
        if self.stamps.is_current(key) {
            false
        } else {
            self.stamps.mark(key);
            true
        }
    }

    /// `true` if `key` was inserted since the last clear.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the range covered by the last
    /// [`clear`](StampedSet::clear).
    #[inline]
    pub(crate) fn contains(&self, key: usize) -> bool {
        self.stamps.is_current(key)
    }
}

/// A `StampedSet` that also records its members, so the set can be
/// enumerated after a run.
///
/// This is the *footprint-recording* idiom: a hot loop inserts every key
/// it touches (O(1), no hashing), and afterwards the member list *is* the
/// read set — e.g. the nodes whose feasibility a width-descent search
/// depended on, which the serve layer indexes to invalidate cached
/// candidates precisely (see `docs/ARCHITECTURE.md`, "the generation
/// discipline"). [`DescentReach`](crate::feasibility::DescentReach)
/// tracks its reached set in one so the dependency set of a negative
/// reachability certificate can be read back out.
///
/// `clear` is O(previous members) but allocation-free after warmup;
/// `insert` and `contains` are O(1).
#[derive(Debug, Clone, Default)]
pub struct RecordedSet {
    set: StampedSet,
    members: Vec<usize>,
}

impl RecordedSet {
    /// Creates an empty, reusable set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the set and grows it to cover keys `0..n`.
    pub fn clear(&mut self, n: usize) {
        self.set.clear(n);
        self.members.clear();
    }

    /// Inserts `key`; returns `true` if it was not yet present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the range covered by the last
    /// [`clear`](RecordedSet::clear).
    #[inline]
    pub fn insert(&mut self, key: usize) -> bool {
        if self.set.insert(key) {
            self.members.push(key);
            true
        } else {
            false
        }
    }

    /// `true` if `key` was inserted since the last clear.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the range covered by the last
    /// [`clear`](RecordedSet::clear).
    #[inline]
    #[must_use]
    pub fn contains(&self, key: usize) -> bool {
        self.set.contains(key)
    }

    /// The inserted keys, in insertion order.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of distinct keys inserted since the last clear.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if nothing was inserted since the last clear.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_start_invalid_and_mark_per_generation() {
        let mut s = GenerationStamps::with_capacity(3);
        assert!(!s.is_current(0));
        s.mark(0);
        assert!(s.is_current(0));
        s.advance(3);
        assert!(!s.is_current(0), "advance invalidates prior marks");
        s.mark(1);
        assert!(s.is_current(1) && !s.is_current(0));
    }

    #[test]
    fn growth_keeps_new_entries_invalid() {
        let mut s = GenerationStamps::default();
        s.advance(2);
        s.mark(1);
        s.advance(5);
        assert_eq!(s.len(), 5);
        for i in 0..5 {
            assert!(!s.is_current(i));
        }
    }

    #[test]
    fn stamped_set_inserts_and_clears() {
        let mut s = StampedSet::default();
        s.clear(4);
        assert!(!s.contains(2));
        assert!(s.insert(2), "first insert reports new");
        assert!(!s.insert(2), "second insert reports present");
        assert!(s.contains(2));
        s.clear(6);
        for k in 0..6 {
            assert!(!s.contains(k), "clear must empty the set");
        }
        assert!(s.insert(5));
    }

    #[test]
    fn counter_wrap_clears_instead_of_aliasing() {
        let mut s = GenerationStamps::with_capacity(2);
        s.generation = u32::MAX;
        s.mark(0); // stamped u32::MAX
        s.advance(2); // wraps: fill(0), generation = 1
        assert!(!s.is_current(0));
        assert!(!s.is_current(1));
        s.mark(1);
        assert!(s.is_current(1));
    }
}
