use std::fmt;

/// A signed n-qubit Pauli operator in the symplectic `(x, z)` encoding.
///
/// Qubit `j` carries `I`, `X`, `Z`, or `Y` according to `(x[j], z[j])` being
/// `(0,0)`, `(1,0)`, `(0,1)`, or `(1,1)`. `negative` flips the global sign.
///
/// # Examples
///
/// ```
/// use fusion_quantum::stabilizer::PauliString;
///
/// // The X⊗X⊗X stabilizer of a 3-qubit GHZ state.
/// let xs = PauliString::x_string(3, &[0, 1, 2]);
/// assert_eq!(xs.to_string(), "+XXX");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    x: Vec<bool>,
    z: Vec<bool>,
    negative: bool,
}

impl PauliString {
    /// The identity on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        PauliString {
            x: vec![false; n],
            z: vec![false; n],
            negative: false,
        }
    }

    /// An operator with `X` on each listed qubit and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of bounds.
    #[must_use]
    pub fn x_string(n: usize, qubits: &[usize]) -> Self {
        let mut p = Self::identity(n);
        for &q in qubits {
            assert!(q < n, "qubit {q} out of bounds for {n}-qubit operator");
            p.x[q] = true;
        }
        p
    }

    /// An operator with `Z` on each listed qubit and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of bounds.
    #[must_use]
    pub fn z_string(n: usize, qubits: &[usize]) -> Self {
        let mut p = Self::identity(n);
        for &q in qubits {
            assert!(q < n, "qubit {q} out of bounds for {n}-qubit operator");
            p.z[q] = true;
        }
        p
    }

    /// Flips the global sign and returns the operator.
    #[must_use]
    pub fn negated(mut self) -> Self {
        self.negative = !self.negative;
        self
    }

    /// Number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` for the zero-qubit operator.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// `true` if the global sign is negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// X bit of qubit `j`.
    #[must_use]
    pub fn x_bit(&self, j: usize) -> bool {
        self.x[j]
    }

    /// Z bit of qubit `j`.
    #[must_use]
    pub fn z_bit(&self, j: usize) -> bool {
        self.z[j]
    }

    /// `true` when the unsigned parts of `self` and `other` are equal.
    #[must_use]
    pub fn same_unsigned(&self, other: &PauliString) -> bool {
        self.x == other.x && self.z == other.z
    }

    /// `true` if the two operators commute.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "operator size mismatch");
        let mut anti = false;
        for j in 0..self.len() {
            // Single-qubit Paulis anticommute iff they differ and neither
            // is the identity: symplectic product x1·z2 + z1·x2 (mod 2).
            anti ^= (self.x[j] && other.z[j]) ^ (self.z[j] && other.x[j]);
        }
        !anti
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.negative { '-' } else { '+' })?;
        for j in 0..self.len() {
            let c = match (self.x[j], self.z[j]) {
                (false, false) => 'I',
                (true, false) => 'X',
                (false, true) => 'Z',
                (true, true) => 'Y',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_bits() {
        let p = PauliString::x_string(3, &[0, 2]);
        assert_eq!(p.to_string(), "+XIX");
        assert!(p.x_bit(0) && !p.x_bit(1));
        let q = PauliString::z_string(3, &[1]).negated();
        assert_eq!(q.to_string(), "-IZI");
        assert!(q.is_negative());
    }

    #[test]
    fn commutation_rules() {
        let x0 = PauliString::x_string(2, &[0]);
        let z0 = PauliString::z_string(2, &[0]);
        let z1 = PauliString::z_string(2, &[1]);
        let xx = PauliString::x_string(2, &[0, 1]);
        let zz = PauliString::z_string(2, &[0, 1]);
        assert!(
            !x0.commutes_with(&z0),
            "X and Z on the same qubit anticommute"
        );
        assert!(x0.commutes_with(&z1), "disjoint supports commute");
        assert!(xx.commutes_with(&zz), "two anticommuting sites cancel");
        assert!(xx.commutes_with(&xx));
    }

    #[test]
    fn same_unsigned_ignores_sign() {
        let p = PauliString::x_string(2, &[0]);
        let n = p.clone().negated();
        assert!(p.same_unsigned(&n));
        assert_ne!(p, n);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let _ = PauliString::x_string(2, &[2]);
    }

    #[test]
    fn identity_is_empty_of_support() {
        let p = PauliString::identity(4);
        assert_eq!(p.to_string(), "+IIII");
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert!(PauliString::identity(0).is_empty());
    }
}
