//! Quickstart: generate a paper-default quantum network, route every
//! demanded state with ALG-N-FUSION, and check the analytic entanglement
//! rate against Monte Carlo simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::sim::evaluate::estimate_plan;
use ghz_entanglement_routing::topology::TopologyConfig;

fn main() {
    // A Waxman network with the paper's defaults: 100 switches, average
    // degree 10, capacity 10 qubits, 20 demanded states (§V-A).
    let topology = TopologyConfig::default().generate(42);
    let net = QuantumNetwork::from_topology(&topology, &NetworkParams::default());
    let demands = Demand::from_topology(&topology);

    println!(
        "network: {} nodes, {} fibers, {} demanded states",
        net.node_count(),
        net.graph().edge_count(),
        demands.len()
    );

    // Phase I: the central server computes routes (Algorithms 1-4).
    let plan = alg_n_fusion(&net, &demands);
    println!(
        "routed {} of {} demands; Algorithm 4 added {} extra links",
        plan.served_demands(),
        demands.len(),
        plan.alg4_links
    );

    // Analytic network entanglement rate (Equation 1 per flow-like graph).
    let analytic = plan.total_rate(&net);
    println!("analytic entanglement rate: {analytic:.2} states/attempt");

    // Phases II-III, repeated: Monte Carlo over link generation and GHZ
    // fusions.
    let estimate = estimate_plan(&net, &plan, 2_000, 7);
    println!(
        "simulated entanglement rate: {:.2} ± {:.2} (2000 rounds)",
        estimate.total_rate(),
        estimate.total_stderr()
    );

    // Per-demand detail for the first few states.
    for (i, dp) in plan.plans.iter().take(5).enumerate() {
        println!(
            "  {}: {} route(s), {} flow edges, p(success) = {:.3}",
            dp.demand,
            dp.paths.len(),
            dp.flow.edge_count(),
            plan.demand_rate(&net, i)
        );
    }
}
