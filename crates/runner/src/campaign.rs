//! Campaign orchestration: shard scheduling, checkpointing, resume.
//!
//! [`run_campaign`] expands a [`SweepSpec`] into cells, skips every cell
//! already present in the directory's results store, and drives the rest
//! through a self-scheduling worker pool: each worker steals the next
//! pending cell off a shared atomic cursor, so load balances itself no
//! matter how uneven the cell costs are (a 10k-switch cell next to a
//! 100-switch one). Because every cell's RNG seed derives from
//! `(campaign_seed, cell key)` — never from the worker or the order — the
//! rows, and therefore the aggregated summary, are bit-identical for any
//! thread count, shard interleaving, or kill/resume boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fusion_bench::figures::scale_row_with;
use fusion_bench::report::Row;
use fusion_telemetry::Registry;
use parking_lot::Mutex;

use crate::aggregate::{aggregate_rows, render_table, summary_json, GroupSummary};
use crate::spec::{Cell, SweepSpec};
use crate::store::{CampaignStore, Manifest};

/// Scheduler options for one `run_campaign` invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads stealing cells (>= 1).
    pub threads: usize,
    /// Execute at most this many cells this invocation, then stop with
    /// the campaign incomplete — the checkpoint hook the kill/resume
    /// tests (and incremental driving) use.
    pub max_cells: Option<usize>,
    /// Print per-cell progress to stderr.
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 1,
            max_cells: None,
            progress: false,
        }
    }
}

/// What one `run_campaign` invocation did.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Cells in the expanded grid.
    pub total_cells: usize,
    /// Cells skipped because a previous invocation completed them.
    pub resumed_cells: usize,
    /// Cells executed by this invocation.
    pub executed_cells: usize,
    /// `true` once every cell has a row.
    pub complete: bool,
    /// Corrupt / truncated lines dropped while loading the store.
    pub dropped_rows: usize,
}

/// Executes one cell into its result row. Deterministic fields come from
/// the cell's derived seed; wall-clock fields (`*_ms`, `over_budget`) are
/// informational and excluded from aggregation. Each cell gets a fresh
/// enabled telemetry registry, so the `m_<counter>` metric columns are a
/// pure function of that cell's work — independent of which worker ran
/// it, of `--threads`, and of kill/resume boundaries.
fn execute_cell(cell: &Cell, budget_seconds: Option<f64>) -> Row {
    let start = Instant::now();
    let registry = Registry::enabled();
    let measured = scale_row_with(&cell.config, &cell.preset, cell.algorithm, 0, &registry);
    let wall = start.elapsed().as_secs_f64();
    let mut row = Row::new();
    #[allow(clippy::cast_possible_wrap)]
    row.push_str("cell", cell.key())
        .push_int("seed_index", cell.seed_index as i64);
    for (key, value) in measured.fields() {
        row.push(key, value.clone());
    }
    row.push_num("wall_ms", wall * 1e3);
    row.push_bool("over_budget", budget_seconds.is_some_and(|b| wall > b));
    row
}

/// Runs (or resumes) a sweep campaign in `dir`.
///
/// # Errors
///
/// Returns a description when the directory belongs to a different spec,
/// or on filesystem errors. Worker panics propagate.
pub fn run_campaign(
    spec: &SweepSpec,
    dir: &std::path::Path,
    opts: &RunOptions,
) -> Result<CampaignOutcome, String> {
    assert!(opts.threads >= 1, "need at least one worker thread");
    spec.validate()?;
    let store = CampaignStore::open(dir).map_err(|e| format!("opening {dir:?}: {e}"))?;

    // A campaign directory is married to one spec: refuse to mix rows.
    if let Some(manifest) = store.load_manifest()? {
        if manifest.spec_fingerprint != spec.fingerprint() {
            return Err(format!(
                "directory {dir:?} holds campaign {:?} with a different spec \
                 (fingerprint {:#x} != {:#x}); aggregate it elsewhere or start with --fresh",
                manifest.name,
                manifest.spec_fingerprint,
                spec.fingerprint()
            ));
        }
    }

    let cells = spec.cells();
    let loaded = store
        .load_rows()
        .map_err(|e| format!("loading rows: {e}"))?;
    let completed = loaded.completed_cells();
    let mut pending: Vec<&Cell> = cells
        .iter()
        .filter(|c| !completed.contains(&c.key()))
        .collect();
    let resumed_cells = cells.len() - pending.len();
    if let Some(limit) = opts.max_cells {
        pending.truncate(limit);
    }

    let manifest = |completed_cells: usize| Manifest {
        name: spec.name.clone(),
        spec_fingerprint: spec.fingerprint(),
        campaign_seed: spec.campaign_seed,
        total_cells: cells.len(),
        completed_cells,
        done: completed_cells == cells.len(),
    };
    store
        .write_manifest(&manifest(resumed_cells))
        .map_err(|e| format!("writing manifest: {e}"))?;

    // Self-scheduling shard pool: workers steal the next pending cell off
    // a shared cursor until the queue drains.
    let next = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let shared_store = Mutex::new(store);
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    let total = cells.len();
    // Resume correctness comes from rows.jsonl alone; the manifest is
    // advisory progress, so refresh it at most once a second instead of
    // paying a temp-write + fsync + rename per cell under the store lock.
    let last_manifest = Mutex::new(Instant::now());
    crossbeam::scope(|scope| {
        for _ in 0..opts.threads.min(pending.len().max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = pending.get(i) else {
                    break;
                };
                let row = execute_cell(cell, spec.max_cell_seconds);
                let over_budget = matches!(
                    row.get("over_budget"),
                    Some(fusion_bench::report::Value::Bool(true))
                );
                let mut guard = shared_store.lock();
                if let Err(e) = guard.append_row(&row) {
                    *io_error.lock() = Some(format!("appending row for {}: {e}", cell.key()));
                    break;
                }
                let done_now = resumed_cells + executed.fetch_add(1, Ordering::Relaxed) + 1;
                {
                    let mut last = last_manifest.lock();
                    if last.elapsed().as_secs() >= 1 {
                        let _ = guard.write_manifest(&manifest(done_now));
                        *last = Instant::now();
                    }
                }
                drop(guard);
                if over_budget {
                    eprintln!(
                        "warning: cell {} exceeded max_cell_seconds = {:?}",
                        cell.key(),
                        spec.max_cell_seconds
                    );
                }
                if opts.progress {
                    eprintln!(
                        "[{done_now}/{total}] {}  rate={:.4}  {:.0} ms",
                        cell.key(),
                        row.num_field("rate").unwrap_or(0.0),
                        row.num_field("wall_ms").unwrap_or(0.0),
                    );
                }
            });
        }
    })
    .expect("sweep workers must not panic");

    if let Some(e) = io_error.into_inner() {
        return Err(e);
    }
    let executed_cells = executed.into_inner();
    let completed_total = resumed_cells + executed_cells;
    let store = shared_store.into_inner();
    store
        .write_manifest(&manifest(completed_total))
        .map_err(|e| format!("writing manifest: {e}"))?;

    Ok(CampaignOutcome {
        total_cells: total,
        resumed_cells,
        executed_cells,
        complete: completed_total == total,
        dropped_rows: loaded.dropped,
    })
}

/// Aggregates a campaign directory's rows into summaries, writes
/// `summary.json` atomically, and returns the summaries.
///
/// # Errors
///
/// Returns a description on filesystem errors.
pub fn aggregate_campaign(dir: &std::path::Path) -> Result<Vec<GroupSummary>, String> {
    let store = CampaignStore::open(dir).map_err(|e| format!("opening {dir:?}: {e}"))?;
    let loaded = store
        .load_rows()
        .map_err(|e| format!("loading rows: {e}"))?;
    let summaries = aggregate_rows(&loaded.rows);
    let text = summary_json(&summaries);
    let tmp = dir.join("summary.json.tmp");
    // Same temp + sync + rename discipline as the manifest: without the
    // sync, a crash after the rename can leave a truncated summary.
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp).map_err(|e| format!("writing summary: {e}"))?;
        file.write_all(text.as_bytes())
            .map_err(|e| format!("writing summary: {e}"))?;
        file.sync_data()
            .map_err(|e| format!("syncing summary: {e}"))?;
    }
    std::fs::rename(&tmp, store.summary_path()).map_err(|e| format!("renaming summary: {e}"))?;
    Ok(summaries)
}

/// Renders a campaign's summary table (after [`aggregate_campaign`]).
#[must_use]
pub fn summary_table(name: &str, summaries: &[GroupSummary]) -> String {
    render_table(name, summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fusion-runner-campaign-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".to_string(),
            campaign_seed: 5,
            presets: vec!["quick".to_string()],
            seeds: 2,
            loads: vec![3],
            algorithms: vec!["ALG-N-FUSION".to_string()],
            mc_rounds: Some(40),
            ..SweepSpec::default()
        }
    }

    #[test]
    fn campaign_runs_resumes_and_aggregates() {
        let dir = tmp_dir("run");
        let spec = tiny_spec();
        let out = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(out.total_cells, 2);
        assert_eq!(out.executed_cells, 2);
        assert!(out.complete);

        // Re-running skips everything.
        let again = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(again.resumed_cells, 2);
        assert_eq!(again.executed_cells, 0);
        assert!(again.complete);

        let summaries = aggregate_campaign(&dir).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].seeds, 2);
        assert!(summaries[0].mean_rate > 0.0);
        assert!(dir.join("summary.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_spec_is_refused() {
        let dir = tmp_dir("mismatch");
        let spec = tiny_spec();
        run_campaign(
            &spec,
            &dir,
            &RunOptions {
                max_cells: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let mut other = spec;
        other.seeds = 3;
        let err = run_campaign(&other, &dir, &RunOptions::default()).unwrap_err();
        assert!(err.contains("different spec"), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_cells_checkpoints_partial_campaigns() {
        let dir = tmp_dir("partial");
        let spec = tiny_spec();
        let first = run_campaign(
            &spec,
            &dir,
            &RunOptions {
                max_cells: Some(1),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(first.executed_cells, 1);
        assert!(!first.complete);
        let store = CampaignStore::open(&dir).unwrap();
        let manifest = store.load_manifest().unwrap().unwrap();
        assert_eq!(manifest.completed_cells, 1);
        assert!(!manifest.done);

        let second = run_campaign(&spec, &dir, &RunOptions::default()).unwrap();
        assert_eq!(second.resumed_cells, 1);
        assert_eq!(second.executed_cells, 1);
        assert!(second.complete);
        let manifest = store.load_manifest().unwrap().unwrap();
        assert!(manifest.done);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
