//! Offline stub of `serde`.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` on plain
//! data types; nothing actually serializes. This proc-macro crate accepts
//! the derives (including `#[serde(...)]` helper attributes) and expands
//! them to nothing, so the annotated types compile unchanged. See
//! `vendor/README.md` for how to swap the real crate back in.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
