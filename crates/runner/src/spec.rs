//! Declarative sweep campaign specifications.
//!
//! A [`SweepSpec`] names a grid of (preset/generator × demand load ×
//! algorithm × seed) cells plus per-cell budgets. Specs deserialize from a
//! flat TOML subset or from a flat JSON object (the vendored `serde` is a
//! no-op derive stub, so both readers are hand-rolled); see
//! [`SweepSpec::example_toml`] for the schema by example.
//!
//! [`SweepSpec::cells`] expands the grid into independent [`Cell`]s in a
//! canonical order. Each cell's RNG seed is derived deterministically from
//! `(campaign_seed, cell key)` by [`derive_cell_seed`], so a cell's result
//! is bit-identical regardless of worker-thread count, shard order, or how
//! many times the campaign was interrupted and resumed.

use fusion_bench::workloads::{resolve_preset, Algorithm, ExperimentConfig};
use fusion_topology::GeneratorKind;

/// A parsed specification value.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A homogeneous or mixed inline list.
    List(Vec<SpecValue>),
}

/// Hard ceiling on Monte Carlo rounds for cells at or beyond 1000
/// switches, mirroring the `figures` binary's large-topology budget: a
/// sweep is many cells, so one silently mis-sized cell multiplies into
/// hours of grinding.
pub const LARGE_SWITCH_FLOOR: usize = 1_000;
/// See [`LARGE_SWITCH_FLOOR`].
pub const LARGE_MAX_ROUNDS: usize = 1_000;

/// A declarative sweep campaign: the experiment grid and its budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name (used in the manifest and reports).
    pub name: String,
    /// Base seed every cell seed is derived from.
    pub campaign_seed: u64,
    /// Canonical preset names (see `sweep list-presets`).
    pub presets: Vec<String>,
    /// Optional generator family for a custom switch-count grid
    /// (`waxman`, `watts-strogatz`, `aiello`, `grid`).
    pub generator: Option<String>,
    /// Switch counts expanded against `generator` into synthetic presets
    /// named `<generator>-<count>`.
    pub switch_counts: Vec<usize>,
    /// Network samples per configuration (the multi-seed axis).
    pub seeds: usize,
    /// Demand loads (`num_user_pairs` overrides); empty keeps each
    /// preset's own load.
    pub loads: Vec<usize>,
    /// Algorithm display names; empty means the four main algorithms.
    pub algorithms: Vec<String>,
    /// Monte Carlo rounds per cell; `Some(0)` reports analytic rates.
    pub mc_rounds: Option<usize>,
    /// Candidate-path budget override for Algorithm 2.
    pub h: Option<usize>,
    /// Per-cell wall-clock budget; cells exceeding it are recorded with
    /// `over_budget = true` and a warning.
    pub max_cell_seconds: Option<f64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            name: String::new(),
            campaign_seed: 0,
            presets: Vec::new(),
            generator: None,
            switch_counts: Vec::new(),
            seeds: 5,
            loads: Vec::new(),
            algorithms: Vec::new(),
            mc_rounds: None,
            h: None,
            max_cell_seconds: None,
        }
    }
}

/// One independent unit of work: a fully-resolved configuration plus the
/// derived seed that makes it reproducible in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Preset label (canonical or synthetic `<generator>-<count>`).
    pub preset: String,
    /// Demand load (`num_user_pairs`) of this cell.
    pub load: usize,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Index on the seed axis (`0..spec.seeds`).
    pub seed_index: usize,
    /// RNG seed derived from `(campaign_seed, key)`.
    pub derived_seed: u64,
    /// Resolved experiment configuration: one network, one inner thread
    /// (the scheduler parallelizes across cells), `seed = derived_seed`.
    pub config: ExperimentConfig,
}

impl Cell {
    /// The canonical cell key: the unit of resume bookkeeping and seed
    /// derivation. Stable across releases — changing it orphans the rows
    /// of interrupted campaigns.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/load{}/{}/seed{}",
            self.preset,
            self.load,
            self.algorithm.name(),
            self.seed_index
        )
    }
}

/// The first value appearing more than once, rendered for an error.
fn first_duplicate<T: PartialEq + std::fmt::Debug>(items: &[T]) -> Option<String> {
    items
        .iter()
        .enumerate()
        .find(|(i, item)| items[..*i].contains(item))
        .map(|(_, item)| format!("{item:?}"))
}

/// FNV-1a over the key string: stable, dependency-free.
fn fnv1a64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates nearby inputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a cell's RNG seed from the campaign seed and its canonical
/// key. Pure and stable: the same `(campaign_seed, key)` pair always
/// yields the same seed, which is what makes sweep results independent of
/// thread count, shard order, and resume boundaries.
#[must_use]
pub fn derive_cell_seed(campaign_seed: u64, key: &str) -> u64 {
    splitmix64(campaign_seed ^ fnv1a64(key).rotate_left(17))
}

impl SweepSpec {
    /// Parses a spec from TOML (flat `key = value` lines) or JSON (one
    /// flat object); the format is auto-detected from the first
    /// non-whitespace byte.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema error.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let entries = if text.trim_start().starts_with('{') {
            parse_json_object(text)?
        } else {
            parse_toml(text)?
        };
        SweepSpec::from_entries(entries)
    }

    fn from_entries(entries: Vec<(String, SpecValue)>) -> Result<SweepSpec, String> {
        let mut spec = SweepSpec::default();
        for (key, value) in entries {
            match key.as_str() {
                "name" => spec.name = take_str(&key, value)?,
                "campaign_seed" => {
                    #[allow(clippy::cast_sign_loss)]
                    {
                        spec.campaign_seed = take_int(&key, value)? as u64;
                    }
                }
                "presets" => spec.presets = take_str_list(&key, value)?,
                "generator" => spec.generator = Some(take_str(&key, value)?),
                "switch_counts" => spec.switch_counts = take_usize_list(&key, value)?,
                "seeds" => spec.seeds = take_usize(&key, value)?,
                "loads" => spec.loads = take_usize_list(&key, value)?,
                "algorithms" => spec.algorithms = take_str_list(&key, value)?,
                "mc_rounds" => spec.mc_rounds = Some(take_usize(&key, value)?),
                "h" => spec.h = Some(take_usize(&key, value)?),
                "max_cell_seconds" => spec.max_cell_seconds = Some(take_num(&key, value)?),
                other => return Err(format!("unknown spec key {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec for schema errors: unknown presets, generators, or
    /// algorithms; an empty grid; budgets that would grind for hours.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec needs a non-empty `name`".to_string());
        }
        if self.seeds == 0 {
            return Err("`seeds` must be at least 1".to_string());
        }
        if self.presets.is_empty() && self.switch_counts.is_empty() {
            return Err(
                "spec needs `presets = [...]` and/or `generator` + `switch_counts`".to_string(),
            );
        }
        // Duplicate axis entries would expand into identical cell keys:
        // the duplicates collapse on resume but inflate a fresh run's
        // seed counts (halving the reported CI for no extra information).
        for (key, duplicate) in [
            ("presets", first_duplicate(&self.presets)),
            ("algorithms", first_duplicate(&self.algorithms)),
            ("loads", first_duplicate(&self.loads)),
            ("switch_counts", first_duplicate(&self.switch_counts)),
        ] {
            if let Some(dup) = duplicate {
                return Err(format!("`{key}` lists {dup} twice"));
            }
        }
        for preset in &self.presets {
            if resolve_preset(preset).is_none() {
                return Err(format!(
                    "unknown preset {preset:?}; see `sweep list-presets`"
                ));
            }
        }
        if !self.switch_counts.is_empty() && self.generator.is_none() {
            return Err("`switch_counts` needs a `generator`".to_string());
        }
        if let Some(generator) = &self.generator {
            if GeneratorKind::parse(generator).is_none() {
                return Err(format!(
                    "unknown generator {generator:?}; known: {}",
                    GeneratorKind::all_default()
                        .iter()
                        .map(GeneratorKind::name)
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            if self.switch_counts.is_empty() {
                return Err("`generator` needs `switch_counts = [...]`".to_string());
            }
            if self.switch_counts.contains(&0) {
                return Err("`switch_counts` entries must be positive".to_string());
            }
        }
        for name in &self.algorithms {
            if Algorithm::from_name(name).is_none() {
                return Err(format!(
                    "unknown algorithm {name:?}; known: {}",
                    Algorithm::ALL
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        if self.loads.contains(&0) {
            return Err("`loads` entries must be positive".to_string());
        }
        // Budget guard, mirroring `figures`: at 1k+ switches a mis-sized
        // Monte Carlo budget multiplies across every cell of the grid.
        let largest = self.largest_switch_count();
        if largest >= LARGE_SWITCH_FLOOR {
            if let Some(rounds) = self.mc_rounds {
                if rounds > LARGE_MAX_ROUNDS {
                    return Err(format!(
                        "mc_rounds {rounds} exceeds the large-topology budget of \
                         {LARGE_MAX_ROUNDS} for {largest}-switch cells; lower it or use \
                         mc_rounds = 0 (analytic rates)"
                    ));
                }
            }
        }
        Ok(())
    }

    fn largest_switch_count(&self) -> usize {
        self.presets
            .iter()
            .filter_map(|p| resolve_preset(p))
            .map(|c| c.topology.num_switches)
            .chain(self.switch_counts.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// The preset axis in expansion order: canonical presets first, then
    /// the synthetic `<generator>-<count>` grid.
    fn preset_axis(&self) -> Vec<(String, ExperimentConfig)> {
        let mut axis: Vec<(String, ExperimentConfig)> = self
            .presets
            .iter()
            .map(|name| {
                let config = resolve_preset(name).expect("validated preset");
                (name.clone(), config)
            })
            .collect();
        if let Some(generator) = &self.generator {
            let kind = GeneratorKind::parse(generator).expect("validated generator");
            for &n in &self.switch_counts {
                let mut config = ExperimentConfig::large(n);
                config.topology.kind = kind;
                axis.push((format!("{}-{n}", kind.name()), config));
            }
        }
        axis
    }

    /// The algorithm axis; empty spec lists default to the four main
    /// algorithms of the evaluation.
    #[must_use]
    pub fn algorithm_axis(&self) -> Vec<Algorithm> {
        if self.algorithms.is_empty() {
            Algorithm::MAIN.to_vec()
        } else {
            self.algorithms
                .iter()
                .map(|n| Algorithm::from_name(n).expect("validated algorithm"))
                .collect()
        }
    }

    /// Expands the grid into cells in canonical order: preset axis, then
    /// load, then algorithm, then seed index.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (preset, base) in self.preset_axis() {
            let loads = if self.loads.is_empty() {
                vec![base.topology.num_user_pairs]
            } else {
                self.loads.clone()
            };
            for &load in &loads {
                for algorithm in self.algorithm_axis() {
                    for seed_index in 0..self.seeds {
                        let mut config = base.clone();
                        config.topology.num_user_pairs = load;
                        config.networks = 1;
                        // One inner thread: the scheduler parallelizes
                        // across cells, and serial estimation keeps the
                        // per-cell RNG stream canonical.
                        config.threads = 1;
                        if let Some(rounds) = self.mc_rounds {
                            config.mc_rounds = rounds;
                        }
                        if let Some(h) = self.h {
                            config.h = h;
                        }
                        let mut cell = Cell {
                            preset: preset.clone(),
                            load,
                            algorithm,
                            seed_index,
                            derived_seed: 0,
                            config,
                        };
                        cell.derived_seed = derive_cell_seed(self.campaign_seed, &cell.key());
                        cell.config.seed = cell.derived_seed;
                        cells.push(cell);
                    }
                }
            }
        }
        cells
    }

    /// A canonical single-line rendering of the spec, fingerprinted by the
    /// manifest so a campaign directory refuses rows from a different
    /// spec.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "name={};campaign_seed={};presets={};generator={};switch_counts={:?};seeds={};\
             loads={:?};algorithms={};mc_rounds={:?};h={:?}",
            self.name,
            self.campaign_seed,
            self.presets.join(","),
            self.generator.as_deref().unwrap_or("-"),
            self.switch_counts,
            self.seeds,
            self.loads,
            self.algorithms.join(","),
            self.mc_rounds,
            self.h,
        )
    }

    /// Stable fingerprint of [`SweepSpec::canonical`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&self.canonical())
    }

    /// A commented example spec covering every schema field.
    #[must_use]
    pub fn example_toml() -> &'static str {
        r#"# Sweep campaign: a flat `key = value` TOML subset (or the same
# fields as one flat JSON object). Run with:
#   sweep run --spec campaign.toml --out results/campaign

# Campaign identity; every cell seed derives from (campaign_seed, cell key).
name = "fig9b-extension"
campaign_seed = 77

# Preset axis: canonical names (`sweep list-presets`), plus an optional
# custom grid of <generator>-<count> topologies.
presets = ["default", "large-1k-grid"]
generator = "grid"
switch_counts = [2000, 5000]

# Seed axis: networks sampled per configuration.
seeds = 5

# Demand loads (num_user_pairs); omit to keep each preset's own load.
loads = [20, 50]

# Algorithms by display name; omit for the four main ones.
algorithms = ["ALG-N-FUSION", "Q-CAST-N"]

# Per-cell budgets. mc_rounds = 0 reports analytic (Eq. 1) rates.
mc_rounds = 200
h = 3
max_cell_seconds = 600.0
"#
    }
}

fn take_str(key: &str, value: SpecValue) -> Result<String, String> {
    match value {
        SpecValue::Str(s) => Ok(s),
        other => Err(format!("`{key}` must be a string, got {other:?}")),
    }
}

fn take_int(key: &str, value: SpecValue) -> Result<i64, String> {
    match value {
        SpecValue::Int(i) => Ok(i),
        other => Err(format!("`{key}` must be an integer, got {other:?}")),
    }
}

fn take_usize(key: &str, value: SpecValue) -> Result<usize, String> {
    let i = take_int(key, value)?;
    usize::try_from(i).map_err(|_| format!("`{key}` must be non-negative, got {i}"))
}

fn take_num(key: &str, value: SpecValue) -> Result<f64, String> {
    match value {
        SpecValue::Num(x) => Ok(x),
        #[allow(clippy::cast_precision_loss)]
        SpecValue::Int(i) => Ok(i as f64),
        other => Err(format!("`{key}` must be a number, got {other:?}")),
    }
}

fn take_list(key: &str, value: SpecValue) -> Result<Vec<SpecValue>, String> {
    match value {
        SpecValue::List(items) => Ok(items),
        other => Err(format!("`{key}` must be a list, got {other:?}")),
    }
}

fn take_str_list(key: &str, value: SpecValue) -> Result<Vec<String>, String> {
    take_list(key, value)?
        .into_iter()
        .map(|v| take_str(key, v))
        .collect()
}

fn take_usize_list(key: &str, value: SpecValue) -> Result<Vec<usize>, String> {
    take_list(key, value)?
        .into_iter()
        .map(|v| take_usize(key, v))
        .collect()
}

// ---------------------------------------------------------------------
// Readers: a flat TOML subset and a flat JSON object over one shared
// value grammar (quoted strings, integers, floats, booleans, inline
// lists).
// ---------------------------------------------------------------------

/// Parses flat `key = value` TOML: one assignment per line, `#` comments,
/// no tables or multi-line values.
fn parse_toml(text: &str) -> Result<Vec<(String, SpecValue)>, String> {
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
        let key = key.trim();
        if key.is_empty() || !key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(format!("line {}: malformed key {key:?}", lineno + 1));
        }
        let value = parse_value_str(value.trim())
            .map_err(|e| format!("line {} (`{key}`): {e}", lineno + 1))?;
        entries.push((key.to_string(), value));
    }
    Ok(entries)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parses one flat JSON object into entries.
fn parse_json_object(text: &str) -> Result<Vec<(String, SpecValue)>, String> {
    let mut p = ValueParser::new(text);
    p.skip_ws();
    p.expect(b'{')?;
    let mut entries = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            let value = p.value()?;
            entries.push((key, value));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.peek().is_some() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(entries)
}

/// Parses a standalone value (one TOML right-hand side).
fn parse_value_str(text: &str) -> Result<SpecValue, String> {
    let mut p = ValueParser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Shared recursive-descent value parser (JSON-compatible scalars and
/// inline lists, which are also valid TOML).
struct ValueParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ValueParser<'a> {
    fn new(text: &'a str) -> Self {
        ValueParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<SpecValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(SpecValue::Str(self.string()?)),
            Some(b'[') => self.list(),
            Some(b't') => self.literal("true", SpecValue::Bool(true)),
            Some(b'f') => self.literal("false", SpecValue::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn list(&mut self) -> Result<SpecValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(SpecValue::List(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    // Tolerate a TOML trailing comma before `]`.
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(SpecValue::List(items));
                    }
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(SpecValue::List(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn literal(&mut self, lit: &str, value: SpecValue) -> Result<SpecValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<SpecValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'_')
        ) {
            self.pos += 1;
        }
        let token: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?
            .chars()
            .filter(|&c| c != '_') // TOML allows 1_000 separators
            .collect();
        if token.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(SpecValue::Int(i));
            }
        }
        token
            .parse::<f64>()
            .map(SpecValue::Num)
            .map_err(|e| format!("malformed number {token:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        // Same \u handling as the row codec, so a value
                        // that round-trips through rows also parses here.
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unsupported escape '\\{}'", char::from(other)))
                        }
                    }
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "tiny".to_string(),
            campaign_seed: 9,
            presets: vec!["quick".to_string()],
            seeds: 2,
            loads: vec![4],
            algorithms: vec!["ALG-N-FUSION".to_string()],
            mc_rounds: Some(50),
            ..SweepSpec::default()
        }
    }

    #[test]
    fn example_toml_parses_and_validates() {
        let spec = SweepSpec::parse(SweepSpec::example_toml()).unwrap();
        assert_eq!(spec.name, "fig9b-extension");
        assert_eq!(spec.campaign_seed, 77);
        assert_eq!(spec.presets, vec!["default", "large-1k-grid"]);
        assert_eq!(spec.generator.as_deref(), Some("grid"));
        assert_eq!(spec.switch_counts, vec![2000, 5000]);
        assert_eq!(spec.seeds, 5);
        assert_eq!(spec.loads, vec![20, 50]);
        assert_eq!(spec.mc_rounds, Some(200));
        assert_eq!(spec.max_cell_seconds, Some(600.0));
        // 4 preset-axis entries × 2 loads × 2 algorithms × 5 seeds.
        assert_eq!(spec.cells().len(), 4 * 2 * 2 * 5);
    }

    #[test]
    fn json_spec_parses_identically() {
        let toml = r#"
name = "j"
campaign_seed = 3
presets = ["quick"]
seeds = 2
"#;
        let json = r#"{"name": "j", "campaign_seed": 3, "presets": ["quick"], "seeds": 2}"#;
        assert_eq!(
            SweepSpec::parse(toml).unwrap(),
            SweepSpec::parse(json).unwrap()
        );
    }

    #[test]
    fn rejects_schema_errors() {
        for (text, needle) in [
            ("seeds = 2", "non-empty `name`"),
            ("name = \"x\"\nseeds = 2", "presets"),
            ("name = \"x\"\npresets = [\"nope\"]", "unknown preset"),
            (
                "name = \"x\"\npresets = [\"quick\"]\nseeds = 0",
                "at least 1",
            ),
            (
                "name = \"x\"\npresets = [\"quick\"]\nalgorithms = [\"nope\"]",
                "unknown algorithm",
            ),
            ("name = \"x\"\nswitch_counts = [100]", "needs a `generator`"),
            (
                "name = \"x\"\ngenerator = \"erdos\"\nswitch_counts = [100]",
                "unknown generator",
            ),
            (
                "name = \"x\"\npresets = [\"large-1k\"]\nmc_rounds = 5000",
                "large-topology budget",
            ),
            ("name = \"x\"\nbogus_key = 1", "unknown spec key"),
            (
                "name = \"x\"\npresets = [\"quick\", \"quick\"]",
                "lists \"quick\" twice",
            ),
            (
                "name = \"x\"\npresets = [\"quick\"]\nloads = [5, 5]",
                "lists 5 twice",
            ),
            ("name måste = 1", "malformed key"),
            ("name = ", "unexpected end"),
        ] {
            let err = SweepSpec::parse(text).unwrap_err();
            assert!(
                err.contains(needle),
                "{text:?} should fail with {needle:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn unicode_escapes_match_the_row_codec() {
        let spec =
            SweepSpec::parse("name = \"caf\\u00e9\"\npresets = [\"quick\"]\nseeds = 1\n").unwrap();
        assert_eq!(spec.name, "café");
    }

    #[test]
    fn toml_comments_and_separators() {
        let spec = SweepSpec::parse(
            "# heading\nname = \"a#b\" # trailing\npresets = [\"quick\",]\nseeds = 1_0\n",
        )
        .unwrap();
        assert_eq!(spec.name, "a#b", "# inside quotes is not a comment");
        assert_eq!(spec.seeds, 10, "TOML underscore separators accepted");
        assert_eq!(spec.presets, vec!["quick"], "trailing comma accepted");
    }

    #[test]
    fn cells_expand_in_canonical_order_with_derived_seeds() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key(), "quick/load4/ALG-N-FUSION/seed0");
        assert_eq!(cells[1].key(), "quick/load4/ALG-N-FUSION/seed1");
        for cell in &cells {
            assert_eq!(cell.config.networks, 1);
            assert_eq!(cell.config.threads, 1);
            assert_eq!(cell.config.topology.num_user_pairs, 4);
            assert_eq!(cell.config.mc_rounds, 50);
            assert_eq!(
                cell.derived_seed,
                derive_cell_seed(spec.campaign_seed, &cell.key())
            );
            assert_eq!(cell.config.seed, cell.derived_seed);
        }
        assert_ne!(
            cells[0].derived_seed, cells[1].derived_seed,
            "seed axis must decorrelate"
        );
    }

    #[test]
    fn derived_seeds_are_stable_and_campaign_dependent() {
        let a = derive_cell_seed(1, "quick/load4/ALG-N-FUSION/seed0");
        let b = derive_cell_seed(1, "quick/load4/ALG-N-FUSION/seed0");
        let c = derive_cell_seed(2, "quick/load4/ALG-N-FUSION/seed0");
        let d = derive_cell_seed(1, "quick/load4/ALG-N-FUSION/seed1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn generator_axis_builds_synthetic_presets() {
        let spec = SweepSpec {
            name: "g".to_string(),
            generator: Some("grid".to_string()),
            switch_counts: vec![100, 200],
            seeds: 1,
            algorithms: vec!["ALG-N-FUSION".to_string()],
            ..SweepSpec::default()
        };
        spec.validate().unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].preset, "grid-100");
        assert_eq!(cells[0].config.topology.num_switches, 100);
        assert_eq!(
            cells[0].config.topology.kind,
            fusion_topology::GeneratorKind::Grid
        );
        assert_eq!(cells[1].preset, "grid-200");
    }

    #[test]
    fn empty_algorithms_default_to_main_four() {
        let spec = SweepSpec {
            name: "m".to_string(),
            presets: vec!["quick".to_string()],
            seeds: 1,
            ..SweepSpec::default()
        };
        assert_eq!(spec.cells().len(), 4);
    }

    #[test]
    fn fingerprint_tracks_grid_changes_only() {
        let a = tiny_spec();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.max_cell_seconds = Some(1.0);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "wall budgets do not change results"
        );
        b.seeds = 3;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
