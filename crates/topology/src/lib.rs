//! Random quantum-network topology generation.
//!
//! Implements the three network-generation methods evaluated by the paper
//! (§V-A / Fig. 7) plus deterministic topologies for tests and examples:
//!
//! * [`GeneratorKind::Waxman`] — the Waxman geometric random graph (default).
//! * [`GeneratorKind::WattsStrogatz`] — small-world rewiring.
//! * [`GeneratorKind::Aiello`] — power-law (Chung-Lu style) degree-driven graph.
//! * [`generators::deterministic`] — grids, lines, rings, stars.
//!
//! Generators produce a switch-only graph; the user-attachment stage then
//! places quantum-users, wires each to its nearest switches, and emits the
//! demand list (one quantum state per user pair). Everything is
//! deterministic for a fixed seed.
//!
//! # Examples
//!
//! ```
//! use fusion_topology::TopologyConfig;
//!
//! let config = TopologyConfig {
//!     num_switches: 30,
//!     num_user_pairs: 4,
//!     ..TopologyConfig::default()
//! };
//! let topo = config.generate(7);
//! assert_eq!(topo.demands.len(), 4);
//! assert_eq!(topo.user_ids().count(), 8);
//! ```
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attach;
mod config;
mod connect;
mod geometry;
mod model;

pub mod generators;

pub use config::{GeneratorKind, TopologyConfig};
pub use geometry::Position;
pub use model::{Link, Role, Site, Topology};
