//! Machine-readable perf harness for the CI bench gate.
//!
//! ```text
//! perfbench run [--out FILE] [--reps N] [--filter SUBSTR] [--metrics DIR]
//!     Runs the fixed workloads (fusion_bench::perf) and writes a flat
//!     JSON map {"workload": median_ns, ...} to FILE (default: stdout).
//!     With --metrics DIR, each workload runs with an enabled telemetry
//!     registry and its deterministic counter snapshot is written to
//!     DIR/<workload>.metrics.json. The timings in the result map then
//!     measure the *instrumented* paths — which is exactly what the CI
//!     bench job wants to gate: it proves enabled-registry overhead
//!     stays under the same threshold as any other code change.
//!
//! perfbench compare --baseline FILE --current FILE
//!                   [--threshold FRAC] [--report FILE]
//!     Compares two result files, normalizing by the `calibration`
//!     workload when both sides carry it. Exits 1 when any workload is
//!     more than FRAC (default 0.40 = +40% wall time) over baseline.
//! ```
//!
//! Regenerate the committed baseline with:
//! `cargo run --release -p fusion-bench --bin perfbench -- run --out BENCH_BASELINE.json`

use std::path::PathBuf;

use fusion_bench::perf;
use fusion_telemetry::Registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("--help" | "-h") | None => {
            println!(
                "usage: perfbench run [--out FILE] [--reps N] [--filter SUBSTR] [--metrics DIR]"
            );
            println!("       perfbench compare --baseline FILE --current FILE [--threshold FRAC] [--report FILE]");
            println!("workloads: {}", perf::WORKLOADS.join(" "));
        }
        Some(other) => die(&format!("unknown subcommand {other}; try run or compare")),
    }
}

fn run(args: &[String]) {
    let mut out: Option<PathBuf> = None;
    let mut metrics_dir: Option<PathBuf> = None;
    let mut reps = 7usize;
    let mut filter = String::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(next_path(&mut it, "--out")),
            "--metrics" => metrics_dir = Some(next_path(&mut it, "--metrics")),
            "--reps" => {
                reps = next_value(&mut it, "--reps");
                if reps == 0 {
                    die("--reps must be positive");
                }
            }
            "--filter" => {
                filter = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--filter needs a substring"));
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if let Some(dir) = &metrics_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("could not create {}: {e}", dir.display()));
        }
    }
    let mut results = Vec::new();
    for name in perf::WORKLOADS {
        if !filter.is_empty() && !name.contains(&filter) && name != perf::CALIBRATION {
            continue;
        }
        eprintln!("running {name} ({reps} reps)...");
        let registry = if metrics_dir.is_some() {
            Registry::enabled()
        } else {
            Registry::disabled()
        };
        let r = perf::run_workload_with(name, reps, &registry);
        eprintln!("  {name}: {:.0} us median", r.median_ns / 1_000.0);
        if let Some(dir) = &metrics_dir {
            let path = dir.join(format!("{name}.metrics.json"));
            if let Err(e) = std::fs::write(&path, registry.snapshot().to_json()) {
                die(&format!("could not write {}: {e}", path.display()));
            }
        }
        results.push(r);
    }
    let json = perf::to_json(&results);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                die(&format!("could not write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }
}

fn compare(args: &[String]) {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut threshold = 0.40f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(next_path(&mut it, "--baseline")),
            "--current" => current = Some(next_path(&mut it, "--current")),
            "--report" => report = Some(next_path(&mut it, "--report")),
            "--threshold" => {
                threshold = next_value(&mut it, "--threshold");
                if !(0.0..10.0).contains(&threshold) {
                    die("--threshold must be a fraction like 0.40");
                }
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| die("compare needs --baseline FILE"));
    let current = current.unwrap_or_else(|| die("compare needs --current FILE"));
    let base = read_results(&baseline);
    let cur = read_results(&current);
    let comparisons = perf::compare(&base, &cur, threshold);
    let table = perf::render_comparison(&comparisons, threshold);
    print!("{table}");
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &table) {
            die(&format!("could not write {}: {e}", path.display()));
        }
    }
    if comparisons.iter().any(|c| c.regressed) {
        eprintln!("bench gate FAILED: at least one workload regressed past the threshold");
        std::process::exit(1);
    }
    eprintln!("bench gate passed");
}

fn read_results(path: &PathBuf) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("could not read {}: {e}", path.display())));
    perf::parse_json(&text)
        .unwrap_or_else(|e| die(&format!("could not parse {}: {e}", path.display())))
}

fn next_path<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> PathBuf {
    it.next()
        .map(PathBuf::from)
        .unwrap_or_else(|| die(&format!("{flag} needs a file path")))
}

fn next_value<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
