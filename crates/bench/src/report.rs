//! Machine-readable experiment rows and streaming statistics.
//!
//! One [`Row`] is a flat, ordered map of scalar fields serialized as a
//! single JSON line — the unit of the sweep runner's crash-safe JSONL
//! results store and of `figures scale --preset ...` output, so one set of
//! tooling parses both. [`Welford`] is the numerically-stable streaming
//! mean/variance accumulator the aggregation layer folds rows with.
//!
//! The vendored `serde` is a no-op derive stub (see `vendor/README.md`),
//! so the codec here is hand-rolled for exactly this shape: a flat object
//! of strings, finite numbers, and booleans. Field order is preserved, and
//! numbers render through Rust's shortest-round-trip `f64` formatting, so
//! encoding is deterministic — byte-identical output for identical values
//! regardless of thread count or platform.

use std::fmt::Write as _;

/// A scalar field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field (preset names, algorithm labels, ...).
    Str(String),
    /// An integer field (counts, seeds).
    Int(i64),
    /// A finite floating-point field (rates, milliseconds).
    Num(f64),
    /// A boolean flag.
    Bool(bool),
}

/// One flat record: an ordered list of `(key, value)` fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    fields: Vec<(String, Value)>,
}

impl Row {
    /// Creates an empty row.
    #[must_use]
    pub fn new() -> Self {
        Row::default()
    }

    /// Appends an already-built value.
    pub fn push(&mut self, key: &str, value: Value) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.fields
            .push((key.to_string(), Value::Str(value.into())));
        self
    }

    /// Appends an integer field.
    pub fn push_int(&mut self, key: &str, value: i64) -> &mut Self {
        self.fields.push((key.to_string(), Value::Int(value)));
        self
    }

    /// Appends a floating-point field.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — rows must round-trip through
    /// JSON, which has no NaN/infinity.
    pub fn push_num(&mut self, key: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "row field {key} must be finite");
        self.fields.push((key.to_string(), Value::Num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), Value::Bool(value)));
        self
    }

    /// The fields in insertion order.
    #[must_use]
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Looks up a field by key (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A string field's value.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// A numeric field's value; integers coerce to `f64`.
    #[must_use]
    pub fn num_field(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Num(x)) => Some(*x),
            #[allow(clippy::cast_precision_loss)]
            Some(Value::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// An integer field's value.
    #[must_use]
    pub fn int_field(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// Serializes the row as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, key);
            out.push(':');
            match value {
                Value::Str(s) => write_json_string(&mut out, s),
                Value::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                Value::Num(x) => {
                    // Debug keeps the ".0" on integral floats, so a Num
                    // never parses back as an Int (shortest round-trip
                    // precision either way).
                    let _ = write!(out, "{x:?}");
                }
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`Row::to_json`] (or any flat JSON
    /// object of strings, numbers, and booleans).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error — nested objects
    /// and arrays are rejected.
    pub fn parse_json(line: &str) -> Result<Row, String> {
        let mut p = Parser::new(line);
        let row = p.object()?;
        p.skip_ws();
        if p.peek().is_some() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(row)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal recursive-descent parser for flat JSON objects.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn object(&mut self) -> Result<Row, String> {
        self.expect(b'{')?;
        let mut row = Row::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(row);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            row.fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(row);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'{' | b'[') => Err(format!(
                "nested values are not supported (byte {})",
                self.pos
            )),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        if token.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        token
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("malformed number {token:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unsupported escape '\\{}'", char::from(other)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Welford's online mean/variance accumulator.
///
/// Numerically stable streaming fold: `O(1)` state per metric regardless
/// of sample count. Note that the fold order affects the final bits (float
/// addition is not associative), so deterministic aggregation must push
/// samples in a canonical order.
///
/// # Examples
///
/// ```
/// use fusion_bench::report::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        #[allow(clippy::cast_precision_loss)]
        let n = self.count as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples folded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n - 1` denominator; 0 for fewer than two
    /// samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = self.count as f64;
            self.m2 / (n - 1.0)
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = self.count as f64;
            (self.variance() / n).sqrt()
        }
    }

    /// Half-width of the two-sided ~95% confidence interval of the mean,
    /// using the Student-t multiplier for the sample size (sweeps often
    /// fold only 5 seeds, where the normal 1.96 would understate the
    /// interval by ~30%). Falls back to the normal approximation past 30
    /// degrees of freedom.
    #[must_use]
    pub fn ci95_half(&self) -> f64 {
        // Two-sided 95% Student-t quantiles for df = 1..=30.
        const T975: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        if self.count < 2 {
            return 0.0;
        }
        let df = (self.count - 1) as usize;
        let multiplier = if df <= T975.len() { T975[df - 1] } else { 1.96 };
        multiplier * self.stderr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_json_round_trips() {
        let mut row = Row::new();
        row.push_str("preset", "large-1k-grid")
            .push_str("algorithm", "ALG-N-FUSION")
            .push_int("seed", 3)
            .push_int("switches", 1000)
            .push_num("rate", 12.625)
            .push_num("stderr", 0.0625)
            .push_bool("over_budget", false);
        let line = row.to_json();
        assert!(!line.contains('\n'), "rows must be single lines");
        let back = Row::parse_json(&line).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.str_field("preset"), Some("large-1k-grid"));
        assert_eq!(back.int_field("switches"), Some(1000));
        assert_eq!(back.num_field("rate"), Some(12.625));
        assert_eq!(back.num_field("seed"), Some(3.0), "ints coerce to f64");
        assert_eq!(back.get("over_budget"), Some(&Value::Bool(false)));
    }

    #[test]
    fn row_encoding_is_deterministic() {
        let build = || {
            let mut row = Row::new();
            row.push_str("a", "x")
                .push_num("b", 0.1 + 0.2)
                .push_int("c", -7);
            row.to_json()
        };
        assert_eq!(build(), build());
        // Shortest-round-trip float formatting: exact value recovered.
        let back = Row::parse_json(&build()).unwrap();
        assert_eq!(back.num_field("b"), Some(0.1 + 0.2));
    }

    #[test]
    fn row_escapes_special_characters() {
        let mut row = Row::new();
        row.push_str("k\"ey", "va\\lue\nwith\ttabs\u{1}");
        let line = row.to_json();
        let back = Row::parse_json(&line).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Row::parse_json("not json").is_err());
        assert!(Row::parse_json("{\"a\": }").is_err());
        assert!(Row::parse_json("{\"a\": 1,}").is_err());
        assert!(Row::parse_json("{\"a\": [1]}").is_err());
        assert!(Row::parse_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(Row::parse_json("{\"a\": 1} trailing").is_err());
        assert!(Row::parse_json("{\"a\": \"unterminated}").is_err());
    }

    #[test]
    fn parser_accepts_empty_object_and_whitespace() {
        assert_eq!(Row::parse_json("{}").unwrap(), Row::new());
        let row = Row::parse_json("  { \"a\" :\t1 ,\n\"b\" : 2.5 }  ").unwrap();
        assert_eq!(row.int_field("a"), Some(1));
        assert_eq!(row.num_field("b"), Some(2.5));
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        // The satellite's reference check: streaming mean/variance must
        // agree with the textbook two-pass computation.
        let samples: Vec<f64> = (0..257)
            .map(|i| ((i * 37 % 101) as f64).mul_add(0.31, -4.2))
            .collect();
        let mut w = Welford::new();
        for &x in &samples {
            w.push(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert_eq!(w.count(), samples.len() as u64);
        assert!((w.mean() - mean).abs() < 1e-10, "{} vs {mean}", w.mean());
        assert!(
            (w.variance() - var).abs() < 1e-9,
            "{} vs {var}",
            w.variance()
        );
        assert!((w.stderr() - (var / n).sqrt()).abs() < 1e-10);
        assert!((w.ci95_half() - 1.96 * (var / n).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn welford_degenerate_counts() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stderr(), 0.0);
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0, "one sample has no variance");
        assert_eq!(w.ci95_half(), 0.0, "one sample has no interval");
    }

    #[test]
    fn ci95_uses_student_t_for_small_samples() {
        // 5 seeds is the sweep default: df = 4 ⇒ t = 2.776, not 1.96.
        let mut five = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            five.push(x);
        }
        assert!((five.ci95_half() - 2.776 * five.stderr()).abs() < 1e-12);
        // Two samples: df = 1 ⇒ the wide 12.706 multiplier.
        let mut two = Welford::new();
        two.push(1.0);
        two.push(2.0);
        assert!((two.ci95_half() - 12.706 * two.stderr()).abs() < 1e-12);
    }
}
