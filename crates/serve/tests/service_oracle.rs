//! The service-layer correctness oracles.
//!
//! Three properties lock the online engine to the batch pipeline:
//!
//! 1. **Residual-capacity equivalence** — at every arrival of a random
//!    admit/depart/link-down trace, the admission run against the
//!    residual ledger is byte-identical (Algorithm 2 candidates,
//!    Algorithm 3 `MergeOutcome`, and the finished plan) to running the
//!    batch pipeline on a network whose capacities were pre-reduced by
//!    the live plans (`QuantumNetwork::with_capacities`). When the serve
//!    side refuses to route (saturated), the reduced network must be
//!    unroutable too.
//! 2. **Conservation** — `depart ∘ admit` restores the ledger exactly,
//!    the ledger audit balances against the live set after every event,
//!    and no residual counter ever exceeds its capacity (they are
//!    unsigned, so "negative" manifests as overflow wrap or an
//!    overdraft — both caught here).
//! 3. **Rejected admissions are no-ops** — deleting every rejected
//!    arrival (and its scheduled departure) from the trace and replaying
//!    from scratch yields the same final `StateDigest`.
//!
//! The reduced grid runs in tier-1 CI on every push; the wide grid
//! (`--ignored`) covers larger networks and harsher p/q corners for
//! release validation:
//!
//! ```text
//! cargo test --release -p fusion-serve --test service_oracle -- --ignored
//! ```

use std::collections::{BTreeMap, BTreeSet};

use fusion_core::algorithms::{route_with_capacity_traced, RoutingConfig};
use fusion_core::{NetworkParams, QuantumNetwork};
use fusion_serve::{replay, ReplayOptions, ServiceState, Trace, TraceConfig, TraceEventKind};
use fusion_topology::{GeneratorKind, TopologyConfig};

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

#[allow(clippy::too_many_arguments)]
fn build_state(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    classic: bool,
) -> ServiceState {
    let topo = TopologyConfig {
        num_switches: switches,
        num_user_pairs: pairs,
        avg_degree: 6.0,
        kind: if grid {
            GeneratorKind::Grid
        } else {
            GeneratorKind::default() // Waxman, the paper's family
        },
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);
    let base = if classic {
        RoutingConfig::classic()
    } else {
        RoutingConfig::n_fusion()
    };
    ServiceState::new(net, RoutingConfig { h, ..base })
}

/// Drives one sampled world through a random trace, checking the
/// equivalence and conservation oracles at every event, then replays the
/// rejected-arrivals-filtered trace and checks no-op independence.
#[allow(clippy::too_many_arguments)]
fn check_service_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    classic: bool,
    events: usize,
    trace_seed: u64,
    link_down_rate: f64,
    mean_holding: f64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut state = build_state(switches, pairs, grid, seed, p, q, h, classic);
    let config = *state.config();
    let trace = fusion_serve::generate(
        state.network(),
        &TraceConfig {
            events,
            arrival_rate: 1.0,
            mean_holding,
            link_down_rate,
            user_pool: 0,
            seed: trace_seed,
        },
    );

    let mut by_arrival = BTreeMap::new();
    let mut arrival_of = BTreeMap::new();
    let mut rejected = BTreeSet::new();
    for event in &trace.events {
        match event.kind {
            TraceEventKind::Arrival {
                arrival,
                source,
                dest,
            } => {
                // Oracle 1: serve-side admission trace vs batch pipeline
                // on the capacity-reduced network.
                let serve_side = state.admission_trace(source, dest);
                let reduced = state.reduced_network();
                match &serve_side {
                    None => prop_assert_eq!(
                        reduced.max_switch_capacity(),
                        0,
                        "serve refused as saturated but the reduced network still has qubits"
                    ),
                    Some(serve_trace) => {
                        let demand = state.next_demand(source, dest);
                        let batch = route_with_capacity_traced(
                            &reduced,
                            &[demand],
                            &config,
                            &reduced.capacities(),
                            1,
                        );
                        prop_assert_eq!(
                            serve_trace.candidates == batch.candidates,
                            true,
                            "Algorithm 2 candidates diverged at arrival {}",
                            arrival
                        );
                        prop_assert_eq!(
                            serve_trace.merge == batch.merge,
                            true,
                            "Algorithm 3 merge outcome diverged at arrival {}",
                            arrival
                        );
                        prop_assert_eq!(
                            serve_trace.plan == batch.plan,
                            true,
                            "finished plan diverged at arrival {}",
                            arrival
                        );
                    }
                }

                // Oracle 2a: depart ∘ admit restores the ledger exactly;
                // rejection changes nothing at all.
                let ledger_before = state.ledger().clone();
                let digest_before = state.digest();
                match state.admit(source, dest) {
                    fusion_serve::AdmitOutcome::Accepted { id, .. } => {
                        let mut undone = state.clone();
                        undone.depart(id).expect("just admitted");
                        prop_assert_eq!(
                            undone.ledger() == &ledger_before,
                            true,
                            "depart(admit(..)) did not restore the ledger at arrival {}",
                            arrival
                        );
                        by_arrival.insert(arrival, id);
                        arrival_of.insert(id, arrival);
                    }
                    fusion_serve::AdmitOutcome::Rejected(_) => {
                        prop_assert_eq!(
                            state.digest() == digest_before,
                            true,
                            "rejected admission mutated the state at arrival {}",
                            arrival
                        );
                        rejected.insert(arrival);
                    }
                }
            }
            TraceEventKind::Departure { arrival } => {
                if let Some(id) = by_arrival.remove(&arrival) {
                    arrival_of.remove(&id);
                    state.depart(id).expect("tracked plan is live");
                }
            }
            TraceEventKind::LinkDown { edge } => {
                for id in state.fail_link(edge) {
                    let arrival = arrival_of.remove(&id).expect("victim tracked");
                    by_arrival.remove(&arrival);
                }
            }
        }
        // Oracle 2b: residual counters never exceed capacity (the u32
        // analogue of "never negative") and the books balance.
        for (free, cap) in state.residual().iter().zip(state.ledger().capacities()) {
            prop_assert_eq!(
                free <= cap,
                true,
                "residual {} above capacity {}",
                free,
                cap
            );
        }
        if let Err(e) = state.audit() {
            return Err(proptest::test_runner::TestCaseError::fail(e));
        }
    }

    // The manual loop above must agree with the production replay loop.
    let mut fresh = build_state(switches, pairs, grid, seed, p, q, h, classic);
    replay(&mut fresh, &trace, &ReplayOptions::default());
    prop_assert_eq!(
        fresh.digest() == state.digest(),
        true,
        "oracle loop and replay() disagree on the final state"
    );

    // Oracle 3: deleting the rejected no-op arrivals (and their scheduled
    // departures) replays to the same final state.
    let filtered = Trace {
        events: trace
            .events
            .iter()
            .filter(|e| match e.kind {
                TraceEventKind::Arrival { arrival, .. } | TraceEventKind::Departure { arrival } => {
                    !rejected.contains(&arrival)
                }
                TraceEventKind::LinkDown { .. } => true,
            })
            .copied()
            .collect(),
    };
    let mut independent = build_state(switches, pairs, grid, seed, p, q, h, classic);
    replay(&mut independent, &filtered, &ReplayOptions::default());
    prop_assert_eq!(
        independent.digest() == state.digest(),
        true,
        "final state depends on {} rejected no-op arrivals",
        rejected.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tier-1 reduced grid: small Waxman/grid worlds, both swap
    /// modes, short traces with link-downs.
    #[test]
    fn service_oracles_hold_reduced(
        switches in 10usize..28,
        pairs in 2usize..6,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        p in 0.15f64..0.9,
        q in 0.6f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        events in 30usize..80,
        trace_seed in 0u64..1_000_000,
        link_down in 0usize..2,
        mean_holding in 4.0f64..40.0,
    ) {
        check_service_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            classic,
            events,
            trace_seed,
            link_down as f64 * 0.08,
            mean_holding,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wide grid: larger worlds, longer traces, heavier load (small
    /// mean holding pushes churn; large pushes saturation), and harsher
    /// p/q corners. Run explicitly with `-- --ignored`.
    #[test]
    #[ignore = "wide service-oracle grid; minutes of runtime, run with -- --ignored"]
    fn service_oracles_hold_wide(
        switches in 10usize..80,
        pairs in 2usize..10,
        grid in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
        p in 0.02f64..0.999,
        q in 0.3f64..1.0,
        h in 1usize..5,
        classic in proptest::bool::ANY,
        events in 60usize..240,
        trace_seed in 0u64..u64::MAX,
        link_down in 0usize..3,
        mean_holding in 1.0f64..120.0,
    ) {
        check_service_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            classic,
            events,
            trace_seed,
            link_down as f64 * 0.05,
            mean_holding,
        )?;
    }
}
