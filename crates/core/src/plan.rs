use std::collections::BTreeMap;

use fusion_graph::{Metric, NodeId};
use serde::{Deserialize, Serialize};

use crate::demand::Demand;
use crate::flow::{FlowGraph, WidthedPath};
use crate::metrics;
use crate::network::QuantumNetwork;

/// Which entanglement-swapping technology the switches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwapMode {
    /// n-fusion via GHZ measurements: switches fuse any number of links per
    /// state in one joint measurement; routes may merge into flow-like
    /// graphs (the paper's contribution).
    NFusion,
    /// Classic 2-qubit Bell-state-measurement swapping: routes stay plain
    /// paths with independent lanes (Q-CAST's model).
    Classic,
}

impl SwapMode {
    /// Scores one widthed path under this swapping technology: the
    /// probability that the demanded state is established through it.
    #[must_use]
    pub fn score(self, net: &QuantumNetwork, wp: &WidthedPath) -> Metric {
        match self {
            SwapMode::NFusion => metrics::widthed_path_rate(net, wp),
            SwapMode::Classic => Metric::new(metrics::classic::success_probability(net, wp)),
        }
    }
}

/// Exact resources a routed plan pins, derived from its flow-like graph:
/// per-node qubit totals (each channel end pins one qubit at its node) and
/// per-edge channel totals (keyed by the canonical low–high node pair, so
/// both flow orientations of the same fiber land on one entry).
///
/// This is the unit of account of the service-layer residual ledger:
/// charging a plan's usage on admission and releasing the same value on
/// departure must be the identity on the ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// `(node, qubits)` in ascending node order; zero entries omitted.
    pub node_qubits: Vec<(NodeId, u32)>,
    /// `((low, high), channels)` in ascending pair order; zero entries
    /// omitted.
    pub edge_channels: Vec<((NodeId, NodeId), u32)>,
}

impl ResourceUsage {
    /// `true` when the plan pins nothing (an unserved demand).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_qubits.is_empty() && self.edge_channels.is_empty()
    }

    /// Total qubits pinned across all nodes.
    #[must_use]
    pub fn total_qubits(&self) -> u64 {
        self.node_qubits.iter().map(|&(_, q)| u64::from(q)).sum()
    }

    /// Total channels pinned across all edges.
    #[must_use]
    pub fn total_channels(&self) -> u64 {
        self.edge_channels.iter().map(|&(_, w)| u64::from(w)).sum()
    }
}

/// The routed structure serving one demanded quantum state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandPlan {
    /// The demand being served.
    pub demand: Demand,
    /// Accepted paths with per-hop widths. Under classic swapping every
    /// path owns its qubits exclusively; under n-fusion paths may share
    /// edges, and [`DemandPlan::flow`] is the authoritative merged
    /// structure (Algorithm 4 widens the flow, not the paths).
    pub paths: Vec<WidthedPath>,
    /// The merged flow-like graph (meaningful under n-fusion).
    pub flow: FlowGraph,
}

impl DemandPlan {
    /// A plan with no routes (rate zero).
    #[must_use]
    pub fn empty(demand: Demand) -> Self {
        DemandPlan {
            demand,
            paths: Vec::new(),
            flow: FlowGraph::new(demand.source, demand.dest),
        }
    }

    /// `true` when no route was allocated.
    #[must_use]
    pub fn is_unserved(&self) -> bool {
        self.paths.is_empty()
    }

    /// Exact per-node qubit and per-edge channel totals this plan pins.
    ///
    /// The flow-like graph is authoritative: Algorithm 3 merges
    /// same-demand paths into it (shared hops are stored once, so shared
    /// fusion-node qubits are counted once, not per path) and Algorithm 4
    /// widens it in place. Each directed flow edge of width `w` pins `w`
    /// channels on its fiber and `w` qubits at each endpoint — summing
    /// incident widths per node is exactly [`FlowGraph::qubits_at`], and
    /// the totals satisfy `capacity - usage == NetworkPlan::leftover`
    /// contribution for every node.
    #[must_use]
    pub fn resource_usage(&self) -> ResourceUsage {
        let mut nodes: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut edges: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
        for (u, v, w) in self.flow.edges() {
            let key = if u <= v { (u, v) } else { (v, u) };
            *edges.entry(key).or_insert(0) += w;
            *nodes.entry(u).or_insert(0) += w;
            *nodes.entry(v).or_insert(0) += w;
        }
        ResourceUsage {
            node_qubits: nodes.into_iter().filter(|&(_, q)| q > 0).collect(),
            edge_channels: edges.into_iter().filter(|&(_, w)| w > 0).collect(),
        }
    }

    /// Analytic success probability of this demand under `mode`.
    ///
    /// * n-fusion: Equation 1 on the merged flow-like graph.
    /// * classic: independent alternatives — `1 - Π (1 - s_i)` over the
    ///   accepted paths' BSM success probabilities.
    #[must_use]
    pub fn rate(&self, net: &QuantumNetwork, mode: SwapMode) -> f64 {
        match mode {
            SwapMode::NFusion => metrics::flow_rate(net, &self.flow).value(),
            SwapMode::Classic => {
                let fail: f64 = self
                    .paths
                    .iter()
                    .map(|wp| 1.0 - metrics::classic::success_probability(net, wp))
                    .product();
                1.0 - fail
            }
        }
    }
}

/// The routing decision for every demanded state in the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPlan {
    /// Swapping technology the plan was built for.
    pub mode: SwapMode,
    /// One plan per demand, in demand order.
    pub plans: Vec<DemandPlan>,
    /// Qubits left at each node after routing (indexed by node id).
    pub leftover: Vec<u32>,
    /// Number of single links added by Algorithm 4 (0 when disabled).
    pub alg4_links: usize,
}

impl NetworkPlan {
    /// Analytic success probability of demand `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn demand_rate(&self, net: &QuantumNetwork, i: usize) -> f64 {
        self.plans[i].rate(net, self.mode)
    }

    /// The network entanglement rate: the expected number of demanded
    /// states established per attempt (paper §III-C).
    #[must_use]
    pub fn total_rate(&self, net: &QuantumNetwork) -> f64 {
        self.plans.iter().map(|p| p.rate(net, self.mode)).sum()
    }

    /// Number of demands that received at least one route.
    #[must_use]
    pub fn served_demands(&self) -> usize {
        self.plans.iter().filter(|p| !p.is_unserved()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::DemandId;
    use fusion_graph::{NodeId, Path};

    fn simple_net() -> (QuantumNetwork, NodeId, NodeId, NodeId) {
        let mut b = QuantumNetwork::builder();
        let s = b.user(0.0, 0.0);
        let v = b.switch(1.0, 0.0, 10);
        let d = b.user(2.0, 0.0);
        b.link(s, v).unwrap();
        b.link(v, d).unwrap();
        let mut net = b.build();
        net.set_uniform_link_success(Some(0.5));
        net.set_swap_success(0.8);
        (net, s, v, d)
    }

    #[test]
    fn empty_plan_has_zero_rate() {
        let (net, s, _v, d) = simple_net();
        let plan = DemandPlan::empty(Demand::new(DemandId::new(0), s, d));
        assert!(plan.is_unserved());
        assert_eq!(plan.rate(&net, SwapMode::NFusion), 0.0);
        assert_eq!(plan.rate(&net, SwapMode::Classic), 0.0);
    }

    #[test]
    fn nfusion_rate_uses_flow() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        plan.flow.add_path(&path, 2);
        plan.paths.push(WidthedPath::uniform(path, 2));
        let c = 1.0 - 0.25;
        assert!((plan.rate(&net, SwapMode::NFusion) - c * c * 0.8).abs() < 1e-12);
    }

    #[test]
    fn classic_rate_combines_paths_independently() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        plan.paths.push(WidthedPath::uniform(path.clone(), 1));
        plan.paths.push(WidthedPath::uniform(path, 1));
        let single = 0.5 * 0.5 * 0.8;
        let expect = 1.0 - (1.0 - single) * (1.0 - single);
        assert!((plan.rate(&net, SwapMode::Classic) - expect).abs() < 1e-12);
    }

    #[test]
    fn network_plan_totals() {
        let (net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut p1 = DemandPlan::empty(demand);
        let path = Path::new(vec![s, v, d]);
        p1.flow.add_path(&path, 1);
        p1.paths.push(WidthedPath::uniform(path, 1));
        let p2 = DemandPlan::empty(Demand::new(DemandId::new(1), d, s));
        let plan = NetworkPlan {
            mode: SwapMode::NFusion,
            plans: vec![p1, p2],
            leftover: net.capacities(),
            alg4_links: 0,
        };
        assert_eq!(plan.served_demands(), 1);
        assert!((plan.total_rate(&net) - plan.demand_rate(&net, 0)).abs() < 1e-12);
        assert_eq!(plan.demand_rate(&net, 1), 0.0);
    }

    #[test]
    fn resource_usage_counts_shared_hops_once() {
        let (_net, s, v, d) = simple_net();
        let demand = Demand::new(DemandId::new(0), s, d);
        let mut plan = DemandPlan::empty(demand);
        // Two merged paths share both hops: the flow stores each edge once,
        // so shared fusion-node qubits must not be double-counted.
        let path = Path::new(vec![s, v, d]);
        plan.flow.add_path(&path, 2);
        plan.flow.add_path(&path, 1); // fully shared, adds nothing
        plan.paths.push(WidthedPath::uniform(path.clone(), 2));
        plan.paths.push(WidthedPath::uniform(path, 1));
        let usage = plan.resource_usage();
        assert_eq!(
            usage.node_qubits,
            vec![(s, 2), (v, 4), (d, 2)],
            "switch v relays two width-2 hops"
        );
        assert_eq!(usage.total_channels(), 4);
        // The per-node totals are exactly the flow's own accounting.
        for &(node, q) in &usage.node_qubits {
            assert_eq!(q, plan.flow.qubits_at(node));
        }
    }

    #[test]
    fn resource_usage_empty_plan() {
        let (_net, s, _v, d) = simple_net();
        let plan = DemandPlan::empty(Demand::new(DemandId::new(0), s, d));
        let usage = plan.resource_usage();
        assert!(usage.is_empty());
        assert_eq!(usage.total_qubits(), 0);
    }

    #[test]
    fn resource_usage_canonicalizes_orientation() {
        let (_net, s, v, d) = simple_net();
        // Route the demand "backwards": flow edges run d -> v -> s, but the
        // usage must be keyed by canonical low-high pairs regardless.
        let demand = Demand::new(DemandId::new(0), d, s);
        let mut plan = DemandPlan::empty(demand);
        let path = Path::new(vec![d, v, s]);
        plan.flow.add_path(&path, 3);
        plan.paths.push(WidthedPath::uniform(path, 3));
        let usage = plan.resource_usage();
        let pairs: Vec<_> = usage.edge_channels.iter().map(|&(p, _)| p).collect();
        for (lo, hi) in pairs {
            assert!(lo <= hi, "edge keys must be canonical");
        }
        assert_eq!(usage.total_channels(), 6);
        assert_eq!(usage.node_qubits, vec![(s, 3), (v, 6), (d, 3)]);
    }

    #[test]
    fn score_matches_mode() {
        let (net, s, v, d) = simple_net();
        let wp = WidthedPath::uniform(Path::new(vec![s, v, d]), 2);
        let nf = SwapMode::NFusion.score(&net, &wp).value();
        let cl = SwapMode::Classic.score(&net, &wp).value();
        assert!((nf - 0.75 * 0.75 * 0.8).abs() < 1e-12);
        // Classic: one pre-committed lane regardless of width: p²q.
        assert!((cl - 0.25 * 0.8).abs() < 1e-12);
    }
}
