//! Traces the three-phase entanglement process (§III-B) for one demand at
//! protocol level — heralded links, GHZ fusions in the entanglement
//! registry, teleportation-readiness — and verifies the same fusion
//! sequence on the exact stabilizer simulator.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::quantum::stabilizer::{fuse_groups, Tableau};
use ghz_entanglement_routing::sim::protocol::simulate_round;
use ghz_entanglement_routing::topology::TopologyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Phase I: the center server routes a small network.
    let topo = TopologyConfig {
        num_switches: 25,
        num_user_pairs: 3,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(5);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    let plan = alg_n_fusion(&net, &demands);
    println!(
        "Phase I   routes computed: {} demands served",
        plan.served_demands()
    );

    // Phases II-III: run protocol rounds against the entanglement
    // registry; each round generates Bell pairs per heralded link, fuses at
    // switches, and checks that the users share a GHZ group.
    let mut rng = StdRng::seed_from_u64(11);
    let dp = plan
        .plans
        .iter()
        .find(|p| !p.is_unserved())
        .expect("some demand routed");
    println!("Phase II  synchronized attempt rounds for {}:", dp.demand);
    let mut established = 0;
    let rounds = 10;
    for round in 0..rounds {
        let out = simulate_round(&net, dp, &mut rng);
        println!(
            "  round {round}: {} links heralded, {}/{} fusions succeeded -> {}",
            out.links_generated,
            out.fusions_succeeded,
            out.fusions_attempted,
            if out.established {
                "STATE ESTABLISHED"
            } else {
                "retry"
            }
        );
        established += usize::from(out.established);
    }
    println!(
        "Phase III {established}/{rounds} rounds delivered a teleportation-ready Bell pair \
         (analytic p = {:.3})",
        dp.rate(&net, plan.mode)
    );

    // Ground truth: replay a 3-segment repeater fusion on the exact
    // stabilizer tableau and verify the survivors form a canonical GHZ
    // state.
    println!("\nStabilizer check: fusing three Bell pairs via one 3-GHZ measurement");
    let mut tab = Tableau::new(6);
    let groups = vec![vec![0usize, 1], vec![2, 3], vec![4, 5]];
    for g in &groups {
        tab.prepare_ghz(g);
    }
    let outcomes = fuse_groups(&mut tab, &groups, &[1, 2, 4], &mut rng);
    println!("  measurement outcomes: {outcomes:?}");
    println!(
        "  survivors {{0, 3, 5}} form canonical GHZ: {}",
        tab.is_ghz(&[0, 3, 5])
    );
}
