//! Repeater-chain scaling study: how the entanglement rate decays with
//! distance under classic swapping versus n-fusion at different channel
//! widths — the core trade-off behind the paper's "wider is better" and
//! "n-fusion is preferred" design ideas (§IV-B).
//!
//! ```text
//! cargo run --release --example repeater_chain
//! ```

use ghz_entanglement_routing::core::{metrics, NetworkParams, QuantumNetwork, WidthedPath};
use ghz_entanglement_routing::graph::{NodeId, Path};
use ghz_entanglement_routing::topology::generators::deterministic;
use ghz_entanglement_routing::topology::Topology;

fn chain(switches: usize, spacing: f64) -> (QuantumNetwork, Path) {
    let topo: Topology = deterministic::chain_with_users(switches, spacing, spacing / 10.0);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let (s, d) = topo.demands[0];
    let mut nodes = vec![s];
    nodes.extend((0..switches).map(NodeId::new));
    nodes.push(d);
    (net, Path::new(nodes))
}

fn main() {
    // 3000-unit spans: p = e^(-0.3) ~ 0.74 per link (alpha = 1e-4).
    let spacing = 3_000.0;
    println!("repeater chain, {spacing}-unit spans, q = 0.9\n");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10}",
        "switches", "classic", "fusion w1", "fusion w2", "fusion w4"
    );
    for switches in [1usize, 2, 4, 8, 16] {
        let (net, path) = chain(switches, spacing);
        let w1 = WidthedPath::uniform(path.clone(), 1);
        let w2 = WidthedPath::uniform(path.clone(), 2);
        let w4 = WidthedPath::uniform(path.clone(), 4);
        println!(
            "{:>9} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            switches,
            metrics::classic::success_probability(&net, &w1),
            metrics::widthed_path_rate(&net, &w1).value(),
            metrics::widthed_path_rate(&net, &w2).value(),
            metrics::widthed_path_rate(&net, &w4).value(),
        );
    }
    println!(
        "\nWidth fights link loss (the exponential in distance), but every extra \
         switch still costs a factor q — which is why the paper routes 'shorter' \
         paths first and fuses as many links per switch as possible."
    );
}
