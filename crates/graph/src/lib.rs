//! Graph substrate for the GHZ n-fusion entanglement-routing stack.
//!
//! This crate provides the classical-graph foundations that the quantum
//! network model and routing algorithms are built on:
//!
//! * [`UnGraph`] — a compact undirected multigraph with typed node and edge
//!   payloads, indexed by [`NodeId`] / [`EdgeId`].
//! * [`Metric`] — a totally ordered, non-NaN `f64` wrapper used for
//!   probability-product routing metrics.
//! * [`search`] — Dijkstra (min-sum and max-product flavours), BFS,
//!   connected components, and resumable goal-directed runs.
//! * [`yen`] — Yen's k-shortest loopless paths.
//! * [`feasibility`] — width-indexed capacity feasibility and the
//!   incrementally-repaired reachability behind width-descent searches.
//! * [`DisjointSets`] — union-find with path compression, used for
//!   entanglement-group tracking and percolation connectivity.
//! * [`Path`] — a validated simple path through a graph.
//!
//! # Examples
//!
//! ```
//! use fusion_graph::{UnGraph, search};
//!
//! let mut g: UnGraph<&str, f64> = UnGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//!
//! let dist = search::dijkstra(&g, a, |_, w| *w);
//! assert_eq!(dist.distance(c), Some(3.0));
//! ```
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod metric;
mod path;
mod stamps;
mod unionfind;

pub mod certificate;
pub mod feasibility;
pub mod search;
pub mod yen;

pub use certificate::{CertEntry, CertificateRecorder};
pub use feasibility::{DescentReach, WidthFeasibility};
pub use graph::{EdgeId, EdgeRef, NodeId, UnGraph};
pub use metric::Metric;
pub use path::{Path, PathError};
pub use search::{SearchCounters, SearchScratch};
pub use stamps::RecordedSet;
pub use unionfind::{DisjointSets, GenerationalDisjointSets};
