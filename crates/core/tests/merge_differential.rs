//! Differential-testing harness for the Algorithm 3 gain-queue merge.
//!
//! The incremental gain queue (`paths_merge_greedy`) must produce a
//! byte-identical `MergeOutcome` — accepted paths in the same order with
//! the same widths, identical flow graphs, identical remaining-qubit
//! vectors — to the full re-scan oracle (`paths_merge_greedy_reference`)
//! on every input, including equal-gain tie-breaks. These properties
//! drive both implementations over random Waxman/grid networks × demand
//! loads × seeds × swap modes and compare outcomes with exact equality
//! (everything compared is integral, and both sides share the same f64
//! scoring arithmetic, so `==` is the right notion of "identical").
//!
//! The reduced grid below runs in tier-1 CI on every push; the wide grid
//! (`--ignored`) covers more cases, larger networks, and harsher p/q
//! corners for release validation:
//!
//! ```text
//! cargo test --release -p fusion-core --test merge_differential -- --ignored
//! ```

use fusion_core::algorithms::alg2::paths_selection;
use fusion_core::algorithms::alg3_greedy::{paths_merge_greedy, paths_merge_greedy_reference};
use fusion_core::{Demand, NetworkParams, QuantumNetwork, SwapMode};
use fusion_topology::{GeneratorKind, TopologyConfig};

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// One sampled differential case: build the network, run Algorithm 2 for
/// a real candidate set, then check queue == reference for the given
/// merge knobs.
#[allow(clippy::too_many_arguments)]
fn check_case(
    switches: usize,
    pairs: usize,
    grid: bool,
    seed: u64,
    p: f64,
    q: f64,
    h: usize,
    max_width: u32,
    mode: SwapMode,
    share_edges: bool,
    max_paths_per_demand: Option<usize>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let topo = TopologyConfig {
        num_switches: switches,
        num_user_pairs: pairs,
        avg_degree: 6.0,
        kind: if grid {
            GeneratorKind::Grid
        } else {
            GeneratorKind::default() // Waxman, the paper's family
        },
        ..TopologyConfig::default()
    }
    .generate(seed);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    net.set_uniform_link_success(Some(p));
    net.set_swap_success(q);
    let demands = Demand::from_topology(&topo);
    let caps = net.capacities();
    let candidates = paths_selection(&net, &demands, &caps, h, max_width, mode);

    let queue = paths_merge_greedy(
        &net,
        &demands,
        &candidates,
        mode,
        share_edges,
        max_paths_per_demand,
    );
    let reference = paths_merge_greedy_reference(
        &net,
        &demands,
        &candidates,
        mode,
        share_edges,
        max_paths_per_demand,
    );
    prop_assert_eq!(
        &queue.remaining,
        &reference.remaining,
        "remaining qubits diverged ({} candidates, mode {:?}, share {}, cap {:?})",
        candidates.len(),
        mode,
        share_edges,
        max_paths_per_demand
    );
    prop_assert_eq!(
        queue == reference,
        true,
        "plans diverged ({} candidates, mode {:?}, share {}, cap {:?})",
        candidates.len(),
        mode,
        share_edges,
        max_paths_per_demand
    );
    Ok(())
}

fn mode_of(classic: bool) -> SwapMode {
    if classic {
        SwapMode::Classic
    } else {
        SwapMode::NFusion
    }
}

fn cap_of(cap: usize) -> Option<usize> {
    // 0 → unlimited; 1..3 → per-demand route cap (the classic pipeline
    // runs with Some(1)).
    if cap == 0 {
        None
    } else {
        Some(cap)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tier-1 reduced grid: small Waxman/grid networks, both swap
    /// modes, with and without sharing and per-demand caps.
    #[test]
    fn queue_merge_matches_reference_reduced(
        switches in 10usize..36,
        pairs in 2usize..7,
        grid in proptest::bool::ANY,
        seed in 0u64..1_000_000,
        p in 0.1f64..0.9,
        q in 0.6f64..1.0,
        h in 1usize..4,
        classic in proptest::bool::ANY,
        share in proptest::bool::ANY,
        cap in 0usize..3,
    ) {
        check_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            4,
            mode_of(classic),
            share,
            cap_of(cap),
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wide grid: more cases, larger networks, wider channels, and
    /// the p/q corners where gains saturate (`MIN_GAIN` kills) or
    /// collapse. Run explicitly with `-- --ignored`.
    #[test]
    #[ignore = "wide differential grid; minutes of runtime, run with -- --ignored"]
    fn queue_merge_matches_reference_wide(
        switches in 10usize..120,
        pairs in 2usize..12,
        grid in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
        p in 0.01f64..0.999,
        q in 0.3f64..1.0,
        h in 1usize..6,
        max_width in 2u32..8,
        classic in proptest::bool::ANY,
        share in proptest::bool::ANY,
        cap in 0usize..4,
    ) {
        check_case(
            switches,
            pairs,
            grid,
            seed,
            p,
            q,
            h,
            max_width,
            mode_of(classic),
            share,
            cap_of(cap),
        )?;
    }
}
