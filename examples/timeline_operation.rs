//! Extension demo: time-slotted network operation — demands arrive in
//! waves, the controller re-plans, and we measure latency, backlog, and
//! throughput (the waiting-time view of entanglement routing, cf. the
//! paper's ref. [14]).
//!
//! ```text
//! cargo run --release --example timeline_operation
//! ```

use ghz_entanglement_routing::core::{NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::sim::timeline::{run_timeline, Arrival, TimelineConfig};
use ghz_entanglement_routing::topology::TopologyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = TopologyConfig {
        num_switches: 40,
        num_user_pairs: 12,
        avg_degree: 8.0,
        ..TopologyConfig::default()
    }
    .generate(23);
    let mut net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    // Lossy links make the waiting-time dynamics visible.
    net.set_uniform_link_success(Some(0.35));

    // Three waves of four demands, five rounds apart.
    let arrivals: Vec<Arrival> = topo
        .demands
        .iter()
        .enumerate()
        .map(|(i, &(source, dest))| Arrival {
            round: (i / 4) * 5,
            source,
            dest,
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(4);
    let report = run_timeline(&net, &arrivals, &TimelineConfig::default(), &mut rng);

    println!("time-slotted operation: 12 demands in 3 waves, 100 rounds\n");
    println!(
        "served {}/{} demands, mean latency {:.1} rounds, throughput {:.3} states/round, \
         {} re-plans",
        report.served(),
        arrivals.len(),
        report.mean_latency().unwrap_or(f64::NAN),
        report.throughput(),
        report.replans
    );

    println!("\nper-demand outcomes:");
    for (i, o) in report.outcomes.iter().enumerate() {
        match o.served {
            Some(round) => println!(
                "  demand {i:>2}: arrived r{:>2}, served r{round:>2} ({} attempts)",
                o.arrived, o.attempts
            ),
            None => println!(
                "  demand {i:>2}: arrived r{:>2}, unserved after {} attempts",
                o.arrived, o.attempts
            ),
        }
    }

    // Backlog sparkline (one char per 5 rounds).
    let spark: String = report
        .backlog
        .iter()
        .step_by(5)
        .map(|&b| char::from_digit(b.min(9) as u32, 10).unwrap_or('9'))
        .collect();
    println!("\nbacklog every 5 rounds: {spark}");
}
