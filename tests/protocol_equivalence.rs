//! Protocol-level equivalence: the registry-backed simulator (Bell pairs,
//! GHZ fusions, Pauli trims) agrees with percolation connectivity round by
//! round, its long-run rates agree with Equation 1, and the fusion
//! sequences it performs are physically valid on the exact stabilizer
//! simulator.

use ghz_entanglement_routing::core::algorithms::alg_n_fusion;
use ghz_entanglement_routing::core::{Demand, NetworkParams, QuantumNetwork};
use ghz_entanglement_routing::quantum::stabilizer::{fuse_groups, measure_out_x, Tableau};
use ghz_entanglement_routing::quantum::EntanglementRegistry;
use ghz_entanglement_routing::sim::connectivity::sample_flow_round;
use ghz_entanglement_routing::sim::protocol::simulate_round;
use ghz_entanglement_routing::topology::TopologyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn registry_protocol_tracks_percolation_rates() {
    let topo = TopologyConfig {
        num_switches: 25,
        num_user_pairs: 4,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(13);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    let plan = alg_n_fusion(&net, &demands);
    let mut rng = StdRng::seed_from_u64(99);

    for (i, dp) in plan.plans.iter().enumerate() {
        if dp.is_unserved() {
            continue;
        }
        let rounds = 4_000;
        let mut protocol_hits = 0;
        let mut percolation_hits = 0;
        for _ in 0..rounds {
            // simulate_round itself debug-asserts registry == percolation
            // on identical sampled outcomes; here we also compare the two
            // estimators statistically on independent samples.
            if simulate_round(&net, dp, &mut rng).established {
                protocol_hits += 1;
            }
            if sample_flow_round(&net, dp, &mut rng) {
                percolation_hits += 1;
            }
        }
        let protocol = protocol_hits as f64 / rounds as f64;
        let percolation = percolation_hits as f64 / rounds as f64;
        assert!(
            (protocol - percolation).abs() < 0.04,
            "demand {i}: protocol {protocol} vs percolation {percolation}"
        );
        // Eq. 1 upper-bounds both (it is optimistic on reconvergent flows).
        let analytic = plan.demand_rate(&net, i);
        assert!(
            protocol <= analytic + 0.04,
            "demand {i}: protocol {protocol} above Eq.1 bound {analytic}"
        );
    }
}

#[test]
fn registry_and_tableau_agree_on_a_fusion_cascade() {
    // Build the same 4-segment repeater fusion in both substrates and
    // check they agree on who ends up entangled.
    let mut reg = EntanglementRegistry::new();
    let reg_qubits: Vec<_> = (0..8).map(|_| reg.alloc()).collect();
    for pair in reg_qubits.chunks(2) {
        reg.create_pair(pair[0], pair[1]).unwrap();
    }
    // Fuse at the three "switches": qubits (1,2), (3,4), (5,6).
    reg.fuse(&[reg_qubits[1], reg_qubits[2]]).unwrap();
    reg.fuse(&[reg_qubits[3], reg_qubits[4]]).unwrap();
    reg.fuse(&[reg_qubits[5], reg_qubits[6]]).unwrap();
    assert!(reg.are_entangled(reg_qubits[0], reg_qubits[7]));

    let mut tab = Tableau::new(8);
    let mut rng = StdRng::seed_from_u64(3);
    for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
        tab.prepare_ghz(&pair);
    }
    fuse_groups(&mut tab, &[vec![0, 1], vec![2, 3]], &[1, 2], &mut rng);
    fuse_groups(&mut tab, &[vec![0, 3], vec![4, 5]], &[3, 4], &mut rng);
    fuse_groups(&mut tab, &[vec![0, 5], vec![6, 7]], &[5, 6], &mut rng);
    assert!(tab.is_ghz(&[0, 7]), "end users share a Bell pair");
}

#[test]
fn branch_trimming_matches_one_fusion_semantics() {
    // A 3-branch fusion at a switch leaves a 4-GHZ state among the users;
    // Pauli-trimming (1-fusion) reduces it to the demanded Bell pair in
    // both substrates.
    let mut reg = EntanglementRegistry::new();
    let q: Vec<_> = (0..6).map(|_| reg.alloc()).collect();
    for pair in q.chunks(2) {
        reg.create_pair(pair[0], pair[1]).unwrap();
    }
    let out = reg.fuse(&[q[1], q[3], q[5]]).unwrap();
    assert_eq!(out.survivors, 3);
    reg.measure_out(q[2]).unwrap();
    assert!(reg.are_entangled(q[0], q[4]));
    assert_eq!(reg.group_of(q[0]).and_then(|g| reg.group_size(g)), Some(2));

    let mut tab = Tableau::new(6);
    let mut rng = StdRng::seed_from_u64(21);
    for pair in [[0usize, 1], [2, 3], [4, 5]] {
        tab.prepare_ghz(&pair);
    }
    fuse_groups(
        &mut tab,
        &[vec![0, 1], vec![2, 3], vec![4, 5]],
        &[1, 3, 5],
        &mut rng,
    );
    assert!(tab.is_ghz(&[0, 2, 4]));
    measure_out_x(&mut tab, &[0, 2, 4], 2, &mut rng);
    assert!(tab.is_ghz(&[0, 4]), "trimmed to the demanded Bell pair");
}

#[test]
fn protocol_counters_scale_with_widths() {
    // Wider flows generate proportionally more heralded links.
    let topo = TopologyConfig {
        num_switches: 20,
        num_user_pairs: 2,
        avg_degree: 6.0,
        ..TopologyConfig::default()
    }
    .generate(29);
    let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
    let demands = Demand::from_topology(&topo);
    let plan = alg_n_fusion(&net, &demands);
    let dp = plan
        .plans
        .iter()
        .find(|p| !p.is_unserved())
        .expect("routed demand");
    let total_width: u32 = dp.flow.edges().map(|(_, _, w)| w).sum();

    let mut rng = StdRng::seed_from_u64(5);
    let mut total_links = 0usize;
    let rounds = 500;
    for _ in 0..rounds {
        total_links += simulate_round(&net, dp, &mut rng).links_generated;
    }
    let mean_links = total_links as f64 / rounds as f64;
    assert!(
        mean_links <= f64::from(total_width),
        "cannot herald more links than allocated ({mean_links} > {total_width})"
    );
    assert!(
        mean_links > 0.2 * f64::from(total_width),
        "suspiciously few links heralded"
    );
}
