//! The paper's comparison algorithms (§V-B): Q-CAST, Q-CAST-N, and B1.

pub mod b1;
pub mod qcast;
pub mod qcast_n;

pub use b1::{route_b1, DEFAULT_REGION_PATHS};
pub use qcast::route_qcast;
pub use qcast_n::route_qcast_n;
