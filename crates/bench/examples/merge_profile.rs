//! Profiles the Algorithm 3 merge at scale: times the incremental gain
//! queue against the full-re-scan reference on one `large-N-grid`
//! instance and asserts their outcomes are identical. Reproduces the
//! EXPERIMENTS.md "incremental gain queue" table:
//!
//! ```text
//! cargo run --release -p fusion-bench --example merge_profile -- 10000
//! ```
use std::time::Instant;

use fusion_bench::workloads::ExperimentConfig;
use fusion_core::algorithms::{alg2, alg3_greedy};
use fusion_core::SwapMode;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let config = ExperimentConfig::large_grid(n);
    let t0 = Instant::now();
    let (net, demands) = config.instance(0);
    eprintln!("instance({n}): {:?}", t0.elapsed());

    let caps = net.capacities();
    let max_width = net.max_switch_capacity();
    let t1 = Instant::now();
    let candidates = alg2::paths_selection(
        &net,
        &demands,
        &caps,
        config.h,
        max_width,
        SwapMode::NFusion,
    );
    eprintln!("alg2: {:?} ({} candidates)", t1.elapsed(), candidates.len());

    let t2 = Instant::now();
    let out =
        alg3_greedy::paths_merge_greedy(&net, &demands, &candidates, SwapMode::NFusion, true, None);
    let queue_t = t2.elapsed();
    let accepted: usize = out.plans.iter().map(|p| p.paths.len()).sum();
    eprintln!("queue merge: {queue_t:?} ({accepted} accepted)");

    let t3 = Instant::now();
    let reference = alg3_greedy::paths_merge_greedy_reference(
        &net,
        &demands,
        &candidates,
        SwapMode::NFusion,
        true,
        None,
    );
    let ref_t = t3.elapsed();
    eprintln!("reference merge: {ref_t:?}");
    assert_eq!(out, reference, "queue must match reference");
    eprintln!(
        "speedup: {:.1}x",
        ref_t.as_secs_f64() / queue_t.as_secs_f64()
    );
}
