//! Extension: time-slotted network operation.
//!
//! The paper routes one synchronized attempt (§III-B); a real network runs
//! attempt rounds back to back while demands arrive and depart. This
//! module simulates that timeline: demands arrive at configured rounds,
//! the central controller re-routes the active set whenever it changes
//! (Phase I), every round executes one synchronized attempt per active
//! demand (Phases II-III), and established demands depart. The output is
//! the latency distribution — the quantity studied by the waiting-time
//! line of work the paper cites (Shchukin et al. \[14\]) — plus backlog and
//! throughput traces.

use fusion_core::algorithms::{route, RoutingConfig};
use fusion_core::{Demand, DemandId, QuantumNetwork};
use fusion_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::connectivity::sample_round;

/// One demand template with its arrival round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Round index at which the demand enters the queue.
    pub round: usize,
    /// Source user.
    pub source: NodeId,
    /// Destination user.
    pub dest: NodeId,
}

/// Configuration of a timeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Number of synchronized rounds to simulate.
    pub rounds: usize,
    /// Routing knobs used at every (re-)planning step.
    pub routing: RoutingConfig,
    /// Give up on a demand after this many attempt rounds (it departs
    /// unserved); `None` keeps retrying until the horizon.
    pub max_attempts: Option<usize>,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            rounds: 100,
            routing: RoutingConfig::n_fusion(),
            max_attempts: None,
        }
    }
}

/// Outcome for one demand over the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandOutcome {
    /// Arrival round.
    pub arrived: usize,
    /// Round at which the state was established, if it was.
    pub served: Option<usize>,
    /// Attempt rounds consumed.
    pub attempts: usize,
}

impl DemandOutcome {
    /// Rounds from arrival to establishment (inclusive of the serving
    /// round); `None` if never served.
    #[must_use]
    pub fn latency(&self) -> Option<usize> {
        self.served.map(|s| s - self.arrived + 1)
    }
}

/// Aggregated result of a timeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Per-demand outcomes, in arrival order.
    pub outcomes: Vec<DemandOutcome>,
    /// Number of active demands at the start of every round.
    pub backlog: Vec<usize>,
    /// Times the controller had to re-plan (active set changed).
    pub replans: usize,
}

impl TimelineReport {
    /// Demands served within the horizon.
    #[must_use]
    pub fn served(&self) -> usize {
        self.outcomes.iter().filter(|o| o.served.is_some()).count()
    }

    /// Mean latency over served demands; `None` if nothing was served.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        let latencies: Vec<usize> = self
            .outcomes
            .iter()
            .filter_map(DemandOutcome::latency)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        Some(latencies.iter().sum::<usize>() as f64 / latencies.len() as f64)
    }

    /// Served states per simulated round.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.backlog.is_empty() {
            return 0.0;
        }
        self.served() as f64 / self.backlog.len() as f64
    }
}

/// Runs the time-slotted simulation.
///
/// # Panics
///
/// Panics if `config.rounds == 0`.
pub fn run_timeline(
    net: &QuantumNetwork,
    arrivals: &[Arrival],
    config: &TimelineConfig,
    rng: &mut impl Rng,
) -> TimelineReport {
    assert!(config.rounds > 0, "timeline needs at least one round");
    let mut outcomes: Vec<DemandOutcome> = arrivals
        .iter()
        .map(|a| DemandOutcome {
            arrived: a.round,
            served: None,
            attempts: 0,
        })
        .collect();
    let mut active: Vec<usize> = Vec::new(); // indices into arrivals
    let mut backlog = Vec::with_capacity(config.rounds);
    let mut replans = 0usize;
    let mut plan = None;

    for round in 0..config.rounds {
        // Admit arrivals scheduled for this round.
        let mut changed = false;
        for (i, a) in arrivals.iter().enumerate() {
            if a.round == round {
                active.push(i);
                changed = true;
            }
        }
        backlog.push(active.len());
        if active.is_empty() {
            continue;
        }
        // Phase I: (re-)plan when the active set changed.
        if changed || plan.is_none() {
            let demands: Vec<Demand> = active
                .iter()
                .enumerate()
                .map(|(slot, &i)| {
                    Demand::new(DemandId::new(slot), arrivals[i].source, arrivals[i].dest)
                })
                .collect();
            plan = Some((route(net, &demands, &config.routing), active.clone()));
            replans += 1;
        }
        let (current_plan, plan_members) = plan.as_ref().expect("planned above");

        // Phases II-III: one synchronized attempt per active demand.
        let mut departed = Vec::new();
        for (slot, &i) in plan_members.iter().enumerate() {
            if !active.contains(&i) {
                continue; // departed since planning
            }
            let outcome = &mut outcomes[i];
            outcome.attempts += 1;
            if sample_round(net, &current_plan.plans[slot], current_plan.mode, rng) {
                outcome.served = Some(round);
                departed.push(i);
            } else if config
                .max_attempts
                .is_some_and(|cap| outcome.attempts >= cap)
            {
                departed.push(i);
            }
        }
        if !departed.is_empty() {
            active.retain(|i| !departed.contains(i));
            plan = None; // capacity freed: re-plan next round
        }
    }
    TimelineReport {
        outcomes,
        backlog,
        replans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::NetworkParams;
    use fusion_topology::TopologyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world(seed: u64) -> (QuantumNetwork, Vec<(NodeId, NodeId)>) {
        let topo = TopologyConfig {
            num_switches: 25,
            num_user_pairs: 5,
            avg_degree: 6.0,
            ..TopologyConfig::default()
        }
        .generate(seed);
        let net = QuantumNetwork::from_topology(&topo, &NetworkParams::default());
        (net, topo.demands.clone())
    }

    fn batch_arrivals(pairs: &[(NodeId, NodeId)], round: usize) -> Vec<Arrival> {
        pairs
            .iter()
            .map(|&(source, dest)| Arrival {
                round,
                source,
                dest,
            })
            .collect()
    }

    #[test]
    fn serves_everything_given_time() {
        let (net, pairs) = world(1);
        let arrivals = batch_arrivals(&pairs, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let report = run_timeline(&net, &arrivals, &TimelineConfig::default(), &mut rng);
        // With 100 rounds and per-round success well above 0.1, all five
        // demands are served with overwhelming probability.
        assert_eq!(report.served(), 5, "outcomes: {:?}", report.outcomes);
        let mean = report.mean_latency().expect("served demands");
        assert!(mean >= 1.0);
        // Backlog starts at 5 and must reach 0.
        assert_eq!(report.backlog[0], 5);
        assert_eq!(*report.backlog.last().unwrap(), 0);
    }

    #[test]
    fn latency_counts_from_arrival() {
        let (net, pairs) = world(2);
        let arrivals = vec![Arrival {
            round: 10,
            source: pairs[0].0,
            dest: pairs[0].1,
        }];
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_timeline(&net, &arrivals, &TimelineConfig::default(), &mut rng);
        let outcome = report.outcomes[0];
        if let Some(served) = outcome.served {
            assert!(served >= 10);
            assert_eq!(outcome.latency().unwrap(), served - 10 + 1);
            assert_eq!(outcome.attempts, outcome.latency().unwrap());
        }
    }

    #[test]
    fn max_attempts_bounds_retries() {
        let (mut net, pairs) = world(3);
        net.set_uniform_link_success(Some(0.01)); // nearly hopeless
        let arrivals = batch_arrivals(&pairs[..2], 0);
        let mut rng = StdRng::seed_from_u64(5);
        let config = TimelineConfig {
            max_attempts: Some(3),
            ..TimelineConfig::default()
        };
        let report = run_timeline(&net, &arrivals, &config, &mut rng);
        for o in &report.outcomes {
            assert!(o.attempts <= 3);
        }
        // Departed-unserved demands free the backlog.
        assert_eq!(*report.backlog.last().unwrap(), 0);
    }

    #[test]
    fn staggered_arrivals_trigger_replanning() {
        let (net, pairs) = world(4);
        let mut arrivals = batch_arrivals(&pairs[..2], 0);
        arrivals.extend(batch_arrivals(&pairs[2..4], 5));
        let mut rng = StdRng::seed_from_u64(9);
        let report = run_timeline(&net, &arrivals, &TimelineConfig::default(), &mut rng);
        assert!(report.replans >= 2, "two arrival waves need two plans");
    }

    #[test]
    fn higher_link_quality_means_lower_latency() {
        let (mut net, pairs) = world(6);
        let arrivals = batch_arrivals(&pairs, 0);
        let latency_at = |net: &QuantumNetwork, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_timeline(net, &arrivals, &TimelineConfig::default(), &mut rng)
                .mean_latency()
                .unwrap_or(f64::INFINITY)
        };
        net.set_uniform_link_success(Some(0.9));
        let fast: f64 = (0..5).map(|s| latency_at(&net, s)).sum::<f64>() / 5.0;
        net.set_uniform_link_success(Some(0.25));
        let slow: f64 = (0..5).map(|s| latency_at(&net, s)).sum::<f64>() / 5.0;
        assert!(
            fast < slow,
            "latency must fall with link quality: {fast} vs {slow}"
        );
    }
}
