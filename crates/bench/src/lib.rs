//! Experiment harness reproducing the paper's evaluation (§V).
//!
//! [`workloads`] defines the default network configuration and runs the
//! four algorithms (plus the Alg-3 ablation) on generated instances;
//! [`figures`] sweeps the parameters of every figure in the paper and
//! formats the resulting series. The `figures` binary prints them; the
//! Criterion benches measure the routing algorithms' compute cost on the
//! same workloads.
//!
//! This crate is one layer of the stack mapped in `docs/ARCHITECTURE.md`
//! at the repo root (dependency graph, algorithm-to-module map, and the
//! equivalence-oracle and generation-stamp disciplines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod perf;
pub mod report;
pub mod workloads;
