//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*!` / [`prop_assume!`] /
//! [`prop_oneof!`], the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_recursive` / `boxed`, range, tuple,
//! [`collection::vec`] and [`bool::ANY`] strategies.
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed per test function, there is **no shrinking** (a
//! failure reports the assertion and case number but not a minimized
//! input), and rejected cases ([`prop_assume!`]) are skipped rather than
//! retried. See `vendor/README.md` for how to swap the real crate in.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Execution plumbing used by the [`proptest!`](crate::proptest) macro.

    use std::fmt;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumed-away) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// `true` for rejections, which are skips rather than failures.
        pub fn is_rejection(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Outcome of one sampled case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving strategy sampling, backed by the
    /// vendored `rand` stub's `StdRng` (real proptest likewise sits on
    /// top of the `rand` crate).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates the RNG from a 64-bit seed.
        pub fn seed_from_u64(state: u64) -> Self {
            TestRng(StdRng::seed_from_u64(state))
        }

        /// The fixed seed every property test starts from, keeping runs
        /// reproducible in this offline environment.
        pub fn deterministic() -> Self {
            Self::seed_from_u64(0x5eed_cafe_f00d_0001)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below: empty bound");
            rand::Rng::gen_range(self, 0..bound)
        }
    }

    // All sampling delegates to the vendored `rand`'s uniform mappings
    // (`gen_range`, `gen_bool`), keeping one implementation of the
    // endpoint-handling logic.
    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// Generates values of one type. Unlike real proptest there is no
    /// value tree: strategies sample directly and nothing shrinks.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> T + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheap-to-clone handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for subtrees and returns the strategy for composite nodes. Up
        /// to `depth` composite layers are stacked, with each layer
        /// choosing uniformly between a leaf (`self`) and a composite.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                current = Union::new(vec![self.clone().boxed(), recurse(current).boxed()]).boxed();
            }
            current
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, reference-counted strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Chooses uniformly among its arms; backs [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over the given arms (at least one).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Range strategies delegate to the vendored `rand`'s `gen_range`, so
    // the uniform mapping and half-open endpoint handling live in one
    // place.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a [`vec()`](fn@vec) strategy may generate.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: (usize, usize),
    }

    /// Generates vectors with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            size: (size.min, size.max_exclusive),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (min, max) = self.size;
            let len = min + rng.below(max - min);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports the forms used in this workspace:
/// an optional leading `#![proptest_config(...)]`, then one or more
/// `fn name(pattern in strategy, ...) { body }` items, each carrying its
/// own attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..5, f in 0.25f64..0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u32..4, 0u32..4), v in crate::collection::vec(0usize..3, 2..6)) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn recursive_respects_depth(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn bool_any_flips(bits in crate::collection::vec(crate::bool::ANY, 32..64)) {
            // With >= 32 fair flips, all-equal outcomes are ~2^-31: this
            // must never trip in 64 deterministic cases.
            prop_assert!(bits.iter().any(|&b| b) || bits.len() < 8);
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![0u32..1, 5u32..6, 9u32..10];
        let mut rng = crate::test_runner::TestRng::deterministic();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.sample(&mut rng));
        }
        assert_eq!(seen, [0u32, 5, 9].into_iter().collect());
    }
}
