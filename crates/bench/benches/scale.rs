//! Scale benchmarks: the routing pipeline and Monte Carlo sampler on the
//! 1k-switch presets (grid and Waxman), far beyond the paper's 100-switch
//! evaluation. Sample sizes are kept tiny — each iteration routes a whole
//! 1k-switch network. 5k/10k runs are exercised through the `figures`
//! binary (`figures scale --preset large-10k-grid`) rather than Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_bench::workloads::{Algorithm, ExperimentConfig};
use std::hint::black_box;

fn bench_scale_1k(c: &mut Criterion) {
    for (label, config) in [
        ("grid", ExperimentConfig::large_grid(1_000)),
        ("waxman", ExperimentConfig::large(1_000)),
    ] {
        let (net, demands) = config.instance(0);
        let threads = config.resolved_threads();
        let mut group = c.benchmark_group(format!("scale_1k_{label}"));
        group.sample_size(10);
        group.bench_function("route_parallel", |b| {
            b.iter(|| {
                black_box(Algorithm::AlgNFusion.route_threads(&net, &demands, config.h, threads))
            });
        });
        let plan = Algorithm::AlgNFusion.route_threads(&net, &demands, config.h, threads);
        group.bench_function("mc_estimate", |b| {
            b.iter(|| {
                black_box(
                    fusion_sim::evaluate::estimate_plan_parallel(
                        &net,
                        &plan,
                        config.mc_rounds,
                        config.seed,
                        threads,
                    )
                    .total_rate(),
                )
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_scale_1k);
criterion_main!(benches);
